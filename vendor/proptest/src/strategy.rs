//! Strategies: composable recipes for generating random values.

use crate::TestRng;
use rand::Rng;
use std::rc::Rc;

/// A recipe for generating values of an associated type.
///
/// Unlike upstream proptest there is no value tree and no shrinking — a
/// strategy is simply a sampler.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Filters generated values, resampling (up to an attempt cap) until
    /// `f` accepts one.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Builds a recursive strategy: `self` is the leaf case and `f` wraps a
    /// strategy for the recursive positions. `depth` bounds the nesting;
    /// `_desired_size` and `_expected_branch_size` are accepted for API
    /// compatibility but unused by this sampling engine.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strat = self.clone().boxed();
        for _ in 0..depth {
            // Bias toward the recursive arm so depth-`depth` values actually
            // occur; the leaf arm guarantees termination.
            strat = Union::weighted(vec![(1, self.clone().boxed()), (2, f(strat).boxed())]).boxed();
        }
        strat
    }

    /// Type-erases the strategy behind a cheaply clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A clonable, type-erased strategy handle.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter gave up after 1000 rejections: {}", self.whence);
    }
}

/// Weighted choice among strategies of a common value type (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u32,
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<V> Union<V> {
    /// Uniform choice among `arms`.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        Self::weighted(arms.into_iter().map(|a| (1, a)).collect())
    }

    /// Choice among `arms` proportional to their weights.
    pub fn weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty(), "empty union");
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "union weights sum to zero");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.random_range(0..self.total);
        for (w, arm) in &self.arms {
            if pick < *w {
                return arm.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick exceeded total")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
