//! Test-runner configuration.

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}
