//! Strategies for collections.

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng;

/// A length specification: an exact size or a range of sizes.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generates a `Vec` whose length is drawn from `size` and whose elements
/// are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
