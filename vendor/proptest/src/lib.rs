//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so the workspace vendors a
//! small property-testing engine with the proptest API surface its test
//! suites use: the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map` / `prop_flat_map` / `prop_recursive` / `boxed`, range and
//! tuple strategies, [`strategy::Just`], [`collection::vec`],
//! [`arbitrary::any`], `prop_oneof!`, and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted:
//! * **no shrinking** — a failing case panics with the formatted assertion
//!   message (every property in this workspace attaches its inputs to the
//!   message where they matter);
//! * **deterministic seeding** — each test derives its RNG seed from the
//!   test name, so CI failures reproduce locally without a seed file;
//! * failures surface as ordinary panics rather than `TestCaseError`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod config;
pub mod strategy;

/// The RNG threaded through strategy sampling.
pub type TestRng = rand::rngs::StdRng;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::config::ProptestConfig;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    /// Namespace alias so `prop::collection::vec(..)` works as upstream.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Builds the per-case RNG (kept here so test crates need no direct
/// dependency on the `rand` facade).
#[doc(hidden)]
pub fn __seed_rng(seed: u64) -> TestRng {
    <TestRng as rand::SeedableRng>::seed_from_u64(seed)
}

/// FNV-1a over the test name: a stable per-test base seed.
#[doc(hidden)]
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Defines property tests: `proptest! { #[test] fn f(x in strat) { .. } }`.
///
/// Accepts an optional leading `#![proptest_config(expr)]` and any number of
/// test functions whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::config::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let base = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = $crate::__seed_rng(
                    base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = $crate::strategy::Strategy::sample(&{ $strat }, &mut rng);)+
                $body
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property (panics with context on failure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}
