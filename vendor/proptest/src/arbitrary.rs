//! The `any::<T>()` entry point for types with a canonical strategy.

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng;
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Samples an unconstrained value of `Self`.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (mirrors `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// See [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary_value(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.random_bool(0.5)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.random_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
