//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! the subset of the criterion 0.5 API its benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], benchmark groups with
//! `sample_size` / `measurement_time` / `warm_up_time`, `bench_function`,
//! `bench_with_input`, [`BenchmarkId`], [`Bencher::iter`] and [`black_box`].
//!
//! Instead of criterion's statistical analysis, each benchmark runs
//! `sample_size` timed samples (after one warm-up sample) and prints the
//! minimum, mean and maximum sample time. That keeps `cargo bench` useful
//! for the *relative* comparisons the paper's tables need while staying
//! dependency-free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting a computation
/// whose result is unused.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The top-level benchmark manager handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; this harness times a fixed number of
    /// samples instead of a target measurement window.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; warm-up is one untimed sample.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.into_benchmark_id(), &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.into_benchmark_id(), &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (printing only; exists for API compatibility).
    pub fn finish(self) {}

    fn run(&mut self, id: &BenchmarkId, f: &mut dyn FnMut(&mut Bencher)) {
        let mut samples = Vec::with_capacity(self.sample_size);
        // One untimed warm-up sample, then the timed samples.
        for i in 0..=self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if i > 0 {
                samples.push(b.elapsed);
            }
        }
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let mean = samples.iter().sum::<Duration>() / samples.len().max(1) as u32;
        println!(
            "{}/{:<32} min {:>10.3?}  mean {:>10.3?}  max {:>10.3?}  ({} samples)",
            self.name,
            id.label(),
            min,
            mean,
            max,
            samples.len()
        );
    }
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An identifier for `function` at parameter value `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

/// Conversion of the id-like types accepted by `bench_function`.
pub trait IntoBenchmarkId {
    /// Converts `self` into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: self,
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: self.to_string(),
            parameter: None,
        }
    }
}

/// The timing handle passed to benchmark closures.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times one sample of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed = start.elapsed();
    }
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed `criterion_group!` functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
