//! Sequence-related sampling helpers.

use crate::{Rng, RngCore};

/// Uniform selection from indexable sequences.
pub trait IndexedRandom {
    /// The element type.
    type Output;

    /// Returns a uniformly chosen element, or `None` if the sequence is
    /// empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
}

impl<T> IndexedRandom for [T] {
    type Output = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.random_range(0..self.len())])
        }
    }
}
