//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the *subset* of the rand 0.9 API its sources
//! actually use: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::random_range`] / [`Rng::random_bool`], and
//! [`seq::IndexedRandom::choose`]. The generator is xoshiro256** seeded via
//! SplitMix64 — high-quality and deterministic per seed, which is all the
//! simulator and the test suites require. Swap this out for the real crate
//! by pointing the workspace dependency back at the registry.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// A source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value uniformly from `self`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types with a uniform sampler over half-open and closed intervals.
///
/// Keyed on the value type (as in upstream rand) so that integer-literal
/// ranges unify with the expected output type during inference.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` if `inclusive` is false, `[lo, hi]`
    /// otherwise.
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool)
        -> Self {
        lo + (hi - lo) * unit_f64(rng)
    }
}

/// Uniform draw from `[0, span)`. All supported value types are at most 64
/// bits wide, so `span` is at most 2^64 and one RNG word suffices.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= (u64::MAX as u128) + 1);
    if span > u64::MAX as u128 {
        // Full 64-bit span: every word is already uniform.
        return rng.next_u64() as u128;
    }
    uniform_u64(rng, span as u64) as u128
}

/// Lemire's widening-multiply method: unbiased, one word per draw in the
/// common case.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut m = (rng.next_u64() as u128) * (span as u128);
    let mut low = m as u64;
    if low < span {
        // Rejection threshold 2^64 mod span, computed without u128 division.
        let threshold = span.wrapping_neg() % span;
        while low < threshold {
            m = (rng.next_u64() as u128) * (span as u128);
            low = m as u64;
        }
    }
    (m >> 64) as u64
}

/// A float uniform in `[0, 1)` from the top 53 bits of one word.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}
