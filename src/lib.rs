//! Facade crate re-exporting the full Hierarchical Artifact System toolkit.
//!
//! See the individual crates for details:
//! - [`has_model`] — the HAS model (schemas, tasks, services, conditions)
//! - [`has_data`] — concrete relational database substrate
//! - [`has_arith`] — linear arithmetic, cells, quantifier elimination
//! - [`has_ltl`] — LTL / Büchi automata / HLTL-FO
//! - [`has_symbolic`] — isomorphism types and symbolic runs
//! - [`has_vass`] — Vector Addition Systems with States
//! - [`has_core`] — the verifier (the paper's primary contribution)
//! - [`has_sim`] — concrete operational semantics and runtime monitoring
//! - [`has_workloads`] — example systems and parametric generators

pub use has_arith as arith;
pub use has_core as verifier;
pub use has_data as data;
pub use has_ltl as ltl;
pub use has_model as model;
pub use has_sim as sim;
pub use has_symbolic as symbolic;
pub use has_vass as vass;
pub use has_workloads as workloads;
