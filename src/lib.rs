//! Facade crate re-exporting the full Hierarchical Artifact System toolkit.
//!
//! See the individual crates for details:
//! - [`has_model`] — the HAS model (schemas, tasks, services, conditions)
//! - [`has_analysis`] — static analysis: dataflow, dead services, dimension cones
//! - [`has_data`] — concrete relational database substrate
//! - [`has_arith`] — linear arithmetic, cells, quantifier elimination
//! - [`has_ltl`] — LTL / Büchi automata / HLTL-FO
//! - [`has_symbolic`] — isomorphism types and symbolic runs
//! - [`has_vass`] — Vector Addition Systems with States
//! - [`has_core`] — the verifier (the paper's primary contribution)
//! - [`has_sim`] — concrete operational semantics and runtime monitoring
//! - [`has_workloads`] — example systems and parametric generators
//! - [`has_corpus`] — ground-truth seeded-violation corpus and differential fuzzing
//!
//! # Quick start
//!
//! Build a one-task system with a flag that a service can set, ask whether
//! the flag is *eventually* set on every run, and read the [`Outcome`]: the
//! property is violated (the idle service can loop forever), and the outcome
//! carries a symbolic witness plus exploration statistics. Setting
//! [`VerifierConfig::threads`](verifier::VerifierConfig::threads) above `1`
//! runs the same search on a worker pool with an identical result.
//!
//! [`Outcome`]: verifier::Outcome
//!
//! ```
//! use has::arith::Rational;
//! use has::ltl::hltl::HltlBuilder;
//! use has::model::{Condition, SetUpdate, SystemBuilder};
//! use has::verifier::{Verifier, VerifierConfig, ViolationKind};
//!
//! // A system with one task, one numeric flag, and two services.
//! let mut b = SystemBuilder::new("quickstart");
//! let root = b.root_task("Main");
//! let flag = b.num_var(root, "flag");
//! b.internal_service(
//!     root,
//!     "set",
//!     Condition::True,
//!     Condition::eq_const(flag, Rational::from_int(1)),
//!     SetUpdate::None,
//! );
//! b.internal_service(root, "idle", Condition::True, Condition::True, SetUpdate::None);
//! let system = b.build().expect("well-formed system");
//!
//! // HLTL-FO property: the flag is eventually set.
//! let mut hb = HltlBuilder::new(system.root());
//! let set = hb.condition(Condition::eq_const(flag, Rational::from_int(1)));
//! let property = hb.finish(set.eventually());
//!
//! // Verify — on one worker thread here, for reproducibility of the doc
//! // test; any thread count produces the identical outcome.
//! let config = VerifierConfig::default().with_threads(1);
//! let outcome = Verifier::with_config(&system, &property, config).verify();
//!
//! // "F set" is violated by the run that only ever fires `idle`.
//! assert!(!outcome.holds);
//! let violation = outcome.violation.expect("a symbolic witness is reported");
//! assert_eq!(violation.task, system.root());
//! // The witnessing run is an infinite local loop — Lemma 21's lasso kind.
//! assert_eq!(violation.kind, ViolationKind::Lasso);
//! assert!(outcome.stats.control_states > 0);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub use has_analysis as analysis;
pub use has_arith as arith;
pub use has_core as verifier;
pub use has_corpus as corpus;
pub use has_data as data;
pub use has_ltl as ltl;
pub use has_model as model;
pub use has_sim as sim;
pub use has_symbolic as symbolic;
pub use has_vass as vass;
pub use has_workloads as workloads;
