//! The paper's running example (Appendix A): verifying the travel-booking
//! process against the discount/cancellation policy of Appendix A.2.
//!
//! The buggy specification lets `Cancel` run while `AddHotel` is still
//! adding a discounted hotel, so the flight can be cancelled with a full
//! refund even though the discount is kept — the property is violated. The
//! fixed specification guards `Cancel` so the hotel reservation must be
//! visible first, and the property holds.
//!
//! Run with `cargo run --release --example travel_booking`.
//!
//! After the two policy checks, the example re-verifies the buggy variant
//! against the simple liveness property `F (status = PAID)` with witness
//! reconstruction on and prints the resulting counterexample tree — the
//! end-to-end "reading a counterexample" walkthrough in the README steps
//! through that output line by line.

use has::verifier::{Verifier, VerifierConfig};
use has::workloads::travel::{
    travel_booking, travel_liveness_property, travel_property, TravelVariant,
};
use std::time::Instant;

fn main() {
    // The full travel-booking system is the largest workload in the
    // repository (6 tasks, ~40 variables, an artifact relation and
    // arithmetic); the default example run uses a bounded search budget so
    // it completes in seconds. Raise the caps (or set the environment
    // variable HAS_TRAVEL_FULL=1) to search exhaustively.
    let full = std::env::var("HAS_TRAVEL_FULL").is_ok();
    let config = if full {
        VerifierConfig::default()
    } else {
        VerifierConfig {
            max_successors: 24,
            max_control_states: 800,
            km_node_cap: 4_000,
            ..VerifierConfig::default()
        }
    };
    for variant in [TravelVariant::Buggy, TravelVariant::Fixed] {
        let t = travel_booking(variant);
        let property = travel_property(&t);
        let start = Instant::now();
        let outcome = Verifier::with_config(&t.system, &property, config.clone()).verify();
        let elapsed = start.elapsed();
        println!(
            "travel-booking [{variant:?}]  ->  {}   ({} ms{})",
            outcome,
            elapsed.as_millis(),
            if full { "" } else { ", bounded search" }
        );
        match variant {
            TravelVariant::Buggy => println!(
                "  modelled bug: Cancel may run while AddHotel is adding a discounted hotel\n  (the bounded search exhausts its coverability budget before reaching that\n  configuration, so this line reads HOLDS — see EXPERIMENTS.md on bounded verdicts)"
            ),
            TravelVariant::Fixed => println!(
                "  expected: HOLDS — Cancel only opens once the hotel reservation is visible"
            ),
        }
    }

    // The counterexample walkthrough: verify a liveness property that is
    // genuinely violated within the bounded budget, with witness
    // reconstruction enabled, and render the hierarchical witness tree.
    let t = travel_booking(TravelVariant::Buggy);
    let liveness = travel_liveness_property(&t);
    let outcome =
        Verifier::with_config(&t.system, &liveness, config.clone().with_witnesses(true)).verify();
    println!("\ntravel-booking vs F(status=PAID)  ->  {outcome}");
    if let Some(tree) = outcome.violation.as_ref().and_then(|v| v.witness.as_ref()) {
        print!("{tree}");
    }
    println!("travel booking example finished");
}
