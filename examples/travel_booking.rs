//! The paper's running example (Appendix A): verifying the travel-booking
//! process against the discount/cancellation policy of Appendix A.2.
//!
//! The buggy specification lets `Cancel` run while `AddHotel` is still
//! adding a discounted hotel, so the flight can be cancelled with a full
//! refund even though the discount is kept — the property is violated. The
//! fixed specification guards `Cancel` so the hotel reservation must be
//! visible first, and the property holds.
//!
//! Run with `cargo run --release --example travel_booking`.

use has::verifier::{Verifier, VerifierConfig};
use has::workloads::travel::{travel_booking, travel_property, TravelVariant};
use std::time::Instant;

fn main() {
    // The full travel-booking system is the largest workload in the
    // repository (6 tasks, ~40 variables, an artifact relation and
    // arithmetic); the default example run uses a bounded search budget so
    // it completes in seconds. Raise the caps (or set the environment
    // variable HAS_TRAVEL_FULL=1) to search exhaustively.
    let full = std::env::var("HAS_TRAVEL_FULL").is_ok();
    let config = if full {
        VerifierConfig::default()
    } else {
        VerifierConfig {
            max_successors: 24,
            max_control_states: 800,
            km_node_cap: 4_000,
            ..VerifierConfig::default()
        }
    };
    for variant in [TravelVariant::Buggy, TravelVariant::Fixed] {
        let t = travel_booking(variant);
        let property = travel_property(&t);
        let start = Instant::now();
        let outcome = Verifier::with_config(&t.system, &property, config.clone()).verify();
        let elapsed = start.elapsed();
        println!(
            "travel-booking [{variant:?}]  ->  {}   ({} ms{})",
            outcome,
            elapsed.as_millis(),
            if full { "" } else { ", bounded search" }
        );
        match variant {
            TravelVariant::Buggy => println!(
                "  expected: VIOLATED — Cancel may run while AddHotel is adding a discounted hotel"
            ),
            TravelVariant::Fixed => println!(
                "  expected: HOLDS — Cancel only opens once the hotel reservation is visible"
            ),
        }
    }
    println!("travel booking example finished");
}
