//! Order-fulfilment workload: verify a safety property symbolically and
//! cross-check it with randomized concrete executions.
//!
//! Run with `cargo run --release --example order_fulfilment`.

use has::data::{DatabaseGenerator, GeneratorConfig};
use has::sim::{monitor_property, ExecutionConfig, Executor};
use has::verifier::Verifier;
use has::workloads::orders::{never_enqueue_property, order_fulfilment, ship_after_quote_property};

fn main() {
    let o = order_fulfilment();

    // 1. Symbolic verification of "ship only after quote".
    let safety = ship_after_quote_property(&o);
    let outcome = Verifier::new(&o.system, &safety).verify();
    println!("ship-after-quote (verifier): {outcome}");

    // 2. A false property: the backlog is never used.
    let falsity = never_enqueue_property(&o);
    let outcome2 = Verifier::new(&o.system, &falsity).verify();
    println!("never-enqueue (verifier):    {outcome2}");

    // 3. Cross-check with randomized concrete executions on a generated
    //    database: the safety property must hold on every sampled run.
    let mut generator = DatabaseGenerator::new(GeneratorConfig::default());
    let db = generator.generate(&o.system.schema.database);
    let mut violations = 0;
    for seed in 0..20 {
        let mut exec = Executor::new(
            &o.system,
            &db,
            ExecutionConfig {
                seed,
                max_steps: 300,
                ..ExecutionConfig::default()
            },
        );
        let tree = exec.run();
        if !monitor_property(&o.system, &db, &tree, &safety) {
            violations += 1;
        }
    }
    println!("ship-after-quote (20 random executions): {violations} violations observed");
    assert_eq!(violations, 0, "safety property must hold on every execution");
    assert!(outcome.holds);
    assert!(!outcome2.holds);
    println!("order fulfilment example finished as expected");
}
