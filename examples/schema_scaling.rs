//! Schema-class scaling demo (the shape of Table 1): verify the same
//! generated property over acyclic, linearly-cyclic and cyclic schemas, with
//! and without artifact relations, and print the measured verification cost.
//!
//! Run with `cargo run --release --example schema_scaling`.

use has::model::SchemaClass;
use has::verifier::{Verifier, VerifierConfig};
use has::workloads::generator::GeneratorParams;
use std::time::Instant;

fn main() {
    println!(
        "{:<36} {:>10} {:>12} {:>12} {:>10}",
        "instance", "holds", "states", "km-nodes", "time(ms)"
    );
    for class in [
        SchemaClass::Acyclic,
        SchemaClass::LinearlyCyclic,
        SchemaClass::Cyclic,
    ] {
        for artifact_relations in [false, true] {
            let params = GeneratorParams {
                schema_class: class,
                artifact_relations,
                depth: 2,
                width: 1,
                numeric_vars: 1,
                arithmetic: false,
            };
            let generated = params.generate();
            let config = VerifierConfig {
                max_successors: 128,
                ..VerifierConfig::default()
            };
            let start = Instant::now();
            let outcome =
                Verifier::with_config(&generated.system, &generated.property, config).verify();
            let elapsed = start.elapsed();
            println!(
                "{:<36} {:>10} {:>12} {:>12} {:>10}",
                generated.label,
                outcome.holds,
                outcome.stats.control_states,
                outcome.stats.coverability_nodes,
                elapsed.as_millis()
            );
        }
    }
}
