//! Quickstart: build a small artifact system, state an HLTL-FO property, and
//! verify it.
//!
//! Run with `cargo run --release --example quickstart`.

use has::ltl::hltl::HltlBuilder;
use has::model::{Condition, SetUpdate, SystemBuilder};
use has::verifier::{Verifier, VerifierConfig};
use has_arith::Rational;

fn main() {
    // A one-task system: an order flag that a service can set.
    let mut b = SystemBuilder::new("quickstart");
    let root = b.root_task("Main");
    let flag = b.num_var(root, "approved");
    b.internal_service(
        root,
        "approve",
        Condition::True,
        Condition::eq_const(flag, Rational::from_int(1)),
        SetUpdate::None,
    );
    b.internal_service(root, "idle", Condition::True, Condition::True, SetUpdate::None);
    let system = b.build().expect("well-formed system");

    // Property 1: "approved is stable under the tautological frame" (holds).
    let mut hb = HltlBuilder::new(root);
    let approved = hb.condition(Condition::eq_const(flag, Rational::from_int(1)));
    let tautology = hb.finish(approved.clone().implies(approved).globally());

    // Property 2: "eventually approved" (violated: the idle loop never approves).
    let mut hb2 = HltlBuilder::new(root);
    let approved2 = hb2.condition(Condition::eq_const(flag, Rational::from_int(1)));
    let liveness = hb2.finish(approved2.eventually());

    for (name, property) in [("G(approved -> approved)", tautology), ("F approved", liveness)] {
        let outcome = Verifier::with_config(&system, &property, VerifierConfig::default()).verify();
        println!("{name}: {outcome}");
    }
}
