//! The projection soundness contract (DESIGN.md §5.9): cone-of-influence
//! projection and dead-guard pruning are *exact* — `Verifier::verify` must
//! report the same verdict (holds, violation kind, violating input type)
//! with projection on and off, and each setting must stay byte-identical
//! across thread counts.
//!
//! The comparison is verdict-level, not statistics-level: projection exists
//! precisely to shrink the coverability graphs, so `km-nodes` and the
//! `proj` dimensions differ between the two settings by design.

use has::verifier::{Verifier, VerifierConfig, ViolationKind};
use has::workloads::counters::{counter_gadget, counter_liveness_property};
use has::workloads::generator::GeneratorParams;
use has::workloads::orders::{never_enqueue_property, order_fulfilment, ship_after_quote_property};
use has::workloads::travel::{travel_booking, travel_liveness_property, TravelVariant};
use has_model::SchemaClass;
use proptest::prelude::*;

/// Caps matching `has_bench::fast_config` so the sweep stays quick in debug
/// builds.
fn capped() -> VerifierConfig {
    VerifierConfig {
        max_successors: 24,
        max_control_states: 800,
        km_node_cap: 4_000,
        ..VerifierConfig::default()
    }
}

/// The verdict triple the equivalence contract compares: everything the
/// verifier *concludes*, none of what it *spent*.
fn verdict(outcome: &has::verifier::Outcome) -> (bool, Option<ViolationKind>, Option<String>) {
    (
        outcome.holds,
        outcome.violation.as_ref().map(|v| v.kind),
        outcome.violation.as_ref().map(|v| v.input_description.clone()),
    )
}

/// Verifies one instance with projection off and on, asserting equal
/// verdicts; within each setting, asserts the rendered outcome is
/// byte-identical at every given thread count.
fn assert_projection_equivalent(
    label: &str,
    system: &has::model::ArtifactSystem,
    property: &has::ltl::HltlFormula,
    config: VerifierConfig,
    thread_counts: &[usize],
) {
    let mut reference = None;
    for projection in [false, true] {
        let config = config.clone().with_projection(projection);
        let base =
            Verifier::with_config(system, property, config.clone().with_threads(1)).verify();
        for &threads in thread_counts {
            let outcome =
                Verifier::with_config(system, property, config.clone().with_threads(threads))
                    .verify();
            assert_eq!(
                format!("{base:?}"),
                format!("{outcome:?}"),
                "{label}: projection={projection} outcome at threads={threads} \
                 differs from sequential"
            );
        }
        match &reference {
            None => reference = Some(verdict(&base)),
            Some(r) => assert_eq!(
                r,
                &verdict(&base),
                "{label}: verdict with projection differs from without"
            ),
        }
    }
}

#[test]
fn travel_liveness_verdict_is_projection_invariant() {
    for variant in [TravelVariant::Buggy, TravelVariant::Fixed] {
        let t = travel_booking(variant);
        let property = travel_liveness_property(&t);
        assert_projection_equivalent(
            &format!("travel-liveness/{variant:?}"),
            &t.system,
            &property,
            capped(),
            &[1, 8],
        );
    }
}

#[test]
fn order_fulfilment_verdict_is_projection_invariant() {
    let o = order_fulfilment();
    for (label, property) in [
        ("orders/ship-after-quote", ship_after_quote_property(&o)),
        ("orders/never-enqueue", never_enqueue_property(&o)),
    ] {
        assert_projection_equivalent(label, &o.system, &property, capped(), &[1, 8]);
    }
}

#[test]
fn counter_gadget_verdict_is_projection_invariant() {
    let g = counter_gadget(2);
    let property = counter_liveness_property(&g);
    assert_projection_equivalent("counter-gadget/d=2", &g.system, &property, capped(), &[1, 8]);
}

/// Strategy: a small random parameter point of the Tables 1/2 generator.
fn arb_params() -> impl Strategy<Value = GeneratorParams> {
    (
        prop_oneof![
            Just(SchemaClass::Acyclic),
            Just(SchemaClass::LinearlyCyclic),
            Just(SchemaClass::Cyclic),
        ],
        any::<bool>(),
        any::<bool>(),
        1usize..=3,
        1usize..=2,
        1usize..=2,
    )
        .prop_map(
            |(schema_class, artifact_relations, arithmetic, depth, width, numeric_vars)| {
                GeneratorParams {
                    schema_class,
                    artifact_relations,
                    arithmetic,
                    depth,
                    width,
                    numeric_vars,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Projection preserves the verdict on generated instances too, at
    /// sequential and parallel thread counts.
    #[test]
    fn generated_instances_are_projection_invariant(params in arb_params()) {
        let generated = params.generate();
        let config = VerifierConfig {
            max_successors: 16,
            max_control_states: 400,
            km_node_cap: 2_000,
            use_cells: params.arithmetic,
            ..VerifierConfig::default()
        };
        let mut reference = None;
        for projection in [false, true] {
            let config = config.clone().with_projection(projection);
            let seq = Verifier::with_config(
                &generated.system,
                &generated.property,
                config.clone().with_threads(1),
            )
            .verify();
            let par = Verifier::with_config(
                &generated.system,
                &generated.property,
                config.with_threads(8),
            )
            .verify();
            prop_assert_eq!(
                format!("{seq:?}"),
                format!("{par:?}"),
                "{}: projection={} differs across threads",
                generated.label,
                projection
            );
            match &reference {
                None => reference = Some(verdict(&seq)),
                Some(r) => prop_assert_eq!(
                    r,
                    &verdict(&seq),
                    "{}: verdict changed under projection",
                    generated.label
                ),
            }
        }
    }
}
