//! End-to-end contract of the static analyzer (`has-analysis`): every
//! system the workload generator can produce validates and analyzes without
//! `Error`-severity diagnostics, and a hand-built model with a provably
//! unsatisfiable guard is reported dead (`HAS105`), pruned by the verifier,
//! and pruned *exactly* — the verdict matches the unpruned run.

use has::analysis::{analyze, Severity};
use has::arith::Rational;
use has::ltl::hltl::HltlBuilder;
use has::model::{Condition, SetUpdate, SystemBuilder};
use has::verifier::{Verifier, VerifierConfig};
use has::workloads::generator::GeneratorParams;
use has_model::SchemaClass;
use proptest::prelude::*;

/// Strategy: a small random parameter point of the Tables 1/2 generator.
fn arb_params() -> impl Strategy<Value = GeneratorParams> {
    (
        prop_oneof![
            Just(SchemaClass::Acyclic),
            Just(SchemaClass::LinearlyCyclic),
            Just(SchemaClass::Cyclic),
        ],
        any::<bool>(),
        any::<bool>(),
        1usize..=3,
        1usize..=2,
        1usize..=2,
    )
        .prop_map(
            |(schema_class, artifact_relations, arithmetic, depth, width, numeric_vars)| {
                GeneratorParams {
                    schema_class,
                    artifact_relations,
                    arithmetic,
                    depth,
                    width,
                    numeric_vars,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The generator only produces well-formed systems: analysis runs to
    /// completion and reports no `Error`-severity diagnostic on any
    /// parameter point (warnings about e.g. write-only columns are fine).
    #[test]
    fn generated_systems_analyze_without_errors(params in arb_params()) {
        let generated = params.generate();
        let report = analyze(&generated.system, Some(&generated.property));
        prop_assert!(
            !report.has_errors(),
            "{}: {}",
            generated.label,
            report
        );
    }
}

/// The deep-narrow stress family is covered explicitly (it is not in the
/// random grid's parameter box).
#[test]
fn deep_narrow_chain_analyzes_without_errors() {
    let generated = GeneratorParams::deep_narrow(6).generate();
    let report = analyze(&generated.system, Some(&generated.property));
    assert!(!report.has_errors(), "{}", report);
}

/// A root task with one live service and one whose guard is the
/// contradiction `x = 0 ∧ x = 1`. The property only observes the live
/// service's effect, so the dead one is semantically irrelevant — which is
/// exactly what the analyzer must prove and the verifier must exploit.
fn dead_guard_fixture() -> (has::model::ArtifactSystem, has::ltl::HltlFormula) {
    let mut b = SystemBuilder::new("dead-guard");
    let root = b.root_task("Main");
    let x = b.num_var(root, "x");
    b.internal_service(
        root,
        "live",
        Condition::True,
        Condition::eq_const(x, Rational::from_int(1)),
        SetUpdate::None,
    );
    b.internal_service(
        root,
        "stuck",
        Condition::eq_const(x, Rational::ZERO).and(Condition::eq_const(x, Rational::from_int(1))),
        Condition::eq_const(x, Rational::from_int(2)),
        SetUpdate::None,
    );
    let system = b.build().unwrap();
    let mut hb = HltlBuilder::new(system.root());
    let set = hb.condition(Condition::eq_const(x, Rational::from_int(1)));
    let property = hb.finish(set.eventually());
    (system, property)
}

/// The unsatisfiable guard is decided exactly and reported as `HAS105`.
#[test]
fn unsatisfiable_guard_is_reported_dead() {
    let (system, property) = dead_guard_fixture();
    let report = analyze(&system, Some(&property));
    assert!(!report.has_errors(), "{report}");
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == 105 && d.severity == Severity::Warning),
        "expected HAS105 for `stuck`: {report}"
    );
    assert_eq!(report.dead_guard_count(), 1, "{report}");
}

/// The verifier prunes the dead service from graph construction (visible in
/// `Stats::dead_services_pruned`) and the pruned verdict matches the
/// unpruned one.
#[test]
fn dead_guard_pruning_preserves_the_verdict() {
    let (system, property) = dead_guard_fixture();
    let on = Verifier::with_config(
        &system,
        &property,
        VerifierConfig::default().with_threads(1).with_projection(true),
    )
    .verify();
    let off = Verifier::with_config(
        &system,
        &property,
        VerifierConfig::default().with_threads(1).with_projection(false),
    )
    .verify();
    assert!(on.stats.dead_services_pruned > 0, "{}", on.stats);
    assert_eq!(off.stats.dead_services_pruned, 0, "{}", off.stats);
    assert_eq!(on.holds, off.holds);
    assert_eq!(
        on.violation.as_ref().map(|v| v.kind),
        off.violation.as_ref().map(|v| v.kind)
    );
}
