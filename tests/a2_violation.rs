//! The headline regression of DESIGN.md §5.12: the Appendix A.2 policy
//! violation of the travel-booking example is actually *found*.
//!
//! Historically this instance reported `HOLDS (bounded search)`: at the
//! default `max_merge_pairs` the successor refinement never branches far
//! enough to *generate* the misbehaving `Cancel` configuration, and once it
//! does (12 merge pairs), the lasso decisions over the resulting
//! Karp–Miller graphs used to grind through the circulation LP for minutes.
//! The shared arena's subsumption pruning plus the monotone-cycle fast path
//! decide the whole instance in well under a second, with every *search*
//! budget — the 50 000-node Karp–Miller cap included — at its default, so
//! the verifier reports the violation the paper describes. The fixed
//! variant still holds under the identical configuration, pinning both
//! directions.

use has::verifier::{Verifier, VerifierConfig, ViolationKind};
use has::workloads::travel::{travel_booking, travel_property, TravelVariant};

/// Default search budgets, with only the abstraction-precision knob
/// (`max_merge_pairs`) raised to the branching depth the Appendix A.2
/// configuration needs. Every cap that bounds the *search* — successors,
/// control states, Karp–Miller nodes — stays at its default.
fn a2_config() -> VerifierConfig {
    VerifierConfig {
        max_merge_pairs: 12,
        ..VerifierConfig::default()
    }
    .with_witnesses(true)
}

/// The feature under test is the shared arena; when a fuzz/bench harness
/// runs the suite with `HAS_SHARED_KM=0` the bounded-search `HOLDS` result
/// is expected again, so the assertions only apply with sharing on.
fn sharing_enabled() -> bool {
    VerifierConfig::default_shared_km()
}

/// Appendix A.2, buggy variant: `Cancel` opens on `paid()` alone, so a
/// discounted `AlsoBookHotel` payment can be followed by a `CancelFlight`
/// without the discount penalty. The violation must be found within the
/// default *search* budgets — no node-cap inflation — and the witness tree
/// must name the originating task.
#[test]
fn buggy_travel_violates_a2_within_default_search_budgets() {
    if !sharing_enabled() {
        return;
    }
    let t = travel_booking(TravelVariant::Buggy);
    let property = travel_property(&t);
    let outcome = Verifier::with_config(&t.system, &property, a2_config()).verify();
    assert!(
        !outcome.holds,
        "the Appendix A.2 violation must be found at default budgets: {outcome}"
    );
    let violation = outcome
        .violation
        .as_ref()
        .expect("a violated outcome carries its violation");
    assert!(
        matches!(
            violation.kind,
            ViolationKind::Blocking | ViolationKind::Lasso | ViolationKind::Returning
        ),
        "kind = {:?}",
        violation.kind
    );
    let witness = violation
        .witness
        .as_ref()
        .expect("witness reconstruction was requested");
    assert_eq!(
        witness.task_name, "ManageTrips",
        "the violating run is a run of the root task"
    );
    assert!(
        violation.origin_name().is_some(),
        "the carrier chain resolves an originating task"
    );
}

/// The corrected variant — `Cancel` waits for the hotel reservation — must
/// still hold under the identical configuration, so the violation above is
/// attributable to the guard and not to search-budget noise.
#[test]
fn fixed_travel_holds_under_the_same_budgets() {
    if !sharing_enabled() {
        return;
    }
    let t = travel_booking(TravelVariant::Fixed);
    let property = travel_property(&t);
    let outcome = Verifier::with_config(&t.system, &property, a2_config()).verify();
    assert!(outcome.holds, "the fixed variant must hold: {outcome}");
    assert!(outcome.violation.is_none());
}
