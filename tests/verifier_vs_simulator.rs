//! Cross-crate integration tests: the symbolic verifier against the concrete
//! simulator.
//!
//! The simulator is an under-approximation (one database, one finite random
//! execution), so the checkable relationship is one-sided: if the verifier
//! says a property *holds*, no simulated execution may violate it. The
//! differential sample is drawn from the ground-truth corpus generator
//! (`has::corpus`) so every parameter axis of the workload generator is
//! exercised; the hand-written orders cases below it are kept as named
//! regressions of the original harness.

use has::corpus::{sample, Certificate, CorpusParams};
use has::data::{DatabaseGenerator, GeneratorConfig};
use has::sim::{monitor_property, ExecutionConfig, Executor};
use has::verifier::{Verifier, VerifierConfig};
use has::workloads::orders::{never_enqueue_property, order_fulfilment, ship_after_quote_property};

/// A corpus-drawn differential sample: for every instance the verifier
/// proves, no simulated execution may violate the property — and clean
/// certificates must in fact be proved.
#[test]
fn corpus_sample_verifier_vs_simulator() {
    let corpus = sample(&CorpusParams { seed: 3, count: 12 });
    for inst in &corpus {
        let outcome =
            Verifier::with_config(&inst.system, &inst.property, quick_config()).verify();
        if inst.certificate == Certificate::Clean {
            assert!(outcome.holds, "{}: {outcome}", inst.label);
        }
        if !outcome.holds {
            continue;
        }
        let mut generator = DatabaseGenerator::new(GeneratorConfig::default());
        let db = generator.generate(&inst.system.schema.database);
        for seed in 0..5 {
            let mut exec = Executor::new(
                &inst.system,
                &db,
                ExecutionConfig {
                    seed,
                    max_steps: 150,
                    ..ExecutionConfig::default()
                },
            );
            let tree = exec.run();
            assert!(
                monitor_property(&inst.system, &db, &tree, &inst.property),
                "{}: simulation (seed {seed}) violated a property the verifier proved",
                inst.label
            );
        }
    }
}

fn quick_config() -> VerifierConfig {
    VerifierConfig {
        max_successors: 48,
        max_control_states: 3_000,
        ..VerifierConfig::default()
    }
}

#[test]
fn orders_safety_holds_and_simulation_agrees() {
    let o = order_fulfilment();
    let property = ship_after_quote_property(&o);
    let outcome = Verifier::with_config(&o.system, &property, quick_config()).verify();
    assert!(outcome.holds, "{outcome}");

    let mut generator = DatabaseGenerator::new(GeneratorConfig::default());
    let db = generator.generate(&o.system.schema.database);
    for seed in 0..10 {
        let mut exec = Executor::new(
            &o.system,
            &db,
            ExecutionConfig {
                seed,
                max_steps: 250,
                ..ExecutionConfig::default()
            },
        );
        let tree = exec.run();
        assert!(
            monitor_property(&o.system, &db, &tree, &property),
            "simulation (seed {seed}) violated a property the verifier proved"
        );
    }
}

#[test]
fn orders_false_property_is_reported_violated() {
    let o = order_fulfilment();
    let property = never_enqueue_property(&o);
    let outcome = Verifier::with_config(&o.system, &property, quick_config()).verify();
    assert!(!outcome.holds, "{outcome}");
    assert!(outcome.violation.is_some());
    assert!(outcome.stats.control_states > 0);
}

#[test]
fn simulated_violations_are_never_missed_by_the_verifier() {
    // For every packaged false property, find a concrete violation by
    // simulation (when one exists within the budget) and check the verifier
    // also reports the property as violated.
    let o = order_fulfilment();
    let property = never_enqueue_property(&o);
    let mut generator = DatabaseGenerator::new(GeneratorConfig::default());
    let db = generator.generate(&o.system.schema.database);
    let mut found_concrete_violation = false;
    for seed in 0..10 {
        let mut exec = Executor::new(
            &o.system,
            &db,
            ExecutionConfig {
                seed,
                max_steps: 250,
                ..ExecutionConfig::default()
            },
        );
        let tree = exec.run();
        if !monitor_property(&o.system, &db, &tree, &property) {
            found_concrete_violation = true;
            break;
        }
    }
    if found_concrete_violation {
        let outcome = Verifier::with_config(&o.system, &property, quick_config()).verify();
        assert!(
            !outcome.holds,
            "a concrete counterexample exists but the verifier reported `holds`"
        );
    }
}
