//! The pre-solver soundness contract (DESIGN.md §5.11): the static
//! refutation filters — control skeleton, state-equation Z-relaxation,
//! counter-abstraction DFA, lasso circulation — and the boundedness
//! certificates are *exact* reductions. `Verifier::verify` must report the
//! same verdict (holds, violation kind, violating input type) with the
//! pre-solver on and off, and each setting must stay byte-identical across
//! thread counts.
//!
//! The comparison is verdict-level, not statistics-level: the pre-solver
//! exists precisely to skip Karp–Miller builds, so `km-nodes` and the
//! `presolve` counters differ between the two settings by design.
//!
//! A directed property test closes the loop at the VASS layer: whenever a
//! filter refutes a sub-query, a capped exact search must find nothing (the
//! complementary test — certificates never change a Karp–Miller graph — is
//! `certified_bounds_match_the_graph` in `has-vass`).

use has::vass::{
    control_reachable, counter_dfa_refutes, z_cover_feasible, BoundedExplorer, Vass,
};
use has::verifier::{Verifier, VerifierConfig, ViolationKind};
use has::workloads::counters::{counter_gadget, counter_liveness_property};
use has::workloads::generator::GeneratorParams;
use has::workloads::orders::{never_enqueue_property, order_fulfilment, ship_after_quote_property};
use has::workloads::travel::{travel_booking, travel_liveness_property, TravelVariant};
use has_model::SchemaClass;
use proptest::prelude::*;

/// Caps matching `has_bench::fast_config` so the sweep stays quick in debug
/// builds.
fn capped() -> VerifierConfig {
    VerifierConfig {
        max_successors: 24,
        max_control_states: 800,
        km_node_cap: 4_000,
        ..VerifierConfig::default()
    }
}

/// The verdict triple the equivalence contract compares: everything the
/// verifier *concludes*, none of what it *spent*.
fn verdict(outcome: &has::verifier::Outcome) -> (bool, Option<ViolationKind>, Option<String>) {
    (
        outcome.holds,
        outcome.violation.as_ref().map(|v| v.kind),
        outcome.violation.as_ref().map(|v| v.input_description.clone()),
    )
}

/// Verifies one instance with the pre-solver off and on, asserting equal
/// verdicts; within each setting, asserts the rendered outcome is
/// byte-identical at every given thread count.
fn assert_presolve_equivalent(
    label: &str,
    system: &has::model::ArtifactSystem,
    property: &has::ltl::HltlFormula,
    config: VerifierConfig,
    thread_counts: &[usize],
) {
    let mut reference = None;
    for presolve in [false, true] {
        let config = config.clone().with_presolve(presolve);
        let base =
            Verifier::with_config(system, property, config.clone().with_threads(1)).verify();
        for &threads in thread_counts {
            let outcome =
                Verifier::with_config(system, property, config.clone().with_threads(threads))
                    .verify();
            assert_eq!(
                format!("{base:?}"),
                format!("{outcome:?}"),
                "{label}: presolve={presolve} outcome at threads={threads} \
                 differs from sequential"
            );
        }
        match &reference {
            None => reference = Some(verdict(&base)),
            Some(r) => assert_eq!(
                r,
                &verdict(&base),
                "{label}: verdict with the pre-solver differs from without"
            ),
        }
    }
}

#[test]
fn travel_liveness_verdict_is_presolve_invariant() {
    for variant in [TravelVariant::Buggy, TravelVariant::Fixed] {
        let t = travel_booking(variant);
        let property = travel_liveness_property(&t);
        assert_presolve_equivalent(
            &format!("travel-liveness/{variant:?}"),
            &t.system,
            &property,
            capped(),
            &[1, 8],
        );
    }
}

#[test]
fn order_fulfilment_verdict_is_presolve_invariant() {
    let o = order_fulfilment();
    for (label, property) in [
        ("orders/ship-after-quote", ship_after_quote_property(&o)),
        ("orders/never-enqueue", never_enqueue_property(&o)),
    ] {
        assert_presolve_equivalent(label, &o.system, &property, capped(), &[1, 8]);
    }
}

#[test]
fn counter_gadget_verdict_is_presolve_invariant() {
    let g = counter_gadget(2);
    let property = counter_liveness_property(&g);
    assert_presolve_equivalent("counter-gadget/d=2", &g.system, &property, capped(), &[1, 8]);
}

/// Witness reconstruction must also be unaffected: the reported origin and
/// rendered witness tree of the travel workload's violation are identical
/// with the pre-solver on and off.
#[test]
fn travel_witness_is_presolve_invariant() {
    let t = travel_booking(TravelVariant::Buggy);
    let property = travel_liveness_property(&t);
    let run = |presolve: bool| {
        let config = capped()
            .with_witnesses(true)
            .with_threads(1)
            .with_presolve(presolve);
        Verifier::with_config(&t.system, &property, config).verify()
    };
    let off = run(false);
    let on = run(true);
    assert_eq!(verdict(&off), verdict(&on));
    let render = |outcome: &has::verifier::Outcome| {
        outcome
            .violation
            .as_ref()
            .map(|v| (v.origin(), v.witness.as_ref().map(ToString::to_string)))
    };
    assert_eq!(render(&off), render(&on), "witness tree changed");
}

/// Strategy: a small random parameter point of the Tables 1/2 generator.
fn arb_params() -> impl Strategy<Value = GeneratorParams> {
    (
        prop_oneof![
            Just(SchemaClass::Acyclic),
            Just(SchemaClass::LinearlyCyclic),
            Just(SchemaClass::Cyclic),
        ],
        any::<bool>(),
        any::<bool>(),
        1usize..=3,
        1usize..=2,
        1usize..=2,
    )
        .prop_map(
            |(schema_class, artifact_relations, arithmetic, depth, width, numeric_vars)| {
                GeneratorParams {
                    schema_class,
                    artifact_relations,
                    arithmetic,
                    depth,
                    width,
                    numeric_vars,
                }
            },
        )
}

/// Strategy: a small random VASS for the directed filter-soundness test.
fn arb_vass() -> impl Strategy<Value = Vass> {
    (2usize..=5, 1usize..=2, 1usize..=8).prop_flat_map(|(states, dim, actions)| {
        proptest::collection::vec(
            (0..states, proptest::collection::vec(-2i64..=2, dim), 0..states),
            actions,
        )
        .prop_map(move |acts| {
            let mut v = Vass::new(states, dim);
            for (from, delta, to) in acts {
                v.add_action(from, delta, to);
            }
            v
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The pre-solver preserves the verdict on generated instances too, at
    /// sequential and parallel thread counts.
    #[test]
    fn generated_instances_are_presolve_invariant(params in arb_params()) {
        let generated = params.generate();
        let config = VerifierConfig {
            max_successors: 16,
            max_control_states: 400,
            km_node_cap: 2_000,
            use_cells: params.arithmetic,
            ..VerifierConfig::default()
        };
        let mut reference = None;
        for presolve in [false, true] {
            let config = config.clone().with_presolve(presolve);
            let seq = Verifier::with_config(
                &generated.system,
                &generated.property,
                config.clone().with_threads(1),
            )
            .verify();
            let par = Verifier::with_config(
                &generated.system,
                &generated.property,
                config.with_threads(8),
            )
            .verify();
            prop_assert_eq!(
                format!("{seq:?}"),
                format!("{par:?}"),
                "{}: presolve={} differs across threads",
                generated.label,
                presolve
            );
            match &reference {
                None => reference = Some(verdict(&seq)),
                Some(r) => prop_assert_eq!(
                    r,
                    &verdict(&seq),
                    "{}: verdict changed under the pre-solver",
                    generated.label
                ),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Directed filter soundness at the VASS layer: whenever the control or
    /// state-equation or DFA filter refutes coverage of a target state, a
    /// capped exact forward search must find no configuration at it.
    #[test]
    fn refuted_targets_are_never_reached(v in arb_vass(), target_seed in 0usize..64) {
        let target = target_seed % v.states;
        let reachable = control_reachable(&v, 0);
        let mut targets = vec![false; v.states];
        targets[target] = true;
        let refuted = !targets.iter().zip(&reachable).any(|(&t, &r)| t && r)
            || !z_cover_feasible(&v, 0, &targets, &reachable)
            || counter_dfa_refutes(&v, 0, &targets, &reachable);
        if refuted {
            let explorer = BoundedExplorer::new(6, 4_000);
            prop_assert!(
                !explorer.reachable_states(&v, 0).contains(&target),
                "statically refuted target {target} reached by exact search"
            );
        }
    }
}
