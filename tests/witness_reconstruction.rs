//! Hierarchical counterexample reconstruction (DESIGN.md §5.7): per-task
//! witness trees, `ViolationKind::Returning` for violations carried by
//! returned sub-calls, the determinism of the chosen counterexample, and
//! witness *replay* — executing the reconstructed tree step by step in the
//! concrete simulator and re-judging it with the runtime monitor.

use has::arith::Rational;
use has::corpus::{replay_database, witness_script};
use has::ltl::hltl::HltlBuilder;
use has::model::{ArtifactSystem, Condition, ServiceRef, SetUpdate, SystemBuilder, TaskId};
use has::sim::{monitor_property, replay_with_retries, ExecutionConfig};
use has::verifier::{Verifier, VerifierConfig, ViolationKind};

/// Root opens `Child` (whose sub-formula `F cflag=1` every child run
/// violates — the child returns immediately without ever setting the flag)
/// and then idles forever. The property `G (open Child → [F cflag=1]_Child)`
/// is violated, and the violation is carried by the *returned* sub-call.
fn returned_subcall_instance() -> (ArtifactSystem, has::ltl::HltlFormula, TaskId) {
    let mut b = SystemBuilder::new("returning");
    let root = b.root_task("Main");
    b.internal_service(root, "idle", Condition::True, Condition::True, SetUpdate::None);
    let child = b.child_task(root, "Child");
    let cflag = b.num_var(child, "cflag");
    b.internal_service(child, "noop", Condition::True, Condition::True, SetUpdate::None);
    let system = b.build().unwrap();
    let child_id = system.schema.task_by_name("Child").unwrap();

    let mut cb = HltlBuilder::new(child_id);
    let set = cb.condition(Condition::eq_const(cflag, Rational::from_int(1)));
    let child_formula = cb.finish(set.eventually());

    let mut rb = HltlBuilder::new(system.root());
    let open = rb.service(ServiceRef::Opening(child_id));
    let sub = rb.child(child_id, child_formula);
    let property = rb.finish(open.implies(sub).globally());
    (system, property, child_id)
}

/// The acceptance-criterion regression: `ViolationKind::Returning` must be
/// constructed by a real verification run — the violating root run is an
/// idle lasso, but what it violates is the guarantee about the *returned*
/// child call, so the reported kind is `Returning` and the origin names the
/// sub-task.
#[test]
fn violation_carried_by_a_returned_subcall_reports_returning() {
    let (system, property, child_id) = returned_subcall_instance();
    let config = VerifierConfig::default().with_witnesses(true);
    let outcome = Verifier::with_config(&system, &property, config).verify();
    assert!(!outcome.holds, "{outcome}");
    let violation = outcome.violation.as_ref().expect("witness");
    assert_eq!(violation.kind, ViolationKind::Returning, "{outcome}");
    assert_eq!(violation.origin(), child_id);
    assert_eq!(violation.origin_name(), Some("Child"));
    assert!(
        outcome.to_string().contains("returning run originating in task `Child`"),
        "{outcome}"
    );

    let witness = violation.witness.as_ref().expect("tree");
    // The root node is still the root's own run: a lasso whose prefix opens
    // the child (which returns) and whose cycle idles.
    assert_eq!(witness.kind, ViolationKind::Lasso);
    let rendered = witness.to_string();
    assert!(rendered.contains("task `Main`"), "{rendered}");
    assert!(rendered.contains("open child `Child` (β=0) → returns"), "{rendered}");
    assert!(rendered.contains("└ task `Child` — returning run"), "{rendered}");
    assert!(rendered.contains("[violates φ0]"), "{rendered}");
    // The nested child node records its own run ending in the closing step.
    assert!(rendered.contains("close task"), "{rendered}");
}

/// Without the retention flag nothing changes: same verdict and stats as
/// with witnesses, no tree, and the kind stays the root's own path kind
/// (`Returning` requires reconstruction to be attributable).
#[test]
fn no_witness_mode_is_unchanged() {
    let (system, property, _) = returned_subcall_instance();
    let plain = Verifier::new(&system, &property).verify();
    assert!(!plain.holds);
    let violation = plain.violation.as_ref().expect("violation");
    assert!(violation.witness.is_none());
    assert_eq!(violation.kind, ViolationKind::Lasso);
    assert_eq!(violation.origin(), violation.task, "origin defaults to the root");

    let with = Verifier::with_config(
        &system,
        &property,
        VerifierConfig::default().with_witnesses(true),
    )
    .verify();
    assert_eq!(plain.holds, with.holds);
    assert_eq!(plain.stats, with.stats, "retention must not change statistics");
}

/// A three-level chain where the violation is carried through *two* levels
/// of returned calls: Root → Mid → Leaf, with `Leaf`'s returned run the one
/// violating its sub-formula. The origin must name the deepest task.
#[test]
fn origin_descends_through_nested_returned_calls() {
    let mut b = SystemBuilder::new("chain");
    let root = b.root_task("Root");
    b.internal_service(root, "idle", Condition::True, Condition::True, SetUpdate::None);
    let mid = b.child_task(root, "Mid");
    let leaf = b.child_task(mid, "Leaf");
    let lflag = b.num_var(leaf, "lflag");
    b.internal_service(leaf, "noop", Condition::True, Condition::True, SetUpdate::None);
    let system = b.build().unwrap();
    let mid_id = system.schema.task_by_name("Mid").unwrap();
    let leaf_id = system.schema.task_by_name("Leaf").unwrap();

    let mut lb = HltlBuilder::new(leaf_id);
    let set = lb.condition(Condition::eq_const(lflag, Rational::from_int(1)));
    let leaf_formula = lb.finish(set.eventually());

    let mut mb = HltlBuilder::new(mid_id);
    let open_leaf = mb.service(ServiceRef::Opening(leaf_id));
    let sub_leaf = mb.child(leaf_id, leaf_formula);
    let mid_formula = mb.finish(open_leaf.implies(sub_leaf).globally());

    let mut rb = HltlBuilder::new(system.root());
    let open_mid = rb.service(ServiceRef::Opening(mid_id));
    let sub_mid = rb.child(mid_id, mid_formula);
    let property = rb.finish(open_mid.implies(sub_mid).globally());

    let config = VerifierConfig::default().with_witnesses(true);
    let outcome = Verifier::with_config(&system, &property, config).verify();
    assert!(!outcome.holds, "{outcome}");
    let violation = outcome.violation.as_ref().expect("witness");
    assert_eq!(violation.kind, ViolationKind::Returning, "{outcome}");
    assert_eq!(violation.origin(), leaf_id, "{outcome}");
    assert_eq!(violation.origin_name(), Some("Leaf"));
    let rendered = violation.witness.as_ref().expect("tree").to_string();
    assert!(rendered.contains("└ task `Mid`"), "{rendered}");
    assert!(rendered.contains("└ task `Leaf`"), "{rendered}");
}

/// Lowers a reconstructed witness to a script, replays it in the concrete
/// executor on a replay-friendly database, and asserts the resulting tree of
/// runs *violates* the property under the runtime monitor — the symbolic
/// counterexample corresponds to an executable concrete run.
fn assert_witness_replays(
    system: &ArtifactSystem,
    property: &has::ltl::HltlFormula,
    config: VerifierConfig,
) {
    let outcome = Verifier::with_config(system, property, config.with_witnesses(true)).verify();
    assert!(!outcome.holds, "{outcome}");
    let witness = outcome
        .violation
        .as_ref()
        .and_then(|v| v.witness.as_ref())
        .expect("witness tree");
    let script = witness_script(system, witness, 2).expect("witness lowers to a script");
    let db = replay_database(&system.schema.database);
    let exec_config = ExecutionConfig {
        seed: 1,
        ..ExecutionConfig::default()
    };
    let tree = replay_with_retries(system, &db, &script, exec_config, 64)
        .expect("witness replays step by step in the simulator");
    assert!(
        !monitor_property(system, &db, &tree, property),
        "the replayed witness run must violate the property it witnesses"
    );
}

/// The orders workload's violated safety property: its reconstructed witness
/// replays as a concrete simulator run that the monitor rejects.
#[test]
fn orders_witness_replays_in_the_simulator() {
    let o = has::workloads::orders::order_fulfilment();
    let property = has::workloads::orders::never_enqueue_property(&o);
    assert_witness_replays(&o.system, &property, VerifierConfig::default());
}

/// The buggy travel booking's violated liveness property (the EXP-W1
/// walkthrough instance): its witness tree — prefix, pump cycle and nested
/// child runs — replays end to end.
#[test]
fn travel_witness_replays_in_the_simulator() {
    let t = has::workloads::travel::travel_booking(has::workloads::travel::TravelVariant::Buggy);
    let property = has::workloads::travel::travel_liveness_property(&t);
    let capped = VerifierConfig {
        max_successors: 24,
        max_control_states: 800,
        km_node_cap: 4_000,
        ..VerifierConfig::default()
    };
    assert_witness_replays(&t.system, &property, capped);
}

/// The returned-sub-call witness replays too: the replayed tree of runs has
/// the child opened *and* closed, and the monitor attributes the violation
/// exactly as the verifier did.
#[test]
fn returned_subcall_witness_replays_in_the_simulator() {
    let (system, property, _) = returned_subcall_instance();
    assert_witness_replays(&system, &property, VerifierConfig::default());
}

/// The witness choice is part of the determinism contract: the rendered
/// violation (tree included) is byte-identical at every thread count on the
/// returned-sub-call instance. (The travel workload and the deep-narrow
/// chain are covered by the witnesses-on case in
/// `tests/parallel_determinism.rs` — not repeated here.)
#[test]
fn witness_choice_is_byte_identical_across_thread_counts() {
    let capped = VerifierConfig {
        max_successors: 24,
        max_control_states: 800,
        km_node_cap: 4_000,
        ..VerifierConfig::default()
    }
    .with_witnesses(true);

    let (system, property, _) = returned_subcall_instance();
    let reference =
        Verifier::with_config(&system, &property, capped.clone().with_threads(1)).verify();
    for threads in [2usize, 8] {
        let outcome =
            Verifier::with_config(&system, &property, capped.clone().with_threads(threads))
                .verify();
        assert_eq!(
            format!("{reference:?}"),
            format!("{outcome:?}"),
            "witness at threads={threads} differs from sequential"
        );
        let reference_tree = reference.violation.as_ref().and_then(|v| v.witness.as_ref());
        let tree = outcome.violation.as_ref().and_then(|v| v.witness.as_ref());
        assert_eq!(
            reference_tree.map(ToString::to_string),
            tree.map(ToString::to_string),
            "rendered tree differs at threads={threads}"
        );
    }
}
