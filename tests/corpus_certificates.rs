//! Certificate soundness of the ground-truth corpus (DESIGN.md §5.10): the
//! generator's plants must mean what their certificates claim, *before* the
//! fuzz driver uses them to score the verifier.
//!
//! - Clean certificates: the verifier proves the property, and randomized
//!   simulator sweeps never produce a run the monitor rejects.
//! - Planted certificates: the verifier reports the certified violation
//!   kind at both witness settings, attributes the certified origin with
//!   witnesses enabled, and the reconstructed witness tree is *executable*
//!   — it replays step by step in the concrete executor as a run the
//!   monitor judges violating.

use has::corpus::{
    fuzz, instance, replay_database, sample, witness_script, Certificate, CorpusParams,
    FuzzOptions, PLANT_ROTATION,
};
use has::data::{DatabaseGenerator, GeneratorConfig};
use has::sim::{monitor_property, replay_with_retries, ExecutionConfig, Executor};
use has::verifier::{Verifier, VerifierConfig};
use has::workloads::generator::{GeneratorParams, Plant};

/// Every plant of the rotation at the default parameter point: the verifier
/// verdict, kind and origin match the certificate at both witness settings.
#[test]
fn planted_outcomes_match_certificates_at_both_witness_settings() {
    let params = GeneratorParams::default();
    for plant in PLANT_ROTATION {
        let inst = instance(&params, plant);
        for witnesses in [false, true] {
            let config = VerifierConfig::default().with_witnesses(witnesses);
            let outcome = Verifier::with_config(&inst.system, &inst.property, config).verify();
            match &inst.certificate {
                Certificate::Clean => {
                    assert!(outcome.holds, "{}: {outcome}", inst.label);
                }
                Certificate::Planted {
                    origin, origin_name, ..
                } => {
                    assert!(!outcome.holds, "{}: {outcome}", inst.label);
                    let violation = outcome.violation.as_ref().expect("violation record");
                    let expected = inst.certificate.expected_kind(witnesses).unwrap();
                    assert_eq!(
                        violation.kind, expected,
                        "{} (witnesses={witnesses}): {outcome}",
                        inst.label
                    );
                    if witnesses {
                        assert_eq!(
                            violation.origin(),
                            *origin,
                            "{}: expected origin `{origin_name}`",
                            inst.label
                        );
                    }
                }
            }
        }
    }
}

/// Clean instances are clean *semantically*, not just symbolically: random
/// concrete executions on a generated database never violate the property.
#[test]
fn clean_instances_survive_simulator_sweeps() {
    let params = GeneratorParams::default();
    for plant in [Plant::CleanTautology, Plant::CleanDichotomy, Plant::CleanNested] {
        let inst = instance(&params, plant);
        let mut generator = DatabaseGenerator::new(GeneratorConfig::default());
        let db = generator.generate(&inst.system.schema.database);
        for seed in 0..8 {
            let mut exec = Executor::new(
                &inst.system,
                &db,
                ExecutionConfig {
                    seed,
                    max_steps: 150,
                    ..ExecutionConfig::default()
                },
            );
            let tree = exec.run();
            assert!(
                monitor_property(&inst.system, &db, &tree, &inst.property),
                "{}: simulated run (seed {seed}) violated a clean certificate",
                inst.label
            );
        }
    }
}

/// Every planted violation's witness tree is executable: the lowered script
/// replays in the concrete executor and the monitor rejects the replayed run.
#[test]
fn planted_witnesses_replay_step_by_step() {
    let params = GeneratorParams::default();
    for plant in [Plant::Lasso, Plant::Blocking, Plant::Returning] {
        let inst = instance(&params, plant);
        let outcome = Verifier::with_config(
            &inst.system,
            &inst.property,
            VerifierConfig::default().with_witnesses(true),
        )
        .verify();
        let witness = outcome
            .violation
            .as_ref()
            .and_then(|v| v.witness.as_ref())
            .unwrap_or_else(|| panic!("{}: no witness tree", inst.label));
        let script = witness_script(&inst.system, witness, 2)
            .unwrap_or_else(|e| panic!("{}: {e}", inst.label));
        let db = replay_database(&inst.system.schema.database);
        let exec_config = ExecutionConfig {
            seed: 1,
            ..ExecutionConfig::default()
        };
        let tree = replay_with_retries(&inst.system, &db, &script, exec_config, 64)
            .unwrap_or_else(|e| panic!("{}: witness does not replay: {e}", inst.label));
        assert!(
            !monitor_property(&inst.system, &db, &tree, &inst.property),
            "{}: the replayed witness run satisfies the property",
            inst.label
        );
    }
}

/// A small differential batch across the full configuration matrix finds no
/// soundness mismatch (the deep sweep is EXP-C2, run by the bench harness).
#[test]
fn small_fuzz_batch_is_sound() {
    let opts = FuzzOptions {
        seed: 5,
        count: 6,
        ..FuzzOptions::default()
    };
    let report = fuzz(&opts);
    assert_eq!(report.instances, 6);
    assert!(report.sound(), "mismatches: {:#?}", report.mismatches);
    assert!(report.replays > 0, "no witness tree was replayed");
}

/// Corpus sampling is reproducible: a committed seed names the same instance
/// sequence on every machine.
#[test]
fn corpus_sampling_is_reproducible() {
    let params = CorpusParams { seed: 9, count: 8 };
    let a = sample(&params);
    let b = sample(&params);
    for (x, y) in a.iter().zip(b.iter()) {
        assert_eq!(x.label, y.label);
        assert_eq!(x.certificate, y.certificate);
        assert_eq!(format!("{:?}", x.params), format!("{:?}", y.params));
    }
}
