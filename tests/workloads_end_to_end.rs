//! End-to-end checks over the packaged workloads and generated families.

use has::model::{validate, SchemaClass};
use has::verifier::{Verifier, VerifierConfig};
use has::workloads::counters::{counter_gadget, counter_liveness_property};
use has::workloads::generator::GeneratorParams;
use has::workloads::travel::{travel_booking, travel_property, TravelVariant};

fn quick_config() -> VerifierConfig {
    VerifierConfig {
        max_successors: 48,
        max_control_states: 3_000,
        ..VerifierConfig::default()
    }
}

#[test]
fn generated_families_verify_within_bounds() {
    for class in [
        SchemaClass::Acyclic,
        SchemaClass::LinearlyCyclic,
        SchemaClass::Cyclic,
    ] {
        for artifact_relations in [false, true] {
            let params = GeneratorParams {
                schema_class: class,
                artifact_relations,
                arithmetic: false,
                depth: 2,
                width: 1,
                numeric_vars: 1,
            };
            let g = params.generate();
            assert!(validate(&g.system).is_ok());
            let outcome =
                Verifier::with_config(&g.system, &g.property, quick_config()).verify();
            // Generated properties are liveness guarantees about children;
            // either answer is acceptable (the point is cost measurement),
            // but the verifier must terminate and report statistics.
            assert!(outcome.stats.control_states > 0, "{}", g.label);
        }
    }
}

#[test]
fn generated_cost_grows_with_artifact_relations() {
    let base = GeneratorParams {
        schema_class: SchemaClass::Acyclic,
        artifact_relations: false,
        ..GeneratorParams::default()
    };
    let with_sets = GeneratorParams {
        artifact_relations: true,
        ..base.clone()
    };
    let g0 = base.generate();
    let g1 = with_sets.generate();
    let o0 = Verifier::with_config(&g0.system, &g0.property, quick_config()).verify();
    let o1 = Verifier::with_config(&g1.system, &g1.property, quick_config()).verify();
    // Adding artifact relations adds counter dimensions and never reduces the
    // explored state space (the Table 1 row ordering).
    assert!(o1.stats.counter_dimensions > o0.stats.counter_dimensions);
    assert!(o1.stats.control_states >= o0.stats.control_states);
}

#[test]
fn counter_gadget_is_verifiable_under_hltl_fo() {
    let g = counter_gadget(2);
    let property = counter_liveness_property(&g);
    let outcome = Verifier::with_config(&g.system, &property, quick_config()).verify();
    // The liveness property is violated (a counter task may stop
    // decrementing); what matters is that HLTL-FO verification of the gadget
    // terminates — unlike the cross-task LTL of Theorem 11, which is not
    // expressible in the property language at all.
    assert!(outcome.stats.control_states > 0);
}

#[test]
fn travel_booking_variants_build_with_property() {
    for variant in [TravelVariant::Buggy, TravelVariant::Fixed] {
        let t = travel_booking(variant);
        assert!(validate(&t.system).is_ok());
        let p = travel_property(&t);
        assert!(p.validate(&t.system).is_ok());
    }
}
