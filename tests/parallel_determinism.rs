//! The parallel determinism contract (DESIGN.md §5.6): `Verifier::verify`
//! must produce byte-identical outcomes and statistics at every thread
//! count, on the hand-written workloads and on randomly generated instances.

use has::verifier::{Verifier, VerifierConfig};
use has::workloads::generator::GeneratorParams;
use has::workloads::orders::{never_enqueue_property, order_fulfilment, ship_after_quote_property};
use has::workloads::travel::{travel_booking, travel_property, TravelVariant};
use has_model::SchemaClass;
use proptest::prelude::*;

/// Caps matching `has_bench::fast_config` so the sweep stays quick in debug
/// builds; the determinism contract is cap-independent.
fn capped() -> VerifierConfig {
    VerifierConfig {
        max_successors: 24,
        max_control_states: 800,
        km_node_cap: 4_000,
        ..VerifierConfig::default()
    }
}

/// Runs one system/property at the given thread counts and asserts that the
/// rendered `Outcome` (including the violation and every statistic) is
/// byte-identical across all of them.
fn assert_identical_across_threads(
    label: &str,
    system: &has::model::ArtifactSystem,
    property: &has::ltl::HltlFormula,
    config: VerifierConfig,
    thread_counts: &[usize],
) {
    let reference = Verifier::with_config(system, property, config.clone().with_threads(1)).verify();
    for &threads in thread_counts {
        let outcome =
            Verifier::with_config(system, property, config.clone().with_threads(threads)).verify();
        assert_eq!(
            format!("{reference:?}"),
            format!("{outcome:?}"),
            "{label}: outcome at threads={threads} differs from sequential"
        );
        assert_eq!(
            reference.stats, outcome.stats,
            "{label}: stats at threads={threads} differ from sequential"
        );
        assert_eq!(reference.holds, outcome.holds, "{label}");
    }
}

#[test]
fn travel_booking_is_deterministic_across_thread_counts() {
    for variant in [TravelVariant::Buggy, TravelVariant::Fixed] {
        let t = travel_booking(variant);
        let property = travel_property(&t);
        assert_identical_across_threads(
            &format!("travel/{variant:?}"),
            &t.system,
            &property,
            capped(),
            &[2, 8],
        );
    }
}

/// The scheduling worst case for the old level-synchronized engine: a chain
/// of six tasks has exactly one task per hierarchy level, so level barriers
/// serialized everything. The readiness scheduler pipelines the chain — and
/// must still produce byte-identical outcomes at every thread count. (CI
/// runs this test binary under a timeout so a scheduler deadlock on this
/// shape fails fast instead of hanging the job.)
#[test]
fn deep_narrow_chain_is_deterministic_across_thread_counts() {
    let generated = GeneratorParams::deep_narrow(6).generate();
    assert_identical_across_threads(
        &generated.label,
        &generated.system,
        &generated.property,
        capped(),
        &[1, 2, 8],
    );
}

/// Witness reconstruction (DESIGN.md §5.7) extends the determinism contract
/// to *which* counterexample is reported: with retention on, the rendered
/// violation — witness tree included, since `Violation::witness` is part of
/// the compared `Debug` output — must stay byte-identical at every thread
/// count. Exercised on the travel workload (realistic hierarchy, violated
/// buggy variant) and the deep-narrow chain (the scheduler's worst case).
#[test]
fn witness_reconstruction_is_deterministic_across_thread_counts() {
    let config = capped().with_witnesses(true);
    let t = travel_booking(TravelVariant::Buggy);
    let property = travel_property(&t);
    assert_identical_across_threads(
        "travel/Buggy+witnesses",
        &t.system,
        &property,
        config.clone(),
        &[2, 8],
    );
    let generated = GeneratorParams::deep_narrow(6).generate();
    assert_identical_across_threads(
        &format!("{}+witnesses", generated.label),
        &generated.system,
        &generated.property,
        config,
        &[1, 2, 8],
    );
}

/// The shared Karp–Miller arena (DESIGN.md §5.12) chains a pair's queries
/// sequentially while pairs still fan out, so the contract extends to it:
/// with `shared_km` pinned on (immune to a `HAS_SHARED_KM` opt-out in the
/// environment), outcomes, witnesses and the new reuse/subsumption counters
/// must stay byte-identical at every thread count — on the travel workload
/// and the scheduler's deep-narrow worst case.
#[test]
fn shared_km_is_deterministic_across_thread_counts() {
    let config = capped().with_shared_km(true).with_witnesses(true);
    for variant in [TravelVariant::Buggy, TravelVariant::Fixed] {
        let t = travel_booking(variant);
        let property = travel_property(&t);
        assert_identical_across_threads(
            &format!("travel/{variant:?}+shared-km"),
            &t.system,
            &property,
            config.clone(),
            &[2, 8],
        );
    }
    let generated = GeneratorParams::deep_narrow(6).generate();
    assert_identical_across_threads(
        &format!("{}+shared-km", generated.label),
        &generated.system,
        &generated.property,
        config,
        &[1, 2, 8],
    );
}

#[test]
fn order_fulfilment_is_deterministic_across_thread_counts() {
    let o = order_fulfilment();
    for (label, property) in [
        ("orders/ship-after-quote", ship_after_quote_property(&o)),
        ("orders/never-enqueue", never_enqueue_property(&o)),
    ] {
        assert_identical_across_threads(label, &o.system, &property, capped(), &[2, 8]);
    }
}

/// Strategy: a small random parameter point of the Tables 1/2 generator.
fn arb_params() -> impl Strategy<Value = GeneratorParams> {
    (
        prop_oneof![
            Just(SchemaClass::Acyclic),
            Just(SchemaClass::LinearlyCyclic),
            Just(SchemaClass::Cyclic),
        ],
        any::<bool>(),
        any::<bool>(),
        // Depth up to 3 so the work-stealing scheduler sees multi-level
        // readiness chains (not just leaf + root) on generated instances.
        1usize..=3,
        1usize..=2,
        1usize..=2,
    )
        .prop_map(
            |(schema_class, artifact_relations, arithmetic, depth, width, numeric_vars)| {
                GeneratorParams {
                    schema_class,
                    artifact_relations,
                    arithmetic,
                    depth,
                    width,
                    numeric_vars,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Parallel and sequential `verify()` agree on generated instances, for
    /// a thread count drawn alongside the instance.
    #[test]
    fn parallel_agrees_with_sequential_on_generated_instances(
        params in arb_params(),
        threads in 2usize..=6,
    ) {
        let generated = params.generate();
        let config = VerifierConfig {
            max_successors: 16,
            max_control_states: 400,
            km_node_cap: 2_000,
            use_cells: params.arithmetic,
            ..VerifierConfig::default()
        };
        let seq = Verifier::with_config(
            &generated.system,
            &generated.property,
            config.clone().with_threads(1),
        )
        .verify();
        let par = Verifier::with_config(
            &generated.system,
            &generated.property,
            config.with_threads(threads),
        )
        .verify();
        prop_assert_eq!(format!("{seq:?}"), format!("{par:?}"), "{}", generated.label);
        prop_assert_eq!(seq.stats, par.stats);
    }
}
