//! Integration tests for the model restrictions and the logic layer,
//! exercised through the public facade crate.

use has::ltl::hltl::HltlBuilder;
use has::ltl::{Buchi, Ltl};
use has::model::{Condition, SetUpdate, SystemBuilder, ValidationError};
use has_arith::Rational;

#[test]
fn restriction_3_is_enforced_through_the_facade() {
    let mut b = SystemBuilder::new("r3");
    let root = b.root_task("Root");
    let x = b.id_var(root, "x");
    b.input_vars(root, &[x]);
    let child = b.child_task(root, "Child");
    let cy = b.id_var(child, "cy");
    b.map_output(child, x, cy);
    assert!(matches!(
        b.build(),
        Err(ValidationError::ReturnOverlapsInput { .. })
    ));
}

#[test]
fn hierarchy_must_be_reachable_and_acyclic() {
    // The builder cannot produce broken hierarchies, so validate is exercised
    // on a correct one here and the negative cases live in the model crate's
    // unit tests.
    let mut b = SystemBuilder::new("ok");
    let root = b.root_task("Root");
    let _x = b.id_var(root, "x");
    let c1 = b.child_task(root, "C1");
    let _c2 = b.child_task(c1, "C2");
    let sys = b.build().unwrap();
    assert_eq!(sys.schema.depth(), 3);
    assert_eq!(sys.schema.descendants(root).len(), 2);
}

#[test]
fn buchi_automata_respect_finite_and_infinite_acceptance() {
    // φ = G(p → F q) on a finite trace p·q and on the lasso (p)(q)^ω.
    let p = Ltl::prop('p');
    let q = Ltl::prop('q');
    let phi = p.implies(q.eventually()).globally();
    let b = Buchi::from_ltl(&phi);
    let trace = ["p", "q"];
    let holds = |j: usize, c: &char| trace[j].contains(*c);
    assert!(b.accepts_finite(2, &holds));
    assert!(b.accepts_lasso(2, 1, &holds));
    // The lasso (p)^ω with no q violates the property.
    let trace2 = ["p"];
    let holds2 = |j: usize, c: &char| trace2[j].contains(*c);
    assert!(!b.accepts_lasso(1, 0, &holds2));
}

#[test]
fn hltl_formulas_flatten_into_per_task_obligations() {
    let mut b = SystemBuilder::new("flatten");
    let root = b.root_task("Root");
    let flag = b.num_var(root, "flag");
    let child = b.child_task(root, "Child");
    let c_flag = b.num_var(child, "c_flag");
    b.internal_service(root, "noop", Condition::True, Condition::True, SetUpdate::None);
    b.internal_service(child, "noop", Condition::True, Condition::True, SetUpdate::None);
    let sys = b.build().unwrap();

    let mut cb = HltlBuilder::new(child);
    let done = cb.condition(Condition::eq_const(c_flag, Rational::from_int(1)));
    let psi = cb.finish(done.eventually());

    let mut rb = HltlBuilder::new(root);
    let sub = rb.child(child, psi);
    let root_cond = rb.condition(Condition::eq_const(flag, Rational::ZERO));
    let property = rb.finish(sub.and(root_cond).globally());
    assert!(property.validate(&sys).is_ok());

    let flat = property.flatten();
    assert_eq!(flat.phi(root).len(), 1);
    assert_eq!(flat.phi(child).len(), 1);
    assert_eq!(flat.root_task, root);
}
