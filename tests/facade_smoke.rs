//! Smoke test for the `has` facade: every re-exported module is reachable
//! under its facade name, and a trivial workload verifies end to end through
//! facade paths only.

use has::arith::Rational;
use has::data::{DatabaseGenerator, GeneratorConfig};
use has::ltl::hltl::HltlBuilder;
use has::ltl::{HltlFormula, Ltl};
use has::model::{ArtifactSystem, Condition, SetUpdate, SystemBuilder};
use has::sim::{ExecutionConfig, Executor};
use has::symbolic::{Expr, TaskContext};
use has::vass::{BoundedExplorer, Vass};
use has::verifier::{Outcome, Verifier, VerifierConfig};
use has::workloads::{travel_booking, TravelVariant};

/// Every facade module re-exports its headline types (compile-time check;
/// the `let` bindings keep the imports exercised rather than just resolved).
#[test]
fn facade_reexports_are_reachable() {
    // has::arith
    let one = Rational::from_int(1);
    assert_eq!(one, Rational::new(2, 2));
    // has::ltl
    let f: Ltl<u8> = Ltl::prop(0).eventually();
    assert!(f.eval_finite(1, &|_, _| true));
    // has::vass
    let mut v = Vass::new(2, 1);
    v.add_action(0, vec![1], 1);
    assert!(v.state_reachable(0, 1));
    let explorer = BoundedExplorer::new(4, 100);
    assert!(explorer.reachable_states(&v, 0).contains(&1));
    // has::workloads
    let travel = travel_booking(TravelVariant::Fixed);
    assert!(!travel.system.schema.database.relations.is_empty());
    // has::symbolic — the expression type is nameable and displays.
    let _: Option<(Expr, TaskContext)> = None;
}

/// A one-task system built, verified, and simulated purely through the
/// facade: the tautology holds, the liveness property is refuted, and the
/// simulator executes the system on a generated database.
#[test]
fn trivial_workload_verifies_end_to_end() {
    let mut b = SystemBuilder::new("facade-smoke");
    let root = b.root_task("Main");
    let flag = b.num_var(root, "approved");
    b.internal_service(
        root,
        "approve",
        Condition::True,
        Condition::eq_const(flag, Rational::from_int(1)),
        SetUpdate::None,
    );
    b.internal_service(root, "idle", Condition::True, Condition::True, SetUpdate::None);
    let system: ArtifactSystem = b.build().expect("well-formed system");

    let mut hb = HltlBuilder::new(root);
    let approved = hb.condition(Condition::eq_const(flag, Rational::from_int(1)));
    let tautology: HltlFormula = hb.finish(approved.clone().implies(approved).globally());

    let mut hb = HltlBuilder::new(root);
    let approved = hb.condition(Condition::eq_const(flag, Rational::from_int(1)));
    let liveness: HltlFormula = hb.finish(approved.eventually());

    let holds: Outcome = Verifier::with_config(&system, &tautology, VerifierConfig::default()).verify();
    assert!(holds.holds, "tautology must hold: {holds}");

    let refuted = Verifier::with_config(&system, &liveness, VerifierConfig::default()).verify();
    assert!(!refuted.holds, "the idle loop never approves: {refuted}");
    assert!(refuted.violation.is_some());

    // has::data + has::sim: execute the same system concretely.
    let mut generator = DatabaseGenerator::new(GeneratorConfig::default());
    let db = generator.generate(&system.schema.database);
    let mut exec = Executor::new(&system, &db, ExecutionConfig::default());
    let runs = exec.run();
    // The "idle" service is always enabled, so a run must record steps.
    assert!(!runs.root().steps.is_empty(), "simulation recorded no steps");
    assert!(runs.total_steps() > 0);
}
