//! The differential fuzzing driver.
//!
//! [`fuzz`] samples a seeded corpus, runs every instance through the full
//! configuration matrix (threads ∈ {1, 4} × projection on/off × presolve
//! on/off × witnesses on/off × shared Karp–Miller on/off), and cross-checks
//! each outcome against the instance's [`Certificate`]:
//!
//! * **verdict** — clean instances must verify; planted instances must be
//!   reported violated (a missed plant is excused only when the exploration
//!   statistics show the configured caps were reached — a *bounded* verdict,
//!   counted separately);
//! * **kind and origin** — the reported [`ViolationKind`] and
//!   `Violation::origin()` must match the certificate at each witness mode;
//! * **witness replay** — every reconstructed witness tree is lowered to a
//!   script ([`witness_script`]), re-executed step by step in the `has-sim`
//!   executor on a [`replay_database`], and the resulting concrete tree of
//!   runs must *violate* the property under the runtime monitor.
//!
//! Any mismatch is delta-minimized ([`minimize_params`]) before being
//! reported, so a fuzz failure is actionable as a small regression.

use crate::{
    instance, minimize_params, replay_database, sample, witness_script, Certificate,
    CorpusInstance, CorpusParams,
};
use has_core::{Outcome, Stats, Verifier, VerifierConfig};
use has_sim::{monitor_property, replay_with_retries, ExecutionConfig};
use has_workloads::generator::{GeneratorParams, Plant};
use std::fmt;

/// One point of the configuration matrix.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConfigPoint {
    /// Worker threads.
    pub threads: usize,
    /// Cone-of-influence query projection.
    pub projection: bool,
    /// The query pre-solver (static refutation filters).
    pub presolve: bool,
    /// Witness reconstruction.
    pub witnesses: bool,
    /// Shared incremental Karp–Miller arena (DESIGN.md §5.12).
    pub shared: bool,
}

impl fmt::Display for ConfigPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "threads={} projection={} presolve={} witnesses={} shared={}",
            self.threads,
            if self.projection { "on" } else { "off" },
            if self.presolve { "on" } else { "off" },
            if self.witnesses { "on" } else { "off" },
            if self.shared { "on" } else { "off" }
        )
    }
}

/// The full matrix: threads ∈ {1, 4} × projection × presolve × witnesses ×
/// shared Karp–Miller. The `shared` axis pins the arena on or off per point
/// (overriding any `HAS_SHARED_KM` in the environment), so every campaign
/// cross-checks verdict, kind and origin between the shared and unshared
/// engines at otherwise identical configurations.
pub fn config_matrix() -> Vec<ConfigPoint> {
    let mut out = Vec::new();
    for threads in [1usize, 4] {
        for projection in [true, false] {
            for presolve in [true, false] {
                for witnesses in [false, true] {
                    for shared in [false, true] {
                        out.push(ConfigPoint {
                            threads,
                            projection,
                            presolve,
                            witnesses,
                            shared,
                        });
                    }
                }
            }
        }
    }
    out
}

/// Options of a fuzzing run.
#[derive(Clone, Debug)]
pub struct FuzzOptions {
    /// Corpus seed.
    pub seed: u64,
    /// Number of instances.
    pub count: usize,
    /// Base verifier configuration; the matrix overrides threads,
    /// projection and witnesses per run.
    pub config: VerifierConfig,
    /// Sampling seeds tried per witness replay (each retry re-runs the
    /// script with fresh draws for unconstrained variables).
    pub replay_attempts: u64,
    /// Pump-cycle unrollings in replayed lassos.
    pub cycle_repeats: usize,
    /// Whether to delta-minimize mismatching instances.
    pub minimize: bool,
}

impl Default for FuzzOptions {
    fn default() -> Self {
        FuzzOptions {
            seed: 0xC0DE_5EED,
            count: 120,
            // Bounded exploration caps (the bench harness's profile): the
            // planted violations are all *shallow* — root-level lassos, a
            // root child that blocks, a root child whose returned call
            // violates — so they are found well within these budgets, and
            // the clean plants are cap-immune (see [`Certificate::Clean`]).
            // Tight caps buy a ~10× larger corpus for the same wall-clock.
            config: VerifierConfig {
                max_successors: 48,
                max_control_states: 3_000,
                km_node_cap: 20_000,
                ..VerifierConfig::default()
            },
            replay_attempts: 24,
            cycle_repeats: 2,
            minimize: true,
        }
    }
}

/// What one verifier run amounted to, against the certificate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunVerdict {
    /// Outcome matches the certificate (including a confirmed replay when a
    /// witness tree was produced).
    Agrees,
    /// A planted violation was not found, but the exploration statistics
    /// show a configured cap was reached: a documented bounded verdict, not
    /// a soundness mismatch.
    Bounded,
    /// Soundness mismatch (wrong verdict, kind or origin; or a witness tree
    /// that does not replay as a violating concrete run).
    Mismatch(String),
}

/// Per-certificate-kind scoreboard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KindScore {
    /// Verifier runs checked against this certificate kind.
    pub runs: usize,
    /// Runs agreeing with the certificate.
    pub agreed: usize,
    /// Runs excused as bounded.
    pub bounded: usize,
}

impl KindScore {
    fn absorb(&mut self, verdict: &RunVerdict) {
        self.runs += 1;
        match verdict {
            RunVerdict::Agrees => self.agreed += 1,
            RunVerdict::Bounded => self.bounded += 1,
            RunVerdict::Mismatch(_) => {}
        }
    }

    /// Recall in [0, 1]: agreeing runs over non-bounded runs.
    pub fn recall(&self) -> f64 {
        let scored = self.runs - self.bounded;
        if scored == 0 {
            1.0
        } else {
            self.agreed as f64 / scored as f64
        }
    }
}

/// One soundness mismatch, with its minimized reproducer.
#[derive(Clone, Debug)]
pub struct Mismatch {
    /// Label of the offending instance.
    pub label: String,
    /// The plant it carried.
    pub plant: Plant,
    /// The parameter point it was generated from.
    pub params: GeneratorParams,
    /// The configuration point the mismatch occurred at.
    pub at: ConfigPoint,
    /// What disagreed.
    pub detail: String,
    /// The delta-minimized parameter point still reproducing the mismatch
    /// (equals `params` when minimization is disabled or no reduction
    /// preserved the failure).
    pub minimized: GeneratorParams,
}

/// Aggregate result of a fuzzing run.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Instances generated.
    pub instances: usize,
    /// Verifier runs performed (instances × matrix points).
    pub runs: usize,
    /// Witness trees replayed in the simulator.
    pub replays: usize,
    /// Scoreboard for clean certificates.
    pub clean: KindScore,
    /// Scoreboard for planted lassos.
    pub lasso: KindScore,
    /// Scoreboard for planted blocking violations.
    pub blocking: KindScore,
    /// Scoreboard for planted returning violations.
    pub returning: KindScore,
    /// Every soundness mismatch found.
    pub mismatches: Vec<Mismatch>,
}

impl FuzzReport {
    /// `true` when no soundness mismatch was observed.
    pub fn sound(&self) -> bool {
        self.mismatches.is_empty()
    }

    /// Total bounded verdicts across certificate kinds.
    pub fn bounded(&self) -> usize {
        self.clean.bounded + self.lasso.bounded + self.blocking.bounded + self.returning.bounded
    }
}

/// Whether the run's statistics show a configured exploration cap was
/// reached. The statistics are summed across tasks, so this is a
/// *conservative over*-classification (a sum can reach the cap without any
/// single query having been truncated) — acceptable because bounded verdicts
/// only ever excuse a missed plant, never a wrong violation.
fn truncated(stats: &Stats, config: &VerifierConfig) -> bool {
    stats.control_states >= config.max_control_states
        || stats.coverability_nodes >= config.km_node_cap
}

/// Checks one verifier outcome (and, with witnesses on, its replayed
/// witness) against the certificate.
fn check_outcome(
    inst: &CorpusInstance,
    outcome: &Outcome,
    at: ConfigPoint,
    config: &VerifierConfig,
    opts: &FuzzOptions,
    replays: &mut usize,
) -> RunVerdict {
    match &inst.certificate {
        Certificate::Clean => {
            if outcome.holds {
                RunVerdict::Agrees
            } else {
                // Clean plants are tautology-shaped: satisfied on every
                // explored path, so not even a truncated search may report
                // a violation.
                RunVerdict::Mismatch(format!(
                    "clean instance reported violated: {outcome}"
                ))
            }
        }
        Certificate::Planted {
            origin,
            origin_name,
            ..
        } => {
            if outcome.holds {
                return if truncated(&outcome.stats, config) {
                    RunVerdict::Bounded
                } else {
                    RunVerdict::Mismatch(format!(
                        "planted {} violation missed without reaching any cap: {outcome}",
                        inst.plant
                    ))
                };
            }
            let Some(violation) = outcome.violation.as_ref() else {
                return RunVerdict::Mismatch("violated but no violation record".to_string());
            };
            let expected_kind = inst
                .certificate
                .expected_kind(at.witnesses)
                .expect("planted certificate");
            if violation.kind != expected_kind {
                return RunVerdict::Mismatch(format!(
                    "expected {expected_kind:?}, verifier reported {:?}",
                    violation.kind
                ));
            }
            if at.witnesses {
                if violation.origin() != *origin {
                    return RunVerdict::Mismatch(format!(
                        "expected origin `{origin_name}`, verifier reported `{}`",
                        violation.origin_name().unwrap_or("<root>")
                    ));
                }
                let Some(witness) = violation.witness.as_ref() else {
                    return RunVerdict::Mismatch(
                        "witnesses enabled but no tree reconstructed".to_string(),
                    );
                };
                let script = match witness_script(&inst.system, witness, opts.cycle_repeats) {
                    Ok(script) => script,
                    Err(e) => return RunVerdict::Mismatch(format!("unscriptable witness: {e}")),
                };
                let db = replay_database(&inst.system.schema.database);
                *replays += 1;
                let exec_config = ExecutionConfig {
                    seed: 1,
                    ..ExecutionConfig::default()
                };
                let tree = match replay_with_retries(
                    &inst.system,
                    &db,
                    &script,
                    exec_config,
                    opts.replay_attempts,
                ) {
                    Ok(tree) => tree,
                    Err(e) => {
                        return RunVerdict::Mismatch(format!("witness does not replay: {e}"))
                    }
                };
                if monitor_property(&inst.system, &db, &tree, &inst.property) {
                    return RunVerdict::Mismatch(
                        "replayed witness run satisfies the property".to_string(),
                    );
                }
            }
            RunVerdict::Agrees
        }
    }
}

/// Runs one instance at one matrix point.
fn check_at(
    inst: &CorpusInstance,
    at: ConfigPoint,
    opts: &FuzzOptions,
    replays: &mut usize,
) -> RunVerdict {
    let config = opts
        .config
        .clone()
        .with_threads(at.threads)
        .with_projection(at.projection)
        .with_presolve(at.presolve)
        .with_witnesses(at.witnesses)
        .with_shared_km(at.shared);
    let outcome = Verifier::with_config(&inst.system, &inst.property, config.clone()).verify();
    check_outcome(inst, &outcome, at, &config, opts, replays)
}

/// Runs the differential fuzzing campaign.
pub fn fuzz(opts: &FuzzOptions) -> FuzzReport {
    let corpus = sample(&CorpusParams {
        seed: opts.seed,
        count: opts.count,
    });
    let matrix = config_matrix();
    let mut report = FuzzReport {
        instances: corpus.len(),
        ..FuzzReport::default()
    };
    for inst in &corpus {
        for &at in &matrix {
            report.runs += 1;
            let verdict = check_at(inst, at, opts, &mut report.replays);
            let score = match (&inst.certificate, inst.plant) {
                (Certificate::Clean, _) => &mut report.clean,
                (_, Plant::Lasso) => &mut report.lasso,
                (_, Plant::Blocking) => &mut report.blocking,
                (_, Plant::Returning) => &mut report.returning,
                _ => &mut report.clean,
            };
            score.absorb(&verdict);
            if let RunVerdict::Mismatch(detail) = verdict {
                let minimized = if opts.minimize {
                    let plant = inst.plant;
                    let mut scratch_replays = 0usize;
                    minimize_params(&inst.params, |candidate| {
                        let reduced = instance(candidate, plant);
                        matches!(
                            check_at(&reduced, at, opts, &mut scratch_replays),
                            RunVerdict::Mismatch(_)
                        )
                    })
                } else {
                    inst.params.clone()
                };
                report.mismatches.push(Mismatch {
                    label: inst.label.clone(),
                    plant: inst.plant,
                    params: inst.params.clone(),
                    at,
                    detail,
                    minimized,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small smoke batch across the whole matrix: zero mismatches, and
    /// every certificate kind actually scored.
    #[test]
    fn smoke_batch_is_sound() {
        let opts = FuzzOptions {
            seed: 11,
            count: 6,
            ..FuzzOptions::default()
        };
        let report = fuzz(&opts);
        assert_eq!(report.instances, 6);
        assert_eq!(report.runs, 6 * 32);
        assert!(
            report.sound(),
            "mismatches: {:#?}",
            report.mismatches
        );
        for (name, score) in [
            ("clean", report.clean),
            ("lasso", report.lasso),
            ("blocking", report.blocking),
            ("returning", report.returning),
        ] {
            assert!(score.runs > 0, "{name} never scored");
            assert!(score.recall() == 1.0, "{name} recall {}", score.recall());
        }
        assert!(report.replays > 0, "no witness was replayed");
    }

    /// An instance whose certificate is deliberately wrong is caught and
    /// minimized — exercising the mismatch path end to end.
    #[test]
    fn wrong_certificates_are_caught_and_minimized() {
        let params = GeneratorParams {
            depth: 2,
            width: 2,
            ..GeneratorParams::default()
        };
        let mut inst = instance(&params, Plant::Lasso);
        inst.certificate = Certificate::Clean; // lie
        let opts = FuzzOptions::default();
        let mut replays = 0;
        let at = ConfigPoint {
            threads: 1,
            projection: true,
            presolve: true,
            witnesses: false,
            shared: true,
        };
        let verdict = check_at(&inst, at, &opts, &mut replays);
        assert!(matches!(verdict, RunVerdict::Mismatch(_)), "{verdict:?}");
    }
}
