//! Witness-tree → replay-script conversion.
//!
//! A reconstructed [`WitnessNode`] tree names the steps of a violating
//! symbolic run per task. [`witness_script`] lowers it to a
//! [`RunScript`] the `has-sim` replayer can execute: service names are
//! resolved to indices, each `OpenChild` step is paired with the child node
//! describing the chosen child run, and a lasso's pump cycle is unrolled a
//! configurable number of times (the monitor's finite-trace semantics judges
//! the unrolled run).

use has_core::{WitnessNode, WitnessStep};
use has_model::{ArtifactSystem, TaskId};
use has_sim::{RunScript, ScriptMove};
use std::fmt;

/// Why a witness tree could not be lowered to a script.
#[derive(Clone, Debug)]
pub struct ScriptError {
    /// The task whose node failed to lower.
    pub task: TaskId,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot script witness of task {:?}: {}", self.task, self.reason)
    }
}

impl std::error::Error for ScriptError {}

/// Lowers a witness tree to a replay script. `cycle_repeats` is how many
/// times a lasso node's pump cycle is unrolled (0 replays the prefix alone;
/// 2 demonstrates the cycle is re-enterable from its own post-state).
pub fn witness_script(
    system: &ArtifactSystem,
    node: &WitnessNode,
    cycle_repeats: usize,
) -> Result<RunScript, ScriptError> {
    let mut moves = Vec::new();
    let steps = node
        .prefix
        .iter()
        .chain(node.cycle.iter().cycle().take(node.cycle.len() * cycle_repeats));
    for step in steps {
        match step {
            WitnessStep::Internal { service } => {
                let task = system.schema.task(node.task);
                let Some(idx) = task
                    .internal_services
                    .iter()
                    .position(|s| s.name == *service)
                else {
                    return Err(ScriptError {
                        task: node.task,
                        reason: format!("no internal service named `{service}`"),
                    });
                };
                moves.push(ScriptMove::Internal(idx));
            }
            WitnessStep::OpenChild {
                child,
                child_name,
                beta,
                output,
                ..
            } => {
                // Witness children are deduplicated structurally, so the
                // node for this call is *any* child node realizing the same
                // task, truth assignment and returned-ness.
                let Some(child_node) = node.children.iter().find(|c| {
                    c.task == *child
                        && c.beta == *beta
                        && (c.kind == has_core::ViolationKind::Returning) == output.is_some()
                }) else {
                    return Err(ScriptError {
                        task: node.task,
                        reason: format!(
                            "no child node matches the `{child_name}` call (β={beta:?})"
                        ),
                    });
                };
                let script = witness_script(system, child_node, cycle_repeats)?;
                moves.push(ScriptMove::Open {
                    child: *child,
                    script,
                });
            }
            WitnessStep::CloseChild { child, .. } => {
                moves.push(ScriptMove::Close(*child));
            }
            // The task's own closing is driven by the *parent's* CloseChild
            // move (the replayer applies the output map there); as the last
            // step of a returning run it needs no move of its own.
            WitnessStep::CloseTask => {}
        }
    }
    Ok(RunScript { moves })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance;
    use has_core::{Verifier, VerifierConfig};
    use has_sim::ScriptMove;
    use has_workloads::generator::{GeneratorParams, Plant};

    /// The returning plant's witness lowers to opening `Probe`, running its
    /// empty script and closing it. The root's pump cycle may itself open
    /// and close the child again (the cycle search is free to pick any
    /// non-negative closed walk), so the lowering guarantees balanced
    /// open/close pairs rather than an exact count.
    #[test]
    fn returning_witness_lowers_to_open_and_close() {
        let inst = instance(&GeneratorParams::default(), Plant::Returning);
        let outcome = Verifier::with_config(
            &inst.system,
            &inst.property,
            VerifierConfig::default().with_witnesses(true),
        )
        .verify();
        let witness = outcome
            .violation
            .as_ref()
            .and_then(|v| v.witness.as_ref())
            .expect("witness tree");
        let script = witness_script(&inst.system, witness, 1).expect("lowers");
        let opens = script
            .moves
            .iter()
            .filter(|m| matches!(m, ScriptMove::Open { .. }))
            .count();
        let closes = script
            .moves
            .iter()
            .filter(|m| matches!(m, ScriptMove::Close(_)))
            .count();
        assert!(opens >= 1, "the Probe call must be opened");
        assert_eq!(opens, closes, "every opened child is closed");
        let Some(ScriptMove::Open { script: child, .. }) = script
            .moves
            .iter()
            .find(|m| matches!(m, ScriptMove::Open { .. }))
        else {
            unreachable!()
        };
        assert!(child.moves.is_empty(), "the serviceless Probe has no moves");
    }
}
