//! Delta-minimization of mismatching instances.
//!
//! When the fuzz driver finds a mismatch it shrinks the *generator
//! parameters* while the mismatch persists, so a fuzz failure lands as the
//! smallest instance of its family — the committed regression is readable
//! instead of being a depth-3 arithmetic instance with artifact relations.

use has_model::SchemaClass;
use has_workloads::generator::GeneratorParams;

/// Candidate one-step reductions of a parameter point, in the order tried:
/// drop hierarchy levels, then branching, then numeric dimensions, then the
/// feature toggles, then the schema-class complexity.
fn reductions(p: &GeneratorParams) -> Vec<GeneratorParams> {
    let mut out = Vec::new();
    if p.depth > 1 {
        out.push(GeneratorParams {
            depth: p.depth - 1,
            ..p.clone()
        });
    }
    if p.width > 1 {
        out.push(GeneratorParams {
            width: p.width - 1,
            ..p.clone()
        });
    }
    if p.numeric_vars > 0 {
        out.push(GeneratorParams {
            numeric_vars: p.numeric_vars - 1,
            ..p.clone()
        });
    }
    if p.artifact_relations {
        out.push(GeneratorParams {
            artifact_relations: false,
            ..p.clone()
        });
    }
    if p.arithmetic {
        out.push(GeneratorParams {
            arithmetic: false,
            ..p.clone()
        });
    }
    if p.schema_class != SchemaClass::Acyclic {
        out.push(GeneratorParams {
            schema_class: SchemaClass::Acyclic,
            ..p.clone()
        });
    }
    out
}

/// Greedily shrinks `params` while `still_fails` keeps returning `true` for
/// the reduced point, to a local minimum: no single further reduction
/// preserves the failure.
pub fn minimize_params<F>(params: &GeneratorParams, mut still_fails: F) -> GeneratorParams
where
    F: FnMut(&GeneratorParams) -> bool,
{
    let mut current = params.clone();
    loop {
        let Some(next) = reductions(&current)
            .into_iter()
            .find(|candidate| still_fails(candidate))
        else {
            return current;
        };
        current = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic failure predicate ("fails whenever depth ≥ 2") minimizes
    /// to the smallest parameter point still satisfying it.
    #[test]
    fn minimization_reaches_a_local_minimum() {
        let start = GeneratorParams {
            schema_class: SchemaClass::Cyclic,
            depth: 3,
            width: 2,
            numeric_vars: 2,
            artifact_relations: true,
            arithmetic: true,
        };
        let min = minimize_params(&start, |p| p.depth >= 2);
        assert_eq!(min.depth, 2);
        assert_eq!(min.width, 1);
        assert_eq!(min.numeric_vars, 0);
        assert!(!min.artifact_relations);
        assert!(!min.arithmetic);
        assert_eq!(min.schema_class, SchemaClass::Acyclic);
    }

    /// If no reduction preserves the failure the original point is returned.
    #[test]
    fn irreducible_points_are_returned_unchanged() {
        let start = GeneratorParams::default();
        let min = minimize_params(&start, |_| false);
        assert_eq!(format!("{start:?}"), format!("{min:?}"));
    }
}
