//! Replay-friendly concrete databases.
//!
//! The randomized `has-sim` sampler solves conditions by drawing values from
//! the database's active domain, so witness replay succeeds quickly only
//! when the database actually *contains* rows matching the shapes the
//! services demand — including self-referential foreign keys (the generated
//! cyclic schemas bind a `FACT` row's `next` column to the row itself).
//! [`replay_database`] builds a minimal instance where every such lookup has
//! a row-local answer.

use has_data::{DatabaseInstance, Value};
use has_model::{AttrKind, DatabaseSchema};

/// Rows per relation in a replay database. Two keeps the sampling pools tiny
/// (high per-sample hit probability) while still giving conditions a choice.
const ROWS: u64 = 2;

/// Builds a small database where row `r` of every relation references row
/// `r` of every foreign-key target — so self-references resolve to the row
/// itself and cross-relation joins always have a diagonal answer. Numeric
/// attributes of row `r` hold `r + 1`.
pub fn replay_database(schema: &DatabaseSchema) -> DatabaseInstance {
    let mut db = DatabaseInstance::new(schema);
    for (rel_id, relation) in schema.iter() {
        for r in 0..ROWS {
            let row: Vec<Value> = relation
                .attributes
                .iter()
                .map(|attr| match attr.kind {
                    AttrKind::Key => Value::id(rel_id, r),
                    AttrKind::Numeric => Value::num((r + 1) as i64),
                    AttrKind::ForeignKey(target) => Value::id(target, r),
                })
                .collect();
            db.insert(schema, rel_id, row)
                .expect("replay database rows are well-formed by construction");
        }
    }
    debug_assert!(db.check_foreign_keys(schema).is_ok());
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use has_model::SchemaClass;
    use has_workloads::generator::GeneratorParams;

    #[test]
    fn every_schema_class_gets_a_consistent_database() {
        for class in [
            SchemaClass::Acyclic,
            SchemaClass::LinearlyCyclic,
            SchemaClass::Cyclic,
        ] {
            let g = GeneratorParams {
                schema_class: class,
                ..GeneratorParams::default()
            }
            .generate();
            let schema = &g.system.schema.database;
            let db = replay_database(schema);
            assert!(db.check_foreign_keys(schema).is_ok(), "{class}");
            assert_eq!(db.total_rows(), ROWS as usize * schema.len());
        }
    }
}
