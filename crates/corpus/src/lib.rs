//! Ground-truth corpus and differential fuzzing for the HAS verifier.
//!
//! Every other test in this repository checks the verifier against
//! hand-built workloads or against itself. This crate closes the loop the
//! way VERIFAS did for the PODS'16 theory: it *generates* verification
//! instances whose expected outcome is known **by construction** — a
//! [`Certificate`] — and scores the verifier against thousands of them.
//!
//! * [`CorpusInstance`] — one generated instance: the system and property
//!   from a [`Plant`]ed [`has_workloads::generator`] construction, plus the
//!   certificate recording the expected verdict, violation kind (per
//!   witness mode), and originating task. DESIGN.md §5.10 gives the
//!   soundness argument for each plant.
//! * [`sample`] — deterministic seeded sampling of instances across the
//!   generator's parameter space (schema class, depth, width, arithmetic,
//!   artifact relations) with plants cycled round-robin.
//! * [`fuzz`] — the differential driver: runs every instance through the
//!   configuration matrix (threads × projection × witnesses), cross-checks
//!   verdict/kind/origin against the certificate, replays every
//!   reconstructed witness tree in the `has-sim` executor, and
//!   delta-minimizes any mismatching instance.
//! * [`witness_script`] / [`replay_database`] — the bridge from a symbolic
//!   [`has_core::WitnessNode`] tree to a concrete scripted run the simulator can
//!   execute and the monitor can judge.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod db;
mod fuzz;
mod minimize;
mod script;

pub use db::replay_database;
pub use fuzz::{fuzz, ConfigPoint, FuzzOptions, FuzzReport, KindScore, Mismatch, RunVerdict};
pub use minimize::minimize_params;
pub use script::{witness_script, ScriptError};

use has_core::ViolationKind;
use has_ltl::HltlFormula;
use has_model::{ArtifactSystem, SchemaClass, TaskId};
use has_workloads::generator::{GeneratorParams, Plant};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The expected outcome of verifying a corpus instance, recorded at
/// generation time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Certificate {
    /// The property holds on every database and every tree of runs; any
    /// violation verdict is a soundness bug. The clean plants are
    /// *tautology-shaped* (satisfied on every explored path), so exploration
    /// caps cannot flip them — a clean certificate is cap-immune.
    Clean,
    /// Exactly one violation was planted.
    Planted {
        /// The kind reported without witness reconstruction: the root run's
        /// own path kind (a returned-call plant surfaces as the root's
        /// lasso until reconstruction attributes it).
        root_kind: ViolationKind,
        /// The kind reported with witness reconstruction enabled.
        kind: ViolationKind,
        /// The task `Violation::origin()` must name with witnesses enabled
        /// (without a witness tree the origin defaults to the root).
        origin: TaskId,
        /// That task's name.
        origin_name: String,
    },
}

impl Certificate {
    /// The violation kind expected at the given witness setting, or `None`
    /// for clean instances.
    pub fn expected_kind(&self, witnesses: bool) -> Option<ViolationKind> {
        match self {
            Certificate::Clean => None,
            Certificate::Planted {
                root_kind, kind, ..
            } => Some(if witnesses { *kind } else { *root_kind }),
        }
    }
}

/// One corpus instance: a planted system with its certificate.
#[derive(Clone, Debug)]
pub struct CorpusInstance {
    /// Human-readable label (generator parameters plus plant slug).
    pub label: String,
    /// The generator parameters the instance was built from.
    pub params: GeneratorParams,
    /// The plant it carries.
    pub plant: Plant,
    /// The artifact system.
    pub system: ArtifactSystem,
    /// The property to verify.
    pub property: HltlFormula,
    /// The expected outcome.
    pub certificate: Certificate,
}

/// Builds the instance for one parameter point and plant, deriving the
/// certificate from the plant's construction.
pub fn instance(params: &GeneratorParams, plant: Plant) -> CorpusInstance {
    let planted = params.generate_planted(plant);
    let certificate = match plant {
        Plant::CleanTautology | Plant::CleanDichotomy | Plant::CleanNested => Certificate::Clean,
        Plant::Lasso => Certificate::Planted {
            root_kind: ViolationKind::Lasso,
            kind: ViolationKind::Lasso,
            origin: planted.origin,
            origin_name: planted.origin_name.clone(),
        },
        Plant::Blocking => Certificate::Planted {
            root_kind: ViolationKind::Blocking,
            kind: ViolationKind::Blocking,
            origin: planted.origin,
            origin_name: planted.origin_name.clone(),
        },
        // The root's own violating run is an idle lasso; only witness
        // reconstruction attributes the violation to the returned call.
        Plant::Returning => Certificate::Planted {
            root_kind: ViolationKind::Lasso,
            kind: ViolationKind::Returning,
            origin: planted.origin,
            origin_name: planted.origin_name.clone(),
        },
    };
    CorpusInstance {
        label: planted.label,
        params: params.clone(),
        plant,
        system: planted.system,
        property: planted.property,
        certificate,
    }
}

/// Seeded sampling parameters for [`sample`].
#[derive(Clone, Debug)]
pub struct CorpusParams {
    /// RNG seed; the same seed always yields the same instance sequence.
    pub seed: u64,
    /// Number of instances to generate.
    pub count: usize,
}

/// The plant rotation used by [`sample`]: clean and violating plants
/// alternate so every batch scores both false-positive and false-negative
/// behaviour, and all three violation kinds appear with equal frequency.
pub const PLANT_ROTATION: [Plant; 6] = [
    Plant::CleanTautology,
    Plant::Lasso,
    Plant::CleanDichotomy,
    Plant::Blocking,
    Plant::CleanNested,
    Plant::Returning,
];

/// Samples one parameter point. Sizes are kept small (depth ≤ 3, width ≤ 2)
/// so the default exploration caps are generous relative to the instance and
/// bounded verdicts stay rare — the corpus measures soundness, not capacity.
fn sample_params(rng: &mut StdRng) -> GeneratorParams {
    let schema_class = match rng.random_range(0..3u32) {
        0 => SchemaClass::Acyclic,
        1 => SchemaClass::LinearlyCyclic,
        _ => SchemaClass::Cyclic,
    };
    GeneratorParams {
        schema_class,
        depth: rng.random_range(1..=3),
        width: rng.random_range(1..=2),
        numeric_vars: rng.random_range(1..=2),
        artifact_relations: rng.random_bool(0.25),
        arithmetic: rng.random_bool(0.2),
    }
}

/// Generates a deterministic instance sequence: parameter points are drawn
/// from the seeded RNG, plants cycle through [`PLANT_ROTATION`].
pub fn sample(params: &CorpusParams) -> Vec<CorpusInstance> {
    let mut rng = StdRng::seed_from_u64(params.seed);
    (0..params.count)
        .map(|i| {
            let point = sample_params(&mut rng);
            let plant = PLANT_ROTATION[i % PLANT_ROTATION.len()];
            let mut inst = instance(&point, plant);
            inst.label = format!("#{i:04}/{}", inst.label);
            inst
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let params = CorpusParams {
            seed: 42,
            count: 12,
        };
        let a = sample(&params);
        let b = sample(&params);
        let labels = |v: &[CorpusInstance]| -> Vec<String> {
            v.iter().map(|i| i.label.clone()).collect()
        };
        assert_eq!(labels(&a), labels(&b));
        let c = sample(&CorpusParams {
            seed: 43,
            count: 12,
        });
        assert_ne!(labels(&a), labels(&c), "different seeds explore different points");
    }

    #[test]
    fn rotation_covers_every_plant_and_half_the_batch_is_clean() {
        let batch = sample(&CorpusParams {
            seed: 7,
            count: 12,
        });
        let clean = batch.iter().filter(|i| i.certificate == Certificate::Clean).count();
        assert_eq!(clean, 6);
        for plant in PLANT_ROTATION {
            assert!(batch.iter().any(|i| i.plant == plant), "{plant} missing");
        }
    }

    #[test]
    fn certificates_match_the_plants() {
        let params = GeneratorParams::default();
        assert_eq!(
            instance(&params, Plant::CleanNested).certificate,
            Certificate::Clean
        );
        let ret = instance(&params, Plant::Returning);
        let Certificate::Planted {
            root_kind,
            kind,
            origin_name,
            ..
        } = ret.certificate
        else {
            panic!("returning plant must certify a violation");
        };
        assert_eq!(root_kind, ViolationKind::Lasso);
        assert_eq!(kind, ViolationKind::Returning);
        assert_eq!(origin_name, "Probe");
    }
}
