//! Bitset compilation of a task's Büchi automaton over the canonical
//! proposition order.
//!
//! A `(T, β)` exploration steps its Büchi automaton once per enumerated
//! letter per transition of `V(T, β)` — the innermost loop of
//! [`crate::task_verifier::TaskVerifier::build_graph`]. The generic
//! [`Buchi`] matches each transition label by probing `BTreeSet`s of
//! propositions; compiled, a letter is a word-packed truth assignment over
//! the verifier's sorted proposition list and a label is a `(pos, neg)`
//! mask pair, so a match is two AND-compare sweeps over a handful of
//! `u64`s.
//!
//! Determinism: successor order is the construction order of the source
//! automaton — transitions keep their per-state `Vec` order and initial
//! states their ascending order ([`Buchi::transitions_from`],
//! [`Buchi::initial`]), exactly the orders the generic `step` /
//! `initial_successors` filter. Labels whose positive propositions fall
//! outside the proposition list are dropped at compile time: the letter
//! enumeration never sets such a bit, so the generic automaton could never
//! take them either.

use has_ltl::buchi::{Buchi, BuchiState, Label};
use has_ltl::hltl::TaskProp;
use has_vass::BitSet;

/// One compiled transition label: `words` `u64`s of required-true bits in
/// `pos`, required-false bits in `neg`, stored flat in the parent arrays.
/// A letter `l` matches iff `l & pos == pos` and `l & neg == 0`.
fn matches(letter: &[u64], pos: &[u64], neg: &[u64]) -> bool {
    pos.iter().zip(letter).all(|(p, l)| p & l == *p)
        && neg.iter().zip(letter).all(|(n, l)| n & l == 0)
}

/// A [`Buchi`] automaton over [`TaskProp`] compiled to bitset masks over a
/// fixed, sorted proposition list (the verifier's `props`).
pub struct CompiledBuchi {
    /// Number of `u64` words per mask/letter.
    words: usize,
    /// CSR offsets into the edge arrays, one entry per state plus a
    /// terminator.
    offsets: Vec<u32>,
    /// Positive masks, `words` u64s per edge.
    pos: Vec<u64>,
    /// Negative masks, `words` u64s per edge.
    neg: Vec<u64>,
    /// Edge targets, parallel to the mask arrays.
    targets: Vec<u32>,
    /// Initial states in ascending order, with their compiled entry labels
    /// stored flat like the edge masks.
    init_states: Vec<u32>,
    init_pos: Vec<u64>,
    init_neg: Vec<u64>,
    /// Büchi (infinite-word) accepting states.
    accepting: BitSet,
    /// Finite-word accepting states (`Q_fin`).
    finite_accepting: BitSet,
}

impl CompiledBuchi {
    /// Compiles `buchi` over the sorted, deduplicated proposition list
    /// `props` (bit `i` of a letter is the truth value of `props[i]`).
    pub fn new(buchi: &Buchi<TaskProp>, props: &[TaskProp]) -> Self {
        let words = props.len().div_ceil(64);
        let compile = |label: &Label<TaskProp>| -> Option<(Vec<u64>, Vec<u64>)> {
            let mut pos = vec![0u64; words];
            let mut neg = vec![0u64; words];
            for p in &label.pos {
                // A positive literal over a proposition the letters never
                // set can never be satisfied: drop the transition.
                let bit = props.binary_search(p).ok()?;
                pos[bit / 64] |= 1u64 << (bit % 64);
            }
            for p in &label.neg {
                // A negative literal over an absent proposition is always
                // satisfied (letters default absent propositions to false).
                if let Ok(bit) = props.binary_search(p) {
                    neg[bit / 64] |= 1u64 << (bit % 64);
                }
            }
            Some((pos, neg))
        };

        let state_count = buchi.state_count();
        let mut offsets = vec![0u32; state_count + 1];
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        let mut targets = Vec::new();
        for s in 0..state_count {
            for (label, to) in buchi.transitions_from(BuchiState(s)) {
                if let Some((p, n)) = compile(label) {
                    pos.extend_from_slice(&p);
                    neg.extend_from_slice(&n);
                    targets.push(to.0 as u32);
                }
            }
            offsets[s + 1] = targets.len() as u32;
        }

        let mut init_states = Vec::new();
        let mut init_pos = Vec::new();
        let mut init_neg = Vec::new();
        for s in buchi.initial() {
            if let Some((p, n)) = compile(buchi.entry_label(s)) {
                init_states.push(s.0 as u32);
                init_pos.extend_from_slice(&p);
                init_neg.extend_from_slice(&n);
            }
        }

        let mut accepting = BitSet::new(state_count);
        for s in buchi.accepting() {
            accepting.insert(s.0);
        }
        let mut finite_accepting = BitSet::new(state_count);
        for s in buchi.finite_accepting() {
            finite_accepting.insert(s.0);
        }

        CompiledBuchi {
            words,
            offsets,
            pos,
            neg,
            targets,
            init_states,
            init_pos,
            init_neg,
            accepting,
            finite_accepting,
        }
    }

    /// Number of `u64` words per letter; letters passed to
    /// [`CompiledBuchi::step`] / [`CompiledBuchi::initial_successors`] must
    /// have exactly this length.
    pub fn words(&self) -> usize {
        self.words
    }

    /// States reachable by reading the *first* letter of a word, in
    /// ascending state order (the order of [`Buchi::initial_successors`]).
    pub fn initial_successors(&self, letter: &[u64]) -> Vec<BuchiState> {
        let w = self.words;
        self.init_states
            .iter()
            .enumerate()
            .filter(|&(i, _)| {
                matches(
                    letter,
                    &self.init_pos[i * w..(i + 1) * w],
                    &self.init_neg[i * w..(i + 1) * w],
                )
            })
            .map(|(_, &s)| BuchiState(s as usize))
            .collect()
    }

    /// Successor states of `state` when reading a letter, in the source
    /// automaton's transition order (the order of [`Buchi::step`]).
    pub fn step(&self, state: BuchiState, letter: &[u64]) -> Vec<BuchiState> {
        let w = self.words;
        let lo = self.offsets[state.0] as usize;
        let hi = self.offsets[state.0 + 1] as usize;
        (lo..hi)
            .filter(|&e| matches(letter, &self.pos[e * w..(e + 1) * w], &self.neg[e * w..(e + 1) * w]))
            .map(|e| BuchiState(self.targets[e] as usize))
            .collect()
    }

    /// Whether `state` is Büchi (infinite-word) accepting.
    pub fn is_accepting(&self, state: BuchiState) -> bool {
        self.accepting.contains(state.0)
    }

    /// Whether `state` is finite-word accepting (in `Q_fin`).
    pub fn is_finite_accepting(&self, state: BuchiState) -> bool {
        self.finite_accepting.contains(state.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use has_ltl::Ltl;
    use has_model::ServiceRef;
    use has_model::TaskId;

    fn prop(name: usize) -> TaskProp {
        // Distinct Service propositions are cheap to fabricate and ordered.
        TaskProp::Service(ServiceRef::Internal(TaskId(0), name))
    }

    /// Packs a truth assignment over `props` into letter words.
    fn letter(props: &[TaskProp], truth: &[bool]) -> Vec<u64> {
        let mut l = vec![0u64; props.len().div_ceil(64)];
        for (i, &b) in truth.iter().enumerate() {
            if b {
                l[i / 64] |= 1 << (i % 64);
            }
        }
        l
    }

    #[test]
    fn compiled_stepping_matches_generic_stepping() {
        let a = prop(0);
        let b = prop(1);
        let f: Ltl<TaskProp> = Ltl::prop(a.clone()).until(Ltl::prop(b.clone()));
        let buchi = Buchi::from_ltl(&f);
        let props = vec![a.clone(), b.clone()];
        let compiled = CompiledBuchi::new(&buchi, &props);

        for mask in 0..4usize {
            let truth = [mask & 1 != 0, mask & 2 != 0];
            let l = letter(&props, &truth);
            let assignment = |p: &TaskProp| {
                props.iter().position(|q| q == p).map(|i| truth[i]).unwrap_or(false)
            };
            assert_eq!(
                compiled.initial_successors(&l),
                buchi.initial_successors(assignment),
                "initial successors under {truth:?}"
            );
            for s in 0..buchi.state_count() {
                assert_eq!(
                    compiled.step(BuchiState(s), &l),
                    buchi.step(BuchiState(s), assignment),
                    "successors of state {s} under {truth:?}"
                );
            }
        }
        for s in 0..buchi.state_count() {
            let q = BuchiState(s);
            assert_eq!(compiled.is_accepting(q), buchi.accepting().contains(&q));
            assert_eq!(
                compiled.is_finite_accepting(q),
                buchi.finite_accepting().contains(&q)
            );
        }
    }
}
