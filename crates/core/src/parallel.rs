//! Scoped-thread fan-out used by the parallel verification engine.
//!
//! The pool is deliberately minimal: a batch of `n` independent jobs is
//! distributed over at most `threads` scoped workers pulling indices from a
//! shared atomic counter, and every job's result is written into its own
//! pre-allocated slot. Results are therefore returned **in job order**, no
//! matter which worker computed them or when it finished — the property the
//! determinism contract of DESIGN.md §5.6 builds on. `std::thread::scope`
//! keeps the jobs free to borrow from the caller's stack (the engine shares
//! the schema-wide tables by reference, see [`crate::verifier`]) and
//! propagates worker panics to the caller, matching the sequential panic
//! behaviour.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `n` independent jobs `f(0), …, f(n - 1)` on up to `threads` scoped
/// worker threads and returns their results in job order.
///
/// With `threads <= 1` (or fewer than two jobs) everything runs inline on the
/// calling thread, in index order, spawning nothing — this is the engine's
/// "exact sequential" code path.
pub(crate) fn run_indexed<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(n) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_job_order() {
        let out = run_indexed(4, 100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runs_inline() {
        let out = run_indexed(1, 5, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let out = run_indexed(16, 3, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn zero_jobs_yield_empty() {
        let out: Vec<usize> = run_indexed(4, 0, |i| i);
        assert!(out.is_empty());
    }
}
