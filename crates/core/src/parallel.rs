//! Work-stealing scoped-thread pool used by the parallel verification engine.
//!
//! PR 3's engine fanned out *fixed* batches of jobs between level barriers; a
//! deep, narrow hierarchy exposed almost no job supply per level, so workers
//! idled while one slow `(T, β)` pinned its whole level. The pool here runs a
//! **dynamic** job set instead: handlers may push follow-on jobs while they
//! run (the verifier's readiness scheduler pushes `InitQuery` jobs the moment
//! a graph is built, and `BuildGraph` jobs the moment a task's last child
//! commits — see [`crate::verifier`] and DESIGN.md §5.6).
//!
//! Shape: one global injector queue for seed and cross-task jobs plus one
//! deque per worker. A worker pops its own deque newest-first (so the queries
//! of the graph it just built run while that graph is hot), then the injector
//! oldest-first, then steals oldest-first from siblings. Everything is
//! `std::sync::Mutex` + `Condvar` over `VecDeque` — no new dependencies, and
//! `std::thread::scope` keeps jobs free to borrow from the caller's stack and
//! propagates worker panics to the caller (a panicking handler aborts the
//! pool rather than deadlocking the remaining workers).
//!
//! Determinism note: the pool itself promises nothing about execution order.
//! The engine's determinism contract is restored above it by buffering every
//! result into a slot keyed by its canonical `(task, β, τ_in)` position and
//! reducing in that order (DESIGN.md §5.6). This covers witness retention
//! for free: the retained run details of DESIGN.md §5.7 travel *inside* the
//! buffered `RtEntry` values, so the reconstructed counterexample inherits
//! the same thread-count independence without any pool-level support.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Handle a job handler uses to push follow-on jobs into the pool.
///
/// Jobs pushed through a worker's handle land on that worker's own deque
/// (popped newest-first by the owner, stolen oldest-first by siblings).
pub(crate) struct WorkerHandle<'p, J> {
    pool: &'p PoolShared<J>,
    worker: usize,
}

impl<J: Send> WorkerHandle<'_, J> {
    /// Enqueues a follow-on job.
    pub(crate) fn push(&self, job: J) {
        self.pool.push(Some(self.worker), job);
    }
}

struct PoolShared<J> {
    /// `deques[0]` is the global injector; `deques[1 + w]` belongs to worker
    /// `w`. Each has its own lock so pushes and steals on different queues
    /// never contend.
    deques: Vec<Mutex<VecDeque<J>>>,
    /// Jobs pushed but not yet completed. A handler pushes its follow-on
    /// jobs *before* its own completion is counted, so `pending == 0` really
    /// means the job graph is drained.
    pending: AtomicUsize,
    /// Set when a handler panicked; workers drain out instead of parking so
    /// `std::thread::scope` can propagate the panic.
    aborted: AtomicBool,
    /// Guards nothing but the sleep/wake protocol: a worker re-checks the
    /// queues while holding this lock before parking, and every push notifies
    /// under it, so a job pushed concurrently with a park attempt is never
    /// lost.
    sleep: Mutex<()>,
    wake: Condvar,
}

impl<J: Send> PoolShared<J> {
    fn new(workers: usize) -> Self {
        PoolShared {
            deques: (0..=workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            aborted: AtomicBool::new(false),
            sleep: Mutex::new(()),
            wake: Condvar::new(),
        }
    }

    fn push(&self, worker: Option<usize>, job: J) {
        self.pending.fetch_add(1, Ordering::SeqCst);
        let deque = match worker {
            Some(w) => &self.deques[w + 1],
            None => &self.deques[0],
        };
        deque.lock().expect("pool queue poisoned").push_back(job);
        let _guard = self.sleep.lock().expect("pool sleep lock poisoned");
        self.wake.notify_one();
    }

    /// Own deque newest-first, injector oldest-first, then steal oldest-first
    /// from siblings (starting after `worker` so thieves spread out).
    fn try_pop(&self, worker: usize) -> Option<J> {
        if let Some(job) = self.deques[worker + 1]
            .lock()
            .expect("pool queue poisoned")
            .pop_back()
        {
            return Some(job);
        }
        if let Some(job) = self.deques[0]
            .lock()
            .expect("pool queue poisoned")
            .pop_front()
        {
            return Some(job);
        }
        let workers = self.deques.len() - 1;
        for offset in 1..workers {
            let victim = 1 + (worker + offset) % workers;
            if let Some(job) = self.deques[victim]
                .lock()
                .expect("pool queue poisoned")
                .pop_front()
            {
                return Some(job);
            }
        }
        None
    }

    /// Blocks until a job is available, the pool is drained (`None`), or the
    /// pool aborted after a panic (`None`).
    fn next_job(&self, worker: usize) -> Option<J> {
        if self.aborted.load(Ordering::SeqCst) {
            return None;
        }
        if let Some(job) = self.try_pop(worker) {
            return Some(job);
        }
        let mut guard = self.sleep.lock().expect("pool sleep lock poisoned");
        loop {
            if self.aborted.load(Ordering::SeqCst) || self.pending.load(Ordering::SeqCst) == 0 {
                // Wake any sibling still parked so it observes the same
                // terminal state and exits too.
                self.wake.notify_all();
                return None;
            }
            // Re-check under the sleep lock: a push between the lock-free
            // scan above and this park would otherwise be missed (its
            // notification fires only after we start waiting).
            if let Some(job) = self.try_pop(worker) {
                return Some(job);
            }
            guard = self.wake.wait(guard).expect("pool sleep lock poisoned");
        }
    }

    fn complete_one(&self) {
        if self.pending.fetch_sub(1, Ordering::SeqCst) == 1 {
            let _guard = self.sleep.lock().expect("pool sleep lock poisoned");
            self.wake.notify_all();
        }
    }

    fn abort(&self) {
        self.aborted.store(true, Ordering::SeqCst);
        let _guard = self.sleep.lock().expect("pool sleep lock poisoned");
        self.wake.notify_all();
    }
}

/// Runs a dynamic job set on up to `threads` scoped workers: `seed` jobs go
/// to the global injector, and `handler` may push follow-on jobs through its
/// [`WorkerHandle`] at any time. Returns when every pushed job has completed.
///
/// With `threads <= 1` everything runs inline on the calling thread (no
/// thread is spawned): the calling thread drains its own deque newest-first
/// and the injector oldest-first, exactly like a lone worker would.
///
/// # Panics
/// A panic in `handler` aborts the pool (remaining queued jobs are dropped,
/// parked workers drain out) and is then propagated to the caller by
/// `std::thread::scope`, matching the sequential panic behaviour.
pub(crate) fn run_pool<J, F>(threads: usize, seed: impl IntoIterator<Item = J>, handler: F)
where
    J: Send,
    F: Fn(J, &WorkerHandle<'_, J>) + Sync,
{
    let workers = threads.max(1);
    let shared: PoolShared<J> = PoolShared::new(workers);
    for job in seed {
        shared.push(None, job);
    }
    if workers == 1 {
        let handle = WorkerHandle {
            pool: &shared,
            worker: 0,
        };
        while let Some(job) = shared.try_pop(0) {
            handler(job, &handle);
            shared.pending.fetch_sub(1, Ordering::SeqCst);
        }
        return;
    }
    std::thread::scope(|scope| {
        for worker in 0..workers {
            let shared = &shared;
            let handler = &handler;
            scope.spawn(move || {
                let handle = WorkerHandle {
                    pool: shared,
                    worker,
                };
                while let Some(job) = shared.next_job(worker) {
                    match catch_unwind(AssertUnwindSafe(|| handler(job, &handle))) {
                        Ok(()) => shared.complete_one(),
                        Err(payload) => {
                            shared.abort();
                            resume_unwind(payload);
                        }
                    }
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    /// The fixed-batch pattern the verifier used to need: results land in
    /// slots keyed by job index, so the output is in job order no matter
    /// which worker ran what.
    fn run_indexed<T: Send, F: Fn(usize) -> T + Sync>(threads: usize, n: usize, f: F) -> Vec<T> {
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        run_pool(threads, 0..n, |i, _| {
            *slots[i].lock().unwrap() = Some(f(i));
        });
        slots
            .into_iter()
            .map(|slot| slot.into_inner().unwrap().expect("every job ran"))
            .collect()
    }

    #[test]
    fn indexed_results_come_back_in_job_order() {
        let out = run_indexed(4, 100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runs_inline() {
        let out = run_indexed(1, 5, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let out = run_indexed(16, 3, |i| i);
        assert_eq!(out, vec![0, 1, 2]);
    }

    #[test]
    fn zero_jobs_yield_empty() {
        let out: Vec<usize> = run_indexed(4, 0, |i| i);
        assert!(out.is_empty());
        // And the pool itself returns immediately with nothing seeded.
        run_pool::<usize, _>(4, std::iter::empty(), |_, _| unreachable!());
    }

    /// Handlers can keep spawning follow-on jobs; the pool only returns once
    /// the whole dynamically-grown job graph has drained.
    #[test]
    fn dynamically_spawned_jobs_all_run() {
        for threads in [1usize, 2, 8] {
            let count = AtomicUsize::new(0);
            // runs(j) = 1 + Σ_{k<j} runs(k) = 2^j, so seeds 0..5 give
            // 1 + 2 + 4 + 8 + 16 = 31 handler invocations in total.
            run_pool(threads, 0..5usize, |j, handle| {
                count.fetch_add(1, Ordering::SeqCst);
                for k in 0..j {
                    handle.push(k);
                }
            });
            assert_eq!(count.load(Ordering::SeqCst), 31, "threads={threads}");
        }
    }

    /// A chain where each job enables the next via shared state: exercises
    /// park/wake (workers must sleep while the chain is elsewhere) without
    /// deadlocking.
    #[test]
    fn sequential_chain_through_the_pool_terminates() {
        let hops = AtomicUsize::new(0);
        run_pool(8, [0usize], |j, handle| {
            hops.fetch_add(1, Ordering::SeqCst);
            if j < 200 {
                handle.push(j + 1);
            }
        });
        assert_eq!(hops.load(Ordering::SeqCst), 201);
    }

    // `std::thread::scope` re-panics with its own message after joining, so
    // only the fact of the panic (not the payload) is asserted here.
    #[test]
    #[should_panic(expected = "panicked")]
    fn handler_panic_propagates_instead_of_deadlocking() {
        run_pool(4, 0..32usize, |j, _| {
            if j == 7 {
                panic!("job 7 panicked");
            }
        });
    }
}
