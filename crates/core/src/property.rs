//! Property preparation: flattening, per-task contexts, Büchi automata.

use has_ltl::hltl::{FlattenedProperty, TaskProp};
use has_ltl::{Buchi, HltlFormula, Ltl};
use has_model::{ArtifactSystem, Atom, AttrKind, Condition, RelationId, Term, TaskId, VarId, VarSort};
use has_symbolic::TaskContext;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Everything derived from the property before state exploration starts:
/// the flattened per-task formula lists `Φ_T`, the per-task symbolic
/// contexts (whose expression universes include the property's conditions),
/// and a cache of Büchi automata per `(task, β)`.
///
/// The contexts and the cached automata are the schema-wide tables every
/// `(T, β)` exploration reads; both are reference-counted so the parallel
/// engine can hand the same instances to all workers instead of deep-cloning
/// them per assignment (DESIGN.md §2 lists which state is shared vs.
/// per-worker).
pub struct PropertyContext {
    /// The flattened property.
    pub flat: FlattenedProperty,
    /// Symbolic context per task (for *all* tasks of the system, not only
    /// those mentioned by the property), behind a shared handle: the
    /// verifier's workers all read the same map.
    pub contexts: Arc<BTreeMap<TaskId, TaskContext>>,
    buchi_cache: BTreeMap<(TaskId, Vec<bool>), Arc<Buchi<TaskProp>>>,
}

impl PropertyContext {
    /// Prepares the property against a system.
    ///
    /// `nav_depth` is forwarded to the per-task symbolic contexts.
    pub fn new(system: &ArtifactSystem, property: &HltlFormula, nav_depth: usize) -> Self {
        let flat = property.flatten();
        let extra_conditions: BTreeMap<TaskId, Vec<Condition>> = system
            .schema
            .tasks()
            .map(|(task, _)| {
                let extra: Vec<Condition> = flat
                    .phi(task)
                    .iter()
                    .flat_map(|f| f.propositions())
                    .filter_map(|p| match p {
                        TaskProp::Condition(c) => Some(c.clone()),
                        _ => None,
                    })
                    .collect();
                (task, extra)
            })
            .collect();
        let bindings = Self::global_bindings(system, &extra_conditions);
        let mut contexts = BTreeMap::new();
        for (task, _) in system.schema.tasks() {
            contexts.insert(
                task,
                TaskContext::build_with_bindings(
                    system,
                    task,
                    &extra_conditions[&task],
                    nav_depth,
                    &bindings,
                ),
            );
        }
        PropertyContext {
            flat,
            contexts: Arc::new(contexts),
            buchi_cache: BTreeMap::new(),
        }
    }

    /// Computes candidate relation bindings for every ID variable of the
    /// system, propagated along input/output mappings to a fixpoint: if a
    /// parent variable is passed to (or written by) a child variable that
    /// some condition navigates, the parent variable must be navigable too,
    /// otherwise facts established inside the child would be lost when they
    /// flow through the parent to a sibling task (see DESIGN.md §5.4).
    fn global_bindings(
        system: &ArtifactSystem,
        extra_conditions: &BTreeMap<TaskId, Vec<Condition>>,
    ) -> BTreeMap<VarId, Vec<RelationId>> {
        let schema = &system.schema;
        let mut bindings: BTreeMap<VarId, Vec<RelationId>> = BTreeMap::new();
        let add = |bindings: &mut BTreeMap<VarId, Vec<RelationId>>, v: VarId, r: RelationId| {
            let entry = bindings.entry(v).or_default();
            if !entry.contains(&r) {
                entry.push(r);
            }
        };
        // Seed from every condition in the system and the property.
        let mut all_conditions: Vec<&Condition> = vec![&system.precondition];
        for (task, t) in schema.tasks() {
            for s in &t.internal_services {
                all_conditions.push(&s.pre);
                all_conditions.push(&s.post);
            }
            all_conditions.push(&t.opening.pre);
            all_conditions.push(&t.closing.pre);
            all_conditions.extend(extra_conditions[&task].iter());
        }
        for cond in all_conditions {
            for atom in cond.atoms() {
                if let Atom::Relation { relation, args } = atom {
                    if let Some(Term::Var(x)) = args.first() {
                        if schema.variable(*x).sort == VarSort::Id {
                            add(&mut bindings, *x, relation);
                        }
                    }
                    let attrs = &schema.database.relation(relation).attributes;
                    for (i, term) in args.iter().enumerate().skip(1) {
                        if let (Some(AttrKind::ForeignKey(target)), Term::Var(z)) =
                            (attrs.get(i).map(|a| a.kind), term)
                        {
                            if schema.variable(*z).sort == VarSort::Id {
                                add(&mut bindings, *z, target);
                            }
                        }
                    }
                }
            }
        }
        // Propagate along input/output mappings until fixpoint.
        loop {
            let mut changed = false;
            for (_, t) in schema.tasks() {
                let links = t
                    .opening
                    .input_map
                    .iter()
                    .map(|(c, p)| (*c, *p))
                    .chain(t.closing.output_map.iter().map(|(p, c)| (*c, *p)));
                for (a, b) in links {
                    if schema.variable(a).sort != VarSort::Id {
                        continue;
                    }
                    for (x, y) in [(a, b), (b, a)] {
                        let from: Vec<RelationId> =
                            bindings.get(&x).cloned().unwrap_or_default();
                        for r in from {
                            let entry = bindings.entry(y).or_default();
                            if !entry.contains(&r) {
                                entry.push(r);
                                changed = true;
                            }
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        bindings
    }

    /// The formulas `Φ_T` attached to a task.
    pub fn phi(&self, task: TaskId) -> &[Ltl<TaskProp>] {
        self.flat.phi(task)
    }

    /// All truth assignments over `Φ_T` (a single empty assignment when the
    /// task has no attached formulas).
    pub fn assignments(&self, task: TaskId) -> Vec<Vec<bool>> {
        let n = self.phi(task).len();
        let mut out = Vec::with_capacity(1 << n);
        for mask in 0..(1usize << n) {
            out.push((0..n).map(|i| mask & (1 << i) != 0).collect());
        }
        out
    }

    /// The canonical `(task, β)` pair enumeration over a bottom-up task
    /// order: tasks in the given order, assignments in β-enumeration order.
    ///
    /// Both engines are stated over this order — the sequential engine
    /// simply iterates it, and the readiness scheduler indexes its job
    /// buffers by position in it and reduces front to back — which is what
    /// makes the determinism contract of DESIGN.md §5.6 a statement about
    /// one fixed list rather than about scheduling. Witness reconstruction
    /// (§5.7) leans on the same order twice over: retained run details are
    /// reduced with their entries, and the descent reads the committed
    /// summary layout this order fixes.
    pub fn pairs(&self, order: &[TaskId]) -> Vec<(TaskId, Vec<bool>)> {
        order
            .iter()
            .flat_map(|&t| self.assignments(t).into_iter().map(move |b| (t, b)))
            .collect()
    }

    /// The Büchi automaton `B(T, β)` for the conjunction
    /// `⋀_{β(i)} φ_i ∧ ⋀_{¬β(i)} ¬φ_i`, built on demand and cached.
    pub fn buchi(&mut self, task: TaskId, beta: &[bool]) -> &Buchi<TaskProp> {
        let key = (task, beta.to_vec());
        if !self.buchi_cache.contains_key(&key) {
            let automaton = self.build_buchi(task, beta);
            self.buchi_cache.insert(key.clone(), Arc::new(automaton));
        }
        &self.buchi_cache[&key]
    }

    /// A shared handle to the cached `B(T, β)`.
    ///
    /// The parallel engine calls [`PropertyContext::precompute_automata`]
    /// once and then distributes these handles to its workers, so every
    /// worker reads the *same* automaton the sequential engine would.
    ///
    /// # Panics
    /// Panics if the automaton has not been built yet (via
    /// [`PropertyContext::buchi`] or
    /// [`PropertyContext::precompute_automata`]).
    pub fn buchi_shared(&self, task: TaskId, beta: &[bool]) -> Arc<Buchi<TaskProp>> {
        self.buchi_cache
            .get(&(task, beta.to_vec()))
            .cloned()
            .expect("Büchi automaton not precomputed for this (task, β)")
    }

    /// Builds and caches `B(T, β)` for every task and every truth assignment
    /// over its `Φ_T`, in the same `(task, β)` order the sequential engine
    /// constructs them.
    ///
    /// This is exactly the set of automata one full verification run builds
    /// anyway; precomputing moves the only mutation of `self` ahead of the
    /// fan-out so workers can share `&PropertyContext` immutably.
    pub fn precompute_automata(&mut self) {
        let tasks: Vec<TaskId> = self.contexts.keys().copied().collect();
        for task in tasks {
            for beta in self.assignments(task) {
                let key = (task, beta.clone());
                if !self.buchi_cache.contains_key(&key) {
                    let automaton = self.build_buchi(task, &beta);
                    self.buchi_cache.insert(key, Arc::new(automaton));
                }
            }
        }
    }

    fn build_buchi(&self, task: TaskId, beta: &[bool]) -> Buchi<TaskProp> {
        let phi = self.flat.phi(task);
        let mut formula: Ltl<TaskProp> = Ltl::True;
        for (i, f) in phi.iter().enumerate() {
            let clause = if beta[i] { f.clone() } else { f.clone().not() };
            formula = formula.and(clause);
        }
        Buchi::from_ltl(&formula)
    }

    /// The symbolic context of a task.
    pub fn context(&self, task: TaskId) -> &TaskContext {
        &self.contexts[&task]
    }

    /// The index of the root formula within `Φ_{T1}` and the root task.
    pub fn root(&self) -> (TaskId, usize) {
        (self.flat.root_task, self.flat.root_index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use has_ltl::hltl::HltlBuilder;
    use has_model::{Condition, SystemBuilder};

    fn system_and_property() -> (ArtifactSystem, HltlFormula) {
        let mut b = SystemBuilder::new("t");
        let root = b.root_task("Root");
        let x = b.id_var(root, "x");
        b.input_vars(root, &[x]);
        let child = b.child_task(root, "Child");
        let cx = b.id_var(child, "cx");
        b.map_input(child, cx, x);
        let system = b.build().unwrap();
        let root_id = system.root();
        let child_id = system.schema.task_by_name("Child").unwrap();

        let mut cb = HltlBuilder::new(child_id);
        let c = cb.condition(Condition::not_null(cx));
        let child_formula = cb.finish(c.eventually());
        let mut rb = HltlBuilder::new(root_id);
        let sub = rb.child(child_id, child_formula);
        let property = rb.finish(sub.eventually());
        (system, property)
    }

    #[test]
    fn contexts_are_built_for_every_task() {
        let (system, property) = system_and_property();
        let pc = PropertyContext::new(&system, &property, 1);
        assert_eq!(pc.contexts.len(), 2);
        let (root, idx) = pc.root();
        assert_eq!(root, system.root());
        assert_eq!(idx, 0);
    }

    #[test]
    fn assignments_enumerate_all_truth_vectors() {
        let (system, property) = system_and_property();
        let pc = PropertyContext::new(&system, &property, 1);
        let child = system.schema.task_by_name("Child").unwrap();
        assert_eq!(pc.phi(child).len(), 1);
        assert_eq!(pc.assignments(child), vec![vec![false], vec![true]]);
        // Tasks without formulas get the single empty assignment.
        let unrelated_assignments = pc.assignments(system.root());
        assert_eq!(unrelated_assignments.len(), 2); // root has the top formula
    }

    #[test]
    fn buchi_cache_returns_consistent_automata() {
        let (system, property) = system_and_property();
        let mut pc = PropertyContext::new(&system, &property, 1);
        let child = system.schema.task_by_name("Child").unwrap();
        let states_true = pc.buchi(child, &[true]).state_count();
        let states_false = pc.buchi(child, &[false]).state_count();
        assert!(states_true > 0 && states_false > 0);
        // Cached: same automaton object size on second call.
        assert_eq!(pc.buchi(child, &[true]).state_count(), states_true);
    }

    #[test]
    fn precompute_covers_every_assignment_and_shares_automata() {
        let (system, property) = system_and_property();
        let mut pc = PropertyContext::new(&system, &property, 1);
        pc.precompute_automata();
        for (task, _) in system.schema.tasks() {
            for beta in pc.assignments(task) {
                let shared = pc.buchi_shared(task, &beta);
                // The on-demand accessor returns the very same automaton.
                assert_eq!(shared.state_count(), pc.buchi(task, &beta).state_count());
            }
        }
    }

    #[test]
    #[should_panic(expected = "not precomputed")]
    fn buchi_shared_panics_without_precompute() {
        let (system, property) = system_and_property();
        let pc = PropertyContext::new(&system, &property, 1);
        let child = system.schema.task_by_name("Child").unwrap();
        let _ = pc.buchi_shared(child, &[true]);
    }
}
