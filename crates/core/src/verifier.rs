//! The top-level verifier: bottom-up computation of `R_T` and the final
//! model-checking answer.

use crate::outcome::{Outcome, Stats, Violation, ViolationKind, WitnessNode, WitnessStep};
use crate::parallel::{run_pool, WorkerHandle};
use crate::property::PropertyContext;
use crate::task_verifier::{
    ExploredGraph, PairShared, QueryCost, RtEntry, SummaryMap, TaskSummary, TaskVerifier,
};
use has_analysis::{DeadServiceMap, DeadServices};
use has_arith::{HcdBuilder, LinExpr};
use has_ltl::buchi::Buchi;
use has_ltl::hltl::TaskProp;
use has_ltl::HltlFormula;
use has_model::{ArtifactSystem, TaskId, VarId};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Tuning knobs of the verifier.
///
/// The defaults are adequate for the systems in `has-workloads`; the caps
/// exist because several enumeration steps are worst-case exponential (that
/// is the content of Tables 1 and 2) and runaway instances should degrade
/// into an explicit truncation rather than an apparent hang. Any truncation
/// is an *under*-approximation of the violation search (`holds = true`
/// results are then "no violation found within the explored space").
#[derive(Clone, Debug)]
pub struct VerifierConfig {
    /// Foreign-key navigation depth of the symbolic expression universe.
    pub nav_depth: usize,
    /// Cap on the number of symbolic successor states per enumeration step.
    pub max_successors: usize,
    /// Cap on the number of control states explored per `(T, β)` pair.
    pub max_control_states: usize,
    /// Cap on the number of undecided related-expression pairs branched over
    /// when refining a successor state.
    pub max_merge_pairs: usize,
    /// Cap on the number of property propositions left undetermined by the
    /// abstraction that are branched over per letter.
    pub max_unknown_props: usize,
    /// Cap on the number of Karp–Miller coverability-graph nodes built per
    /// reachability query (truncation under-approximates the search).
    pub km_node_cap: usize,
    /// Whether to build the Hierarchical Cell Decomposition for arithmetic
    /// constraints (Section 5). The decomposition is reported in the
    /// statistics and used to refine arithmetic atoms where possible.
    pub use_cells: bool,
    /// Number of worker threads for the `(T, β)` fan-out. `1` runs the exact
    /// sequential code path (no threads are spawned); larger values run the
    /// readiness-driven scheduler: every `(T, β)` exploration becomes ready
    /// the moment the last of its task's children commits its summary — no
    /// level barrier — and per-initial-state Lemma 21 queries are pushed the
    /// moment their graph is built, all on a work-stealing scoped pool. The
    /// outcome and statistics are identical at every thread count
    /// (DESIGN.md §5.6); `0` is treated as `1`.
    ///
    /// Defaults to [`VerifierConfig::default_threads`].
    pub threads: usize,
    /// Whether to retain per-run witness data and reconstruct a hierarchical
    /// counterexample ([`crate::outcome::WitnessNode`]) when the property is
    /// violated. Off by default: retention records one step label per VASS
    /// transition and materializes pump cycles, so the no-witness hot path
    /// keeps its current allocations (DESIGN.md §5.7 states the cost model).
    ///
    /// Enabling witnesses never changes `holds` or the statistics; it
    /// refines the reported violation — `Violation::witness` is populated,
    /// and the kind becomes [`crate::ViolationKind::Returning`] when a
    /// returned sub-call carries the violation.
    pub witnesses: bool,
    /// Whether to apply the static-analysis reductions before and during the
    /// search: services with guards proven unsatisfiable (by the exact
    /// Fourier–Motzkin decision of `has_analysis`) are excluded from graph
    /// construction, and each Lemma 21 coverability query is projected onto
    /// its dimension cone of influence. Both reductions are exact — every
    /// verdict, entry list and witness is identical with and without them
    /// (DESIGN.md §5.9) — only `coverability_nodes` and the
    /// `counter_dims_*`/`dead_services_pruned` statistics change. On by
    /// default; defaults to [`VerifierConfig::default_projection`].
    pub projection: bool,
    /// Whether to run the query pre-solver before each Lemma 21 query
    /// (DESIGN.md §5.11): sound static refutation filters — control
    /// skeleton, state-equation Z-relaxation, counter-abstraction DFA,
    /// lasso circulation — decide sub-queries without building a
    /// Karp–Miller graph, and per-dimension boundedness certificates prune
    /// ω-acceleration work for the queries that survive. Every filter
    /// refutes only genuinely empty sub-queries and the capped build
    /// under-approximates the search, so verdicts, entry lists and
    /// witnesses are identical with and without the pre-solver
    /// (`tests/presolve_equivalence.rs` enforces it) — only
    /// `coverability_nodes` and the `presolve` statistics change. On by
    /// default; defaults to [`VerifierConfig::default_presolve`].
    pub presolve: bool,
    /// Whether the Lemma 21 queries of one `(T, β)` pair share an
    /// incremental Karp–Miller arena with antichain subsumption pruning
    /// (DESIGN.md §5.12) instead of each building a coverability graph from
    /// scratch. Sharing groups the pair's per-initial-state queries into
    /// one sequential chain (they extend the same arena in initial-state
    /// order — across pairs the engine still fans out), reuses interned
    /// nodes, stored successor lists and ω-accelerations across the chain,
    /// and prunes any marking covered by an already-visited one. Verdicts
    /// and witness *kinds* are those of the exact search on uncapped
    /// instances; under a node cap the pruned search reaches much deeper —
    /// this is what makes the Appendix A.2 violation findable
    /// (`tests/a2_violation.rs`). Outcome, witnesses and statistics remain
    /// byte-identical at every thread count. On by default; defaults to
    /// [`VerifierConfig::default_shared_km`].
    pub shared_km: bool,
}

impl Default for VerifierConfig {
    fn default() -> Self {
        VerifierConfig {
            nav_depth: 1,
            max_successors: 512,
            max_control_states: 20_000,
            max_merge_pairs: 6,
            max_unknown_props: 4,
            km_node_cap: 50_000,
            use_cells: false,
            threads: Self::default_threads(),
            witnesses: false,
            projection: Self::default_projection(),
            presolve: Self::default_presolve(),
            shared_km: Self::default_shared_km(),
        }
    }
}

impl VerifierConfig {
    /// The default worker count: the `HAS_THREADS` environment variable when
    /// it is set to a positive integer, otherwise the machine's available
    /// parallelism (`1` if that cannot be determined).
    pub fn default_threads() -> usize {
        if let Ok(value) = std::env::var("HAS_THREADS") {
            if let Ok(n) = value.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// The default projection switch: *on*, unless the `HAS_PROJECTION`
    /// environment variable is set to `0`, `off` or `false` (the opt-out
    /// exists for A/B benchmarking — see EXPERIMENTS.md).
    pub fn default_projection() -> bool {
        match std::env::var("HAS_PROJECTION") {
            Ok(value) => !matches!(
                value.trim().to_ascii_lowercase().as_str(),
                "0" | "off" | "false"
            ),
            Err(_) => true,
        }
    }

    /// The default pre-solver switch: *on*, unless the `HAS_PRESOLVE`
    /// environment variable is set to `0`, `off` or `false` (the opt-out
    /// exists for A/B benchmarking — see EXPERIMENTS.md).
    pub fn default_presolve() -> bool {
        match std::env::var("HAS_PRESOLVE") {
            Ok(value) => !matches!(
                value.trim().to_ascii_lowercase().as_str(),
                "0" | "off" | "false"
            ),
            Err(_) => true,
        }
    }

    /// The default shared-arena switch: *on*, unless the `HAS_SHARED_KM`
    /// environment variable is set to `0`, `off` or `false` (the opt-out
    /// exists for A/B benchmarking and the differential-fuzz sharing axis —
    /// see EXPERIMENTS.md).
    pub fn default_shared_km() -> bool {
        match std::env::var("HAS_SHARED_KM") {
            Ok(value) => !matches!(
                value.trim().to_ascii_lowercase().as_str(),
                "0" | "off" | "false"
            ),
            Err(_) => true,
        }
    }

    /// Returns this configuration with the given worker count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns this configuration with witness reconstruction switched on or
    /// off (see [`VerifierConfig::witnesses`]).
    #[must_use]
    pub fn with_witnesses(mut self, witnesses: bool) -> Self {
        self.witnesses = witnesses;
        self
    }

    /// Returns this configuration with the static-analysis reductions
    /// switched on or off (see [`VerifierConfig::projection`]).
    #[must_use]
    pub fn with_projection(mut self, projection: bool) -> Self {
        self.projection = projection;
        self
    }

    /// Returns this configuration with the query pre-solver switched on or
    /// off (see [`VerifierConfig::presolve`]).
    #[must_use]
    pub fn with_presolve(mut self, presolve: bool) -> Self {
        self.presolve = presolve;
        self
    }

    /// Returns this configuration with the shared incremental Karp–Miller
    /// arena switched on or off (see [`VerifierConfig::shared_km`]).
    #[must_use]
    pub fn with_shared_km(mut self, shared_km: bool) -> Self {
        self.shared_km = shared_km;
        self
    }
}

/// The HAS verifier.
pub struct Verifier<'a> {
    system: &'a ArtifactSystem,
    property: &'a HltlFormula,
    config: VerifierConfig,
}

impl<'a> Verifier<'a> {
    /// Creates a verifier for a system and property with default settings.
    pub fn new(system: &'a ArtifactSystem, property: &'a HltlFormula) -> Self {
        Verifier {
            system,
            property,
            config: VerifierConfig::default(),
        }
    }

    /// Creates a verifier with an explicit configuration.
    pub fn with_config(
        system: &'a ArtifactSystem,
        property: &'a HltlFormula,
        config: VerifierConfig,
    ) -> Self {
        Verifier {
            system,
            property,
            config,
        }
    }

    /// Decides `Γ ⊨ φ`.
    ///
    /// Returns an [`Outcome`] with the answer, a symbolic witness when the
    /// property can be violated, and exploration statistics.
    ///
    /// With `config.threads > 1` the task hierarchy runs on a
    /// readiness-driven work-stealing scheduler: each `(T, β)` exploration
    /// starts as soon as *its* task's children have committed their
    /// summaries (no level barrier), per-initial-state Lemma 21 queries
    /// start as soon as their graph is built, and all results are buffered
    /// and reduced in the fixed `(task, β, τ_in)` order — the outcome and
    /// statistics are identical to `threads = 1` (DESIGN.md §5.6 states the
    /// contract; `tests/parallel_determinism.rs` enforces it).
    ///
    /// # Panics
    /// Panics if the property fails validation against the system.
    pub fn verify(&self) -> Outcome {
        self.property
            .validate(self.system)
            .expect("property must be well-formed for the system");

        let mut stats = Stats::default();
        if self.config.use_cells {
            stats.hcd_cells = self.build_hcd_cell_count();
        }

        let mut pc = PropertyContext::new(self.system, self.property, self.config.nav_depth);
        // Every B(T, β) one verification run needs, built up front: after
        // this the property context is never mutated again, so workers can
        // share it immutably.
        pc.precompute_automata();

        // Dead-service pruning: guards proven unsatisfiable by the exact
        // analyzer are excluded from every graph construction. An invalid
        // system yields an error report with an empty dead map — no pruning,
        // and the exploration behaves exactly as before the analyzer existed.
        let dead: DeadServiceMap = if self.config.projection {
            has_analysis::analyze(self.system, Some(self.property)).dead
        } else {
            DeadServiceMap::new()
        };
        stats.dead_services_pruned = dead.values().map(DeadServices::count).sum();

        let order = self.bottom_up_order();
        let threads = self.config.threads.max(1);
        let (summaries, explored) = if threads == 1 {
            self.run_sequential(&pc, &order, &dead)
        } else {
            self.run_parallel(&pc, &order, threads, &dead)
        };
        stats = stats.merge(&explored);

        // Γ ⊨ φ iff there is no non-returning root run with β(ξ) = 0.
        let (root_task, root_index) = pc.root();
        let root_summary = &summaries[&root_task];
        let violating = root_summary
            .entries
            .iter()
            .find(|e| e.output.is_none() && !e.beta.get(root_index).copied().unwrap_or(false));

        match violating {
            None => Outcome {
                holds: true,
                violation: None,
                stats,
            },
            Some(entry) => {
                // The Lemma 21 path kind of the witnessing entry: an
                // infinite local run when one exists, otherwise the run
                // blocks on a never-returning child. (Every non-returning
                // entry carries at least one of the two witnesses.)
                debug_assert!(entry.witness.lasso || entry.witness.blocking);
                let root_kind = if entry.witness.lasso {
                    ViolationKind::Lasso
                } else {
                    ViolationKind::Blocking
                };
                // Witness reconstruction (when retained): descend from the
                // violating root entry through the summaries to build the
                // per-task witness tree, and refine the reported kind to
                // `Returning` when the carrier chain starts with a returned
                // sub-call — the sub-task's returned run, not the root's
                // own path, is what carries the violation.
                let witness = self
                    .config
                    .witnesses
                    .then(|| self.reconstruct(&summaries, root_task, entry));
                let kind = match witness.as_ref().and_then(WitnessNode::carrier) {
                    Some(carrier) if carrier.kind == ViolationKind::Returning => {
                        ViolationKind::Returning
                    }
                    _ => root_kind,
                };
                Outcome {
                    holds: false,
                    violation: Some(Violation {
                        task: root_task,
                        kind,
                        input_description: format!(
                            "input isomorphism type {}",
                            crate::outcome::render_input_key(&entry.input_key)
                        ),
                        witness,
                    }),
                    stats,
                }
            }
        }
    }

    /// Reconstructs the hierarchical witness tree rooted at `entry` — one
    /// [`WitnessNode`] per task run, descending through the committed
    /// summaries: every `OpenChild` step on the entry's retained run records
    /// the child `R_T` tuple the run chose, which identifies the child's own
    /// entry (and retained details) in `summaries`, recursively. Distinct
    /// child calls appear once each, in run order; the hierarchy is a tree,
    /// so the descent terminates at the leaves.
    ///
    /// Everything read here — the entry list layout, each entry's details —
    /// is produced by the canonical-order reduction of DESIGN.md §5.6, so
    /// the reconstructed tree is byte-identical at every thread count.
    fn reconstruct(
        &self,
        summaries: &SummaryMap,
        task: TaskId,
        entry: &RtEntry,
    ) -> WitnessNode {
        let schema = &self.system.schema;
        let kind = if entry.output.is_some() {
            ViolationKind::Returning
        } else if entry.witness.lasso {
            ViolationKind::Lasso
        } else {
            ViolationKind::Blocking
        };
        let (prefix, cycle, cycle_truncated) = match entry.details.as_deref() {
            Some(d) => (d.prefix.clone(), d.cycle.clone(), d.cycle_truncated),
            None => (Vec::new(), Vec::new(), false),
        };
        let mut children: Vec<WitnessNode> = Vec::new();
        let mut seen: Vec<&WitnessStep> = Vec::new();
        for step in prefix.iter().chain(cycle.iter()) {
            let WitnessStep::OpenChild {
                child,
                beta,
                input_key,
                output,
                ..
            } = step
            else {
                continue;
            };
            if seen.contains(&step) {
                continue;
            }
            seen.push(step);
            let child_entry = summaries.get(child).and_then(|summary| {
                summary.entries.iter().find(|e| {
                    e.input_key == *input_key && e.output == *output && e.beta == *beta
                })
            });
            let node = match child_entry {
                Some(e) => self.reconstruct(summaries, *child, e),
                // Defensive: the opening consumed this tuple from the
                // committed summary, so it must be there — degrade to a
                // detail-less node rather than panic in a reporting path.
                None => WitnessNode {
                    task: *child,
                    task_name: schema.task(*child).name.clone(),
                    kind: if output.is_some() {
                        ViolationKind::Returning
                    } else {
                        ViolationKind::Blocking
                    },
                    input_description: format!(
                        "input isomorphism type {}",
                        crate::outcome::render_input_key(input_key)
                    ),
                    beta: beta.clone(),
                    prefix: Vec::new(),
                    cycle: Vec::new(),
                    cycle_truncated: false,
                    children: Vec::new(),
                },
            };
            // Distinct calls can still reconstruct to structurally equal
            // runs (e.g. two openings that differ only in the promised
            // output pattern); listing one of them keeps the tree readable.
            if !children.contains(&node) {
                children.push(node);
            }
        }
        WitnessNode {
            task,
            task_name: schema.task(task).name.clone(),
            kind,
            input_description: format!(
                "input isomorphism type {}",
                crate::outcome::render_input_key(&entry.input_key)
            ),
            beta: entry.beta.clone(),
            prefix,
            cycle,
            cycle_truncated,
            children,
        }
    }

    /// Bottom-up (children before parents) DFS postorder over the hierarchy.
    fn bottom_up_order(&self) -> Vec<TaskId> {
        let schema = &self.system.schema;
        let mut order: Vec<TaskId> = Vec::new();
        let mut stack = vec![(schema.root, false)];
        while let Some((t, expanded)) = stack.pop() {
            if expanded {
                order.push(t);
            } else {
                stack.push((t, true));
                for &c in &schema.task(t).children {
                    stack.push((c, false));
                }
            }
        }
        order
    }

    /// The exact sequential engine: one `(T, β)` exploration after another in
    /// bottom-up task order, each immediately followed by its Lemma 21
    /// queries. This is the `threads = 1` code path — no worker threads are
    /// spawned anywhere.
    fn run_sequential(
        &self,
        pc: &PropertyContext,
        order: &[TaskId],
        dead: &DeadServiceMap,
    ) -> (SummaryMap, Stats) {
        let contexts = &*pc.contexts;
        let mut stats = Stats::default();
        let mut summaries: Arc<SummaryMap> = Arc::new(SummaryMap::new());
        for &task in order {
            let mut summary = TaskSummary::default();
            for beta in pc.assignments(task) {
                let buchi = pc.buchi_shared(task, &beta);
                let tv = TaskVerifier::new(
                    self.system,
                    &self.config,
                    &contexts[&task],
                    task,
                    beta.clone(),
                    pc.phi(task),
                    &buchi,
                    Arc::clone(&summaries),
                    contexts,
                    dead,
                );
                let (entries, task_stats) = tv.explore();
                self.debug_pair(task, &beta, &entries, &task_stats);
                stats.absorb(&task_stats);
                summary.entries.extend(entries);
            }
            // Same commit the scheduler performs: shallow-clone the map (the
            // summaries themselves are shared), add the finished task, swap.
            let mut map = (*summaries).clone();
            map.insert(task, Arc::new(summary));
            summaries = Arc::new(map);
        }
        (
            Arc::try_unwrap(summaries).unwrap_or_else(|shared| (*shared).clone()),
            stats,
        )
    }

    /// The parallel engine: a readiness-driven scheduler over two kinds of
    /// work items — `BuildGraph(T, β)` (one [`TaskVerifier::build_graph`]
    /// forward exploration) and `InitQuery(T, β, τ_in)` (the Lemma 21
    /// queries of one initial state) — on a work-stealing scoped pool
    /// ([`crate::parallel::run_pool`]). There is **no barrier between
    /// hierarchy levels**:
    ///
    /// * every task tracks its unfinished-children count, and all of its
    ///   `(T, β)` build jobs are pushed the moment the *last* child commits
    ///   its summary — sibling subtrees proceed independently, so a deep,
    ///   narrow hierarchy keeps every worker busy;
    /// * the query jobs of a built graph are pushed immediately, while
    ///   sibling graphs are still building.
    ///
    /// Workers only *read* shared state: the committed summaries live behind
    /// an `Arc` that is shallow-cloned and swapped on each task commit, so a
    /// `BuildGraph` job snapshots the map without copying any summary.
    /// Results are buffered per `(T, β)` slot and per initial state, reduced
    /// in the canonical `(task, β, τ_in)` order, and committed to the
    /// summary map in β-enumeration order — which keeps the outcome
    /// independent of scheduling (DESIGN.md §5.6).
    fn run_parallel(
        &self,
        pc: &PropertyContext,
        order: &[TaskId],
        threads: usize,
        dead: &DeadServiceMap,
    ) -> (SummaryMap, Stats) {
        let schema = &self.system.schema;
        let contexts = &*pc.contexts;

        // Canonical pair enumeration: tasks in bottom-up order, assignments
        // in β-enumeration order. Every buffer below is indexed by position
        // in this list, and the final reduction walks it front to back.
        let pairs: Vec<(TaskId, Vec<bool>)> = pc.pairs(order);
        let buchis: Vec<Arc<Buchi<TaskProp>>> = pairs
            .iter()
            .map(|(t, b)| pc.buchi_shared(*t, b))
            .collect();
        let mut task_pairs: BTreeMap<TaskId, Vec<usize>> = BTreeMap::new();
        for (p, (t, _)) in pairs.iter().enumerate() {
            task_pairs.entry(*t).or_default().push(p);
        }

        // Readiness table: per task, how many children have not committed
        // yet (build jobs are released when this hits zero) and how many of
        // its own pairs are still unreduced (the summary commits when this
        // hits zero).
        let pending_children: BTreeMap<TaskId, AtomicUsize> = order
            .iter()
            .map(|&t| (t, AtomicUsize::new(schema.task(t).children.len())))
            .collect();
        let remaining_pairs: BTreeMap<TaskId, AtomicUsize> = task_pairs
            .iter()
            .map(|(&t, ps)| (t, AtomicUsize::new(ps.len())))
            .collect();

        // Committed summaries, swapped wholesale on each task commit; a
        // build job clones the Arc (not the map) to snapshot every child it
        // can ever look up.
        let committed: Mutex<Arc<SummaryMap>> = Mutex::new(Arc::new(SummaryMap::new()));

        // A built pair waiting for its queries: the verifier is kept alive
        // (it owns the summary snapshot its graph was built against) and the
        // graph is read-only, so query jobs share both through an Arc.
        struct PairRuntime<'a> {
            verifier: TaskVerifier<'a>,
            graph: ExploredGraph,
        }
        // A pair's reduced result. `entries` is *moved* into the task
        // summary when the task commits (leaving this empty), so the entry
        // list exists once; the counts stay behind for the deterministic
        // post-pool debug trace.
        struct ReducedPair {
            entries: Vec<RtEntry>,
            stats: Stats,
            total: usize,
            returning: usize,
        }
        // Ordered-reduction buffer of one (T, β) pair. In shared-arena mode
        // (`shared_km`) the pair additionally owns its [`PairShared`] state:
        // exactly one query job of the pair is in flight at a time (each
        // pushes its successor), so the job *takes* the state out of the
        // mutex, extends the arena unlocked, and puts it back — queries of
        // one pair form a sequential chain while distinct pairs still fan
        // out across workers.
        struct PairState<'a> {
            runtime: Option<Arc<PairRuntime<'a>>>,
            shared: Option<PairShared>,
            results: Vec<Option<(Vec<RtEntry>, QueryCost)>>,
            remaining: usize,
            reduced: Option<ReducedPair>,
        }
        let pair_states: Vec<Mutex<PairState<'_>>> = pairs
            .iter()
            .map(|_| {
                Mutex::new(PairState {
                    runtime: None,
                    shared: None,
                    results: Vec::new(),
                    remaining: 0,
                    reduced: None,
                })
            })
            .collect();

        #[derive(Clone, Copy)]
        enum Job {
            /// Forward exploration of one `(T, β)` pair (by pair index).
            Build(usize),
            /// Lemma 21 queries of one `(T, β, τ_in)` (pair index, τ_in
            /// position).
            Query(usize, usize),
        }

        // Records a pair's reduced result; when it was the task's last pair,
        // commits the task summary (pairs concatenated in β order — the
        // sequential layout) and releases the parent's builds if this task
        // was its last unfinished child.
        let commit_pair =
            |p: usize, (entries, stats): (Vec<RtEntry>, Stats), handle: &WorkerHandle<'_, Job>| {
                let task = pairs[p].0;
                let reduced = ReducedPair {
                    total: entries.len(),
                    returning: entries.iter().filter(|e| e.output.is_some()).count(),
                    entries,
                    stats,
                };
                pair_states[p].lock().expect("pair state poisoned").reduced = Some(reduced);
                if remaining_pairs[&task].fetch_sub(1, Ordering::SeqCst) != 1 {
                    return;
                }
                let mut summary = TaskSummary::default();
                for &q in &task_pairs[&task] {
                    let mut state = pair_states[q].lock().expect("pair state poisoned");
                    let reduced = state.reduced.as_mut().expect("pair reduced");
                    summary.entries.append(&mut reduced.entries);
                }
                {
                    let mut shared = committed.lock().expect("summary map poisoned");
                    let mut map = (**shared).clone();
                    map.insert(task, Arc::new(summary));
                    *shared = Arc::new(map);
                }
                if let Some(parent) = schema.task(task).parent {
                    if pending_children[&parent].fetch_sub(1, Ordering::SeqCst) == 1 {
                        for &q in &task_pairs[&parent] {
                            handle.push(Job::Build(q));
                        }
                    }
                }
            };

        // Seed: the leaves' build jobs, in canonical order.
        let seeds: Vec<Job> = order
            .iter()
            .filter(|&&t| schema.task(t).children.is_empty())
            .flat_map(|t| task_pairs[t].iter().copied().map(Job::Build))
            .collect();

        run_pool(threads, seeds, |job, handle| match job {
            Job::Build(p) => {
                let (task, beta) = &pairs[p];
                let snapshot = committed.lock().expect("summary map poisoned").clone();
                let verifier = TaskVerifier::new(
                    self.system,
                    &self.config,
                    &contexts[task],
                    *task,
                    beta.clone(),
                    pc.phi(*task),
                    &buchis[p],
                    snapshot,
                    contexts,
                    dead,
                );
                let graph = verifier.build_graph();
                let inits = graph.initial_count();
                if inits == 0 {
                    let reduced = TaskVerifier::reduce_queries(&graph, std::iter::empty());
                    commit_pair(p, reduced, handle);
                    return;
                }
                let shared = self
                    .config
                    .shared_km
                    .then(|| verifier.prepare_shared(&graph));
                {
                    let mut state = pair_states[p].lock().expect("pair state poisoned");
                    state.results = vec![None; inits];
                    state.remaining = inits;
                    state.shared = shared;
                    state.runtime = Some(Arc::new(PairRuntime { verifier, graph }));
                }
                if self.config.shared_km {
                    // Shared arena: the pair's queries run as a sequential
                    // chain (each pushes the next), extending one arena in
                    // initial-state order — the canonical order, so the
                    // arena's evolution is identical at every thread count.
                    handle.push(Job::Query(p, 0));
                } else {
                    for pos in 0..inits {
                        handle.push(Job::Query(p, pos));
                    }
                }
            }
            Job::Query(p, pos) => {
                let (runtime, mut shared) = {
                    let mut state = pair_states[p].lock().expect("pair state poisoned");
                    (
                        state
                            .runtime
                            .clone()
                            .expect("graph is built before its queries are pushed"),
                        state.shared.take(),
                    )
                };
                let result = match shared.as_mut() {
                    Some(sh) => runtime.verifier.init_queries_shared(&runtime.graph, pos, sh),
                    None => runtime.verifier.init_queries(&runtime.graph, pos),
                };
                let chained = shared.is_some();
                let reduced = {
                    let mut state = pair_states[p].lock().expect("pair state poisoned");
                    state.results[pos] = Some(result);
                    state.remaining -= 1;
                    if state.remaining == 0 {
                        let runtime = state.runtime.take().expect("runtime set until last query");
                        let per_init: Vec<(Vec<RtEntry>, QueryCost)> = state
                            .results
                            .drain(..)
                            .map(|r| r.expect("every query filled its slot"))
                            .collect();
                        Some(TaskVerifier::reduce_queries(&runtime.graph, per_init))
                    } else {
                        state.shared = shared.take();
                        None
                    }
                };
                match reduced {
                    Some(reduced) => commit_pair(p, reduced, handle),
                    None if chained => handle.push(Job::Query(p, pos + 1)),
                    None => {}
                }
            }
        });

        // Deterministic aggregation: walk the canonical pair order, exactly
        // as the sequential engine absorbed and traced its pairs.
        let mut stats = Stats::default();
        for (p, state) in pair_states.into_iter().enumerate() {
            let state = state.into_inner().expect("pair state poisoned");
            let reduced = state.reduced.expect("scheduler reduced every pair");
            let (task, beta) = &pairs[p];
            self.debug_pair_counts(*task, beta, reduced.total, reduced.returning, &reduced.stats);
            stats.absorb(&reduced.stats);
        }
        let summaries = committed.into_inner().expect("summary map poisoned");
        (
            Arc::try_unwrap(summaries).unwrap_or_else(|shared| (*shared).clone()),
            stats,
        )
    }

    /// `HAS_VERIFIER_DEBUG` trace line for one reduced `(T, β)` pair. The β
    /// is the pair's actual assignment (it used to be recovered from the
    /// first entry, which traced an empty β for entry-less pairs), and the
    /// variable is treated as a switch: unset, empty, or `0` disables the
    /// trace.
    fn debug_pair(&self, task: TaskId, beta: &[bool], entries: &[RtEntry], stats: &Stats) {
        let returning = entries.iter().filter(|e| e.output.is_some()).count();
        self.debug_pair_counts(task, beta, entries.len(), returning, stats);
    }

    /// [`Verifier::debug_pair`] with the counts precomputed — the parallel
    /// engine moves a pair's entries into the task summary at commit time
    /// and keeps only these counts for the post-pool trace.
    fn debug_pair_counts(
        &self,
        task: TaskId,
        beta: &[bool],
        entries: usize,
        returning: usize,
        stats: &Stats,
    ) {
        if !verifier_debug_enabled() {
            return;
        }
        eprintln!(
            "[has-core] task {} beta {:?}: {} entries ({} returning), {}",
            self.system.schema.task(task).name,
            beta,
            entries,
            returning,
            stats
        );
    }

    /// Builds the Hierarchical Cell Decomposition induced by the arithmetic
    /// atoms of the specification and the property, and returns its total
    /// cell count (the quantity measured by experiment EXP-F4).
    fn build_hcd_cell_count(&self) -> usize {
        let schema = &self.system.schema;
        let mut builder: HcdBuilder<VarId> = HcdBuilder::new();
        for (task_id, task) in schema.tasks() {
            let mut polys: Vec<LinExpr<VarId>> = Vec::new();
            let collect = |c: &has_model::Condition, polys: &mut Vec<LinExpr<VarId>>| {
                for a in c.arithmetic_atoms() {
                    polys.push(a.expr.clone());
                }
            };
            for s in &task.internal_services {
                collect(&s.pre, &mut polys);
                collect(&s.post, &mut polys);
            }
            collect(&task.closing.pre, &mut polys);
            for &c in &task.children {
                collect(&schema.task(c).opening.pre, &mut polys);
            }
            // Shared numeric variables with the parent (inputs and returns).
            let shared: Vec<(VarId, VarId)> = task
                .opening
                .input_map
                .iter()
                .map(|(c, p)| (*c, *p))
                .chain(task.closing.output_map.iter().map(|(p, c)| (*c, *p)))
                .filter(|(c, _)| {
                    schema.variable(*c).sort == has_model::VarSort::Numeric
                })
                .collect();
            builder = builder.task(task_id.0, task.parent.map(|p| p.0), polys, shared);
        }
        builder.build().total_cells()
    }
}

/// Whether `HAS_VERIFIER_DEBUG` requests the per-pair trace: set to any
/// non-empty value other than `0`. (`is_ok()` alone would treat
/// `HAS_VERIFIER_DEBUG=0` — the conventional "off" — as on.)
fn verifier_debug_enabled() -> bool {
    std::env::var("HAS_VERIFIER_DEBUG")
        .map(|value| {
            let value = value.trim();
            !value.is_empty() && value != "0"
        })
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use has_ltl::hltl::HltlBuilder;
    use has_model::{Condition, SetUpdate, SystemBuilder};

    /// A single-task system with one flag that is set by a service and never
    /// unset: `F set` should hold on every infinite run... except runs where
    /// the service never fires, so `F set` is violated; `G (set -> set)` is a
    /// tautology and holds.
    fn flag_system() -> (ArtifactSystem, has_model::VarId) {
        let mut b = SystemBuilder::new("flag");
        let root = b.root_task("Main");
        let flag = b.num_var(root, "flag");
        b.internal_service(
            root,
            "set",
            Condition::True,
            Condition::eq_const(flag, has_arith::Rational::from_int(1)),
            SetUpdate::None,
        );
        b.internal_service(
            root,
            "idle",
            Condition::True,
            Condition::True,
            SetUpdate::None,
        );
        (b.build().unwrap(), flag)
    }

    #[test]
    fn tautology_holds() {
        let (system, flag) = flag_system();
        let root = system.root();
        let mut hb = HltlBuilder::new(root);
        let set = hb.condition(Condition::eq_const(flag, has_arith::Rational::from_int(1)));
        let property = hb.finish(set.clone().implies(set).globally());
        let outcome = Verifier::new(&system, &property).verify();
        assert!(outcome.holds, "{outcome}");
    }

    #[test]
    fn eventually_set_is_violated_by_idle_loop() {
        let (system, flag) = flag_system();
        let root = system.root();
        let mut hb = HltlBuilder::new(root);
        let set = hb.condition(Condition::eq_const(flag, has_arith::Rational::from_int(1)));
        let property = hb.finish(set.eventually());
        let outcome = Verifier::new(&system, &property).verify();
        assert!(!outcome.holds, "{outcome}");
        // The idle self-loop is an infinite local run of the root.
        assert_eq!(outcome.violation.expect("witness").kind, ViolationKind::Lasso);
    }

    /// Regression for the root-violation misclassification: the root below
    /// has no internal services and immediately opens a child whose closing
    /// condition is unreachable, so its *only* violating run blocks forever
    /// on the never-returning child — the reported kind must be `Blocking`,
    /// not the formerly hardcoded `Lasso`.
    #[test]
    fn blocking_on_a_never_returning_child_reports_blocking() {
        let mut b = SystemBuilder::new("blocking");
        let root = b.root_task("Main");
        let ret = b.num_var(root, "ret");
        let child = b.child_task(root, "Child");
        let cflag = b.num_var(child, "cflag");
        // The child spins forever: its only service keeps the flag at 0 and
        // its closing condition demands 1.
        b.internal_service(
            child,
            "spin",
            Condition::True,
            Condition::eq_const(cflag, has_arith::Rational::ZERO),
            SetUpdate::None,
        );
        b.close_when(child, Condition::eq_const(cflag, has_arith::Rational::from_int(1)));
        b.map_output(child, ret, cflag);
        let system = b.build().unwrap();

        let mut hb = HltlBuilder::new(system.root());
        let done = hb.condition(Condition::eq_const(ret, has_arith::Rational::from_int(1)));
        let property = hb.finish(done.eventually());
        let outcome = Verifier::new(&system, &property).verify();
        assert!(!outcome.holds, "{outcome}");
        let violation = outcome.violation.as_ref().expect("witness");
        assert_eq!(violation.kind, ViolationKind::Blocking, "{outcome}");
        assert!(outcome.to_string().contains("blocking run"), "{outcome}");
    }

    /// With witness reconstruction on, the idle-loop lasso comes back as a
    /// rendered run: a (possibly empty) prefix plus a non-empty pump cycle
    /// of internal services — and the `holds`/stats answer is unchanged.
    #[test]
    fn lasso_witness_materializes_the_idle_pump_cycle() {
        let (system, flag) = flag_system();
        let root = system.root();
        let mut hb = HltlBuilder::new(root);
        let set = hb.condition(Condition::eq_const(flag, has_arith::Rational::from_int(1)));
        let property = hb.finish(set.eventually());
        let plain = Verifier::new(&system, &property).verify();
        let config = VerifierConfig::default().with_witnesses(true);
        let outcome = Verifier::with_config(&system, &property, config).verify();
        assert!(!outcome.holds);
        assert_eq!(outcome.stats, plain.stats, "retention must not change stats");
        let violation = outcome.violation.expect("witness");
        assert_eq!(violation.kind, ViolationKind::Lasso);
        assert_eq!(violation.origin(), root, "no sub-call to descend into");
        let witness = violation.witness.expect("reconstructed tree");
        assert_eq!(witness.task, root);
        assert!(
            !witness.cycle.is_empty() && !witness.cycle_truncated,
            "{witness}"
        );
        let rendered = witness.to_string();
        assert!(rendered.contains("cycle (repeatable pump):"), "{rendered}");
        assert!(rendered.contains("internal service `"), "{rendered}");
    }

    /// With witness reconstruction on, a root blocking on a never-returning
    /// child descends into the child: the origin names the child and the
    /// child's node carries its own (spinning) run.
    #[test]
    fn blocking_witness_descends_into_the_spinning_child() {
        let mut b = SystemBuilder::new("blocking");
        let root = b.root_task("Main");
        let ret = b.num_var(root, "ret");
        let child = b.child_task(root, "Child");
        let cflag = b.num_var(child, "cflag");
        b.internal_service(
            child,
            "spin",
            Condition::True,
            Condition::eq_const(cflag, has_arith::Rational::ZERO),
            SetUpdate::None,
        );
        b.close_when(child, Condition::eq_const(cflag, has_arith::Rational::from_int(1)));
        b.map_output(child, ret, cflag);
        let system = b.build().unwrap();
        let child_id = system.schema.task_by_name("Child").unwrap();

        let mut hb = HltlBuilder::new(system.root());
        let done = hb.condition(Condition::eq_const(ret, has_arith::Rational::from_int(1)));
        let property = hb.finish(done.eventually());
        let config = VerifierConfig::default().with_witnesses(true);
        let outcome = Verifier::with_config(&system, &property, config).verify();
        assert!(!outcome.holds, "{outcome}");
        let violation = outcome.violation.as_ref().expect("witness");
        // The root's own path kind is still blocking (the carrier is a
        // never-returning call, not a returned one) …
        assert_eq!(violation.kind, ViolationKind::Blocking, "{outcome}");
        // … but the origin names the task that actually violates.
        assert_eq!(violation.origin(), child_id);
        assert_eq!(violation.origin_name(), Some("Child"));
        let witness = violation.witness.as_ref().expect("tree");
        let rendered = witness.to_string();
        assert!(rendered.contains("→ never returns"), "{rendered}");
        assert!(rendered.contains("└ task `Child`"), "{rendered}");
        assert!(rendered.contains("internal service `spin`"), "{rendered}");
        // The outcome line names the originating sub-task.
        assert!(
            outcome.to_string().contains("originating in task `Child`"),
            "{outcome}"
        );
    }

    #[test]
    fn contradictory_property_is_always_violated() {
        let (system, flag) = flag_system();
        let root = system.root();
        let mut hb = HltlBuilder::new(root);
        let set = hb.condition(Condition::eq_const(flag, has_arith::Rational::from_int(1)));
        let property = hb.finish(set.clone().and(set.not()).eventually().globally());
        let outcome = Verifier::new(&system, &property).verify();
        assert!(!outcome.holds);
    }

    #[test]
    fn true_property_holds_and_reports_stats() {
        let (system, _) = flag_system();
        let root = system.root();
        let hb = HltlBuilder::new(root);
        let property = hb.finish(has_ltl::Ltl::True);
        let outcome = Verifier::new(&system, &property).verify();
        assert!(outcome.holds);
        assert!(outcome.stats.control_states > 0);
        assert!(outcome.stats.task_assignments >= 1);
    }
}
