//! The top-level verifier: bottom-up computation of `R_T` and the final
//! model-checking answer.

use crate::outcome::{Outcome, Stats, Violation, ViolationKind};
use crate::parallel::run_indexed;
use crate::property::PropertyContext;
use crate::task_verifier::{ExploredGraph, RtEntry, TaskSummary, TaskVerifier};
use has_arith::{HcdBuilder, LinExpr};
use has_ltl::HltlFormula;
use has_model::{ArtifactSystem, TaskId, VarId};
use std::collections::BTreeMap;

/// Tuning knobs of the verifier.
///
/// The defaults are adequate for the systems in `has-workloads`; the caps
/// exist because several enumeration steps are worst-case exponential (that
/// is the content of Tables 1 and 2) and runaway instances should degrade
/// into an explicit truncation rather than an apparent hang. Any truncation
/// is an *under*-approximation of the violation search (`holds = true`
/// results are then "no violation found within the explored space").
#[derive(Clone, Debug)]
pub struct VerifierConfig {
    /// Foreign-key navigation depth of the symbolic expression universe.
    pub nav_depth: usize,
    /// Cap on the number of symbolic successor states per enumeration step.
    pub max_successors: usize,
    /// Cap on the number of control states explored per `(T, β)` pair.
    pub max_control_states: usize,
    /// Cap on the number of undecided related-expression pairs branched over
    /// when refining a successor state.
    pub max_merge_pairs: usize,
    /// Cap on the number of property propositions left undetermined by the
    /// abstraction that are branched over per letter.
    pub max_unknown_props: usize,
    /// Cap on the number of Karp–Miller coverability-graph nodes built per
    /// reachability query (truncation under-approximates the search).
    pub km_node_cap: usize,
    /// Whether to build the Hierarchical Cell Decomposition for arithmetic
    /// constraints (Section 5). The decomposition is reported in the
    /// statistics and used to refine arithmetic atoms where possible.
    pub use_cells: bool,
    /// Number of worker threads for the `(T, β)` fan-out. `1` runs the exact
    /// sequential code path (no threads are spawned); larger values schedule
    /// the task hierarchy level by level and distribute each level's
    /// `(T, β)` explorations and per-initial-state Lemma 21 queries across a
    /// scoped worker pool. The outcome and statistics are identical at every
    /// thread count (DESIGN.md §5.6); `0` is treated as `1`.
    ///
    /// Defaults to [`VerifierConfig::default_threads`].
    pub threads: usize,
}

impl Default for VerifierConfig {
    fn default() -> Self {
        VerifierConfig {
            nav_depth: 1,
            max_successors: 512,
            max_control_states: 20_000,
            max_merge_pairs: 6,
            max_unknown_props: 4,
            km_node_cap: 50_000,
            use_cells: false,
            threads: Self::default_threads(),
        }
    }
}

impl VerifierConfig {
    /// The default worker count: the `HAS_THREADS` environment variable when
    /// it is set to a positive integer, otherwise the machine's available
    /// parallelism (`1` if that cannot be determined).
    pub fn default_threads() -> usize {
        if let Ok(value) = std::env::var("HAS_THREADS") {
            if let Ok(n) = value.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// Returns this configuration with the given worker count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// The HAS verifier.
pub struct Verifier<'a> {
    system: &'a ArtifactSystem,
    property: &'a HltlFormula,
    config: VerifierConfig,
}

impl<'a> Verifier<'a> {
    /// Creates a verifier for a system and property with default settings.
    pub fn new(system: &'a ArtifactSystem, property: &'a HltlFormula) -> Self {
        Verifier {
            system,
            property,
            config: VerifierConfig::default(),
        }
    }

    /// Creates a verifier with an explicit configuration.
    pub fn with_config(
        system: &'a ArtifactSystem,
        property: &'a HltlFormula,
        config: VerifierConfig,
    ) -> Self {
        Verifier {
            system,
            property,
            config,
        }
    }

    /// Decides `Γ ⊨ φ`.
    ///
    /// Returns an [`Outcome`] with the answer, a symbolic witness when the
    /// property can be violated, and exploration statistics.
    ///
    /// With `config.threads > 1` the task hierarchy is scheduled as a
    /// level-synchronized DAG: within a level every `(T, β)` exploration and
    /// every per-initial-state Lemma 21 query runs on a scoped worker pool,
    /// and all results are reduced in the fixed `(task, β, τ_in)` order —
    /// the outcome and statistics are identical to `threads = 1`
    /// (DESIGN.md §5.6 states the contract; `tests/parallel_determinism.rs`
    /// enforces it).
    ///
    /// # Panics
    /// Panics if the property fails validation against the system.
    pub fn verify(&self) -> Outcome {
        self.property
            .validate(self.system)
            .expect("property must be well-formed for the system");

        let mut stats = Stats::default();
        if self.config.use_cells {
            stats.hcd_cells = self.build_hcd_cell_count();
        }

        let mut pc = PropertyContext::new(self.system, self.property, self.config.nav_depth);
        // Every B(T, β) one verification run needs, built up front: after
        // this the property context is never mutated again, so workers can
        // share it immutably.
        pc.precompute_automata();

        let order = self.bottom_up_order();
        let threads = self.config.threads.max(1);
        let (summaries, explored) = if threads == 1 {
            self.run_sequential(&pc, &order)
        } else {
            self.run_parallel(&pc, &order, threads)
        };
        stats = stats.merge(&explored);

        // Γ ⊨ φ iff there is no non-returning root run with β(ξ) = 0.
        let (root_task, root_index) = pc.root();
        let root_summary = &summaries[&root_task];
        let violating = root_summary
            .entries
            .iter()
            .find(|e| e.output.is_none() && !e.beta.get(root_index).copied().unwrap_or(false));

        match violating {
            None => Outcome {
                holds: true,
                violation: None,
                stats,
            },
            Some(entry) => Outcome {
                holds: false,
                violation: Some(Violation {
                    task: root_task,
                    kind: ViolationKind::Lasso,
                    input_description: format!("input isomorphism type {:?}", entry.input_key),
                }),
                stats,
            },
        }
    }

    /// Bottom-up (children before parents) DFS postorder over the hierarchy.
    fn bottom_up_order(&self) -> Vec<TaskId> {
        let schema = &self.system.schema;
        let mut order: Vec<TaskId> = Vec::new();
        let mut stack = vec![(schema.root, false)];
        while let Some((t, expanded)) = stack.pop() {
            if expanded {
                order.push(t);
            } else {
                stack.push((t, true));
                for &c in &schema.task(t).children {
                    stack.push((c, false));
                }
            }
        }
        order
    }

    /// The exact sequential engine: one `(T, β)` exploration after another in
    /// bottom-up task order, each immediately followed by its Lemma 21
    /// queries. This is the `threads = 1` code path — no worker threads are
    /// spawned anywhere.
    fn run_sequential(
        &self,
        pc: &PropertyContext,
        order: &[TaskId],
    ) -> (BTreeMap<TaskId, TaskSummary>, Stats) {
        let contexts = &*pc.contexts;
        let mut stats = Stats::default();
        let mut summaries: BTreeMap<TaskId, TaskSummary> = BTreeMap::new();
        for &task in order {
            let mut summary = TaskSummary::default();
            for beta in pc.assignments(task) {
                let buchi = pc.buchi_shared(task, &beta);
                let tv = TaskVerifier::new(
                    self.system,
                    &self.config,
                    &contexts[&task],
                    task,
                    beta,
                    pc.phi(task),
                    &buchi,
                    &summaries,
                    contexts,
                );
                let (entries, task_stats) = tv.explore();
                self.debug_pair(task, &entries, &task_stats);
                stats.absorb(&task_stats);
                summary.entries.extend(entries);
            }
            summaries.insert(task, summary);
        }
        (summaries, stats)
    }

    /// The parallel engine: the hierarchy is scheduled level by level
    /// (children strictly before parents, sibling tasks concurrent), and
    /// within a level two waves of jobs are fanned out over a scoped worker
    /// pool — first one [`TaskVerifier::build_graph`] job per `(T, β)` pair,
    /// then one [`TaskVerifier::init_queries`] job per `(T, β, τ_in)`
    /// triple. Workers only *read* shared state (the system, the property
    /// context, the previous levels' summaries); all results are reduced on
    /// the calling thread in the fixed `(task, β, τ_in)` order, which makes
    /// the outcome independent of scheduling (DESIGN.md §5.6).
    fn run_parallel(
        &self,
        pc: &PropertyContext,
        order: &[TaskId],
        threads: usize,
    ) -> (BTreeMap<TaskId, TaskSummary>, Stats) {
        let schema = &self.system.schema;
        let contexts = &*pc.contexts;
        let mut stats = Stats::default();
        let mut summaries: BTreeMap<TaskId, TaskSummary> = BTreeMap::new();

        // Height of each task above the leaves; tasks of equal height are
        // independent of each other once every lower level is summarized.
        let mut height: BTreeMap<TaskId, usize> = BTreeMap::new();
        for &t in order {
            let h = schema
                .task(t)
                .children
                .iter()
                .map(|c| height[c] + 1)
                .max()
                .unwrap_or(0);
            height.insert(t, h);
        }
        let max_height = height.values().copied().max().unwrap_or(0);

        for level in 0..=max_height {
            let level_tasks: Vec<TaskId> = order
                .iter()
                .copied()
                .filter(|t| height[t] == level)
                .collect();
            // Deterministic job order: tasks in bottom-up order, assignments
            // in β-enumeration order.
            let pairs: Vec<(TaskId, Vec<bool>)> = level_tasks
                .iter()
                .flat_map(|&t| pc.assignments(t).into_iter().map(move |b| (t, b)))
                .collect();
            let buchis: Vec<_> = pairs
                .iter()
                .map(|(t, b)| pc.buchi_shared(*t, b))
                .collect();
            let verifiers: Vec<TaskVerifier> = pairs
                .iter()
                .zip(&buchis)
                .map(|((task, beta), buchi)| {
                    TaskVerifier::new(
                        self.system,
                        &self.config,
                        &contexts[task],
                        *task,
                        beta.clone(),
                        pc.phi(*task),
                        buchi,
                        &summaries,
                        contexts,
                    )
                })
                .collect();

            // Wave 1: forward exploration, one job per (T, β).
            let graphs: Vec<ExploredGraph> =
                run_indexed(threads, verifiers.len(), |i| verifiers[i].build_graph());

            // Wave 2: Lemma 21 queries, one job per (T, β, τ_in).
            let jobs: Vec<(usize, usize)> = graphs
                .iter()
                .enumerate()
                .flat_map(|(pair, g)| (0..g.initial_count()).map(move |pos| (pair, pos)))
                .collect();
            let query_results: Vec<(Vec<RtEntry>, usize)> =
                run_indexed(threads, jobs.len(), |i| {
                    let (pair, pos) = jobs[i];
                    verifiers[pair].init_queries(&graphs[pair], pos)
                });

            // Ordered reduction: per pair (in job order), per initial state
            // (in enumeration order) — byte-identical to the sequential run.
            let mut results = query_results.into_iter();
            for ((task, _beta), graph) in pairs.iter().zip(&graphs) {
                let per_init: Vec<(Vec<RtEntry>, usize)> =
                    results.by_ref().take(graph.initial_count()).collect();
                let (entries, task_stats) = TaskVerifier::reduce_queries(graph, per_init);
                self.debug_pair(*task, &entries, &task_stats);
                stats.absorb(&task_stats);
                summaries
                    .entry(*task)
                    .or_default()
                    .entries
                    .extend(entries);
            }
            // Tasks whose every (T, β) produced no entries still need a
            // (default) summary so parents can look them up.
            for &t in &level_tasks {
                summaries.entry(t).or_default();
            }
        }
        (summaries, stats)
    }

    /// `HAS_VERIFIER_DEBUG` trace line for one reduced `(T, β)` pair.
    fn debug_pair(&self, task: TaskId, entries: &[crate::task_verifier::RtEntry], stats: &Stats) {
        if std::env::var("HAS_VERIFIER_DEBUG").is_ok() {
            let returning = entries.iter().filter(|e| e.output.is_some()).count();
            eprintln!(
                "[has-core] task {} beta {:?}: {} entries ({} returning), {}",
                self.system.schema.task(task).name,
                tv_beta_for_debug(entries),
                entries.len(),
                returning,
                stats
            );
        }
    }

    /// Builds the Hierarchical Cell Decomposition induced by the arithmetic
    /// atoms of the specification and the property, and returns its total
    /// cell count (the quantity measured by experiment EXP-F4).
    fn build_hcd_cell_count(&self) -> usize {
        let schema = &self.system.schema;
        let mut builder: HcdBuilder<VarId> = HcdBuilder::new();
        for (task_id, task) in schema.tasks() {
            let mut polys: Vec<LinExpr<VarId>> = Vec::new();
            let collect = |c: &has_model::Condition, polys: &mut Vec<LinExpr<VarId>>| {
                for a in c.arithmetic_atoms() {
                    polys.push(a.expr.clone());
                }
            };
            for s in &task.internal_services {
                collect(&s.pre, &mut polys);
                collect(&s.post, &mut polys);
            }
            collect(&task.closing.pre, &mut polys);
            for &c in &task.children {
                collect(&schema.task(c).opening.pre, &mut polys);
            }
            // Shared numeric variables with the parent (inputs and returns).
            let shared: Vec<(VarId, VarId)> = task
                .opening
                .input_map
                .iter()
                .map(|(c, p)| (*c, *p))
                .chain(task.closing.output_map.iter().map(|(p, c)| (*c, *p)))
                .filter(|(c, _)| {
                    schema.variable(*c).sort == has_model::VarSort::Numeric
                })
                .collect();
            builder = builder.task(task_id.0, task.parent.map(|p| p.0), polys, shared);
        }
        builder.build().total_cells()
    }
}

fn tv_beta_for_debug(entries: &[crate::task_verifier::RtEntry]) -> Vec<bool> {
    entries.first().map(|e| e.beta.clone()).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use has_ltl::hltl::HltlBuilder;
    use has_model::{Condition, SetUpdate, SystemBuilder};

    /// A single-task system with one flag that is set by a service and never
    /// unset: `F set` should hold on every infinite run... except runs where
    /// the service never fires, so `F set` is violated; `G (set -> set)` is a
    /// tautology and holds.
    fn flag_system() -> (ArtifactSystem, has_model::VarId) {
        let mut b = SystemBuilder::new("flag");
        let root = b.root_task("Main");
        let flag = b.num_var(root, "flag");
        b.internal_service(
            root,
            "set",
            Condition::True,
            Condition::eq_const(flag, has_arith::Rational::from_int(1)),
            SetUpdate::None,
        );
        b.internal_service(
            root,
            "idle",
            Condition::True,
            Condition::True,
            SetUpdate::None,
        );
        (b.build().unwrap(), flag)
    }

    #[test]
    fn tautology_holds() {
        let (system, flag) = flag_system();
        let root = system.root();
        let mut hb = HltlBuilder::new(root);
        let set = hb.condition(Condition::eq_const(flag, has_arith::Rational::from_int(1)));
        let property = hb.finish(set.clone().implies(set).globally());
        let outcome = Verifier::new(&system, &property).verify();
        assert!(outcome.holds, "{outcome}");
    }

    #[test]
    fn eventually_set_is_violated_by_idle_loop() {
        let (system, flag) = flag_system();
        let root = system.root();
        let mut hb = HltlBuilder::new(root);
        let set = hb.condition(Condition::eq_const(flag, has_arith::Rational::from_int(1)));
        let property = hb.finish(set.eventually());
        let outcome = Verifier::new(&system, &property).verify();
        assert!(!outcome.holds, "{outcome}");
        assert!(outcome.violation.is_some());
    }

    #[test]
    fn contradictory_property_is_always_violated() {
        let (system, flag) = flag_system();
        let root = system.root();
        let mut hb = HltlBuilder::new(root);
        let set = hb.condition(Condition::eq_const(flag, has_arith::Rational::from_int(1)));
        let property = hb.finish(set.clone().and(set.not()).eventually().globally());
        let outcome = Verifier::new(&system, &property).verify();
        assert!(!outcome.holds);
    }

    #[test]
    fn true_property_holds_and_reports_stats() {
        let (system, _) = flag_system();
        let root = system.root();
        let hb = HltlBuilder::new(root);
        let property = hb.finish(has_ltl::Ltl::True);
        let outcome = Verifier::new(&system, &property).verify();
        assert!(outcome.holds);
        assert!(outcome.stats.control_states > 0);
        assert!(outcome.stats.task_assignments >= 1);
    }
}
