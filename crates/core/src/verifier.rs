//! The top-level verifier: bottom-up computation of `R_T` and the final
//! model-checking answer.

use crate::outcome::{Outcome, Stats, Violation, ViolationKind};
use crate::property::PropertyContext;
use crate::task_verifier::{TaskSummary, TaskVerifier};
use has_arith::{HcdBuilder, LinExpr};
use has_ltl::HltlFormula;
use has_model::{ArtifactSystem, TaskId, VarId};
use std::collections::BTreeMap;

/// Tuning knobs of the verifier.
///
/// The defaults are adequate for the systems in `has-workloads`; the caps
/// exist because several enumeration steps are worst-case exponential (that
/// is the content of Tables 1 and 2) and runaway instances should degrade
/// into an explicit truncation rather than an apparent hang. Any truncation
/// is an *under*-approximation of the violation search (`holds = true`
/// results are then "no violation found within the explored space").
#[derive(Clone, Debug)]
pub struct VerifierConfig {
    /// Foreign-key navigation depth of the symbolic expression universe.
    pub nav_depth: usize,
    /// Cap on the number of symbolic successor states per enumeration step.
    pub max_successors: usize,
    /// Cap on the number of control states explored per `(T, β)` pair.
    pub max_control_states: usize,
    /// Cap on the number of undecided related-expression pairs branched over
    /// when refining a successor state.
    pub max_merge_pairs: usize,
    /// Cap on the number of property propositions left undetermined by the
    /// abstraction that are branched over per letter.
    pub max_unknown_props: usize,
    /// Cap on the number of Karp–Miller coverability-graph nodes built per
    /// reachability query (truncation under-approximates the search).
    pub km_node_cap: usize,
    /// Whether to build the Hierarchical Cell Decomposition for arithmetic
    /// constraints (Section 5). The decomposition is reported in the
    /// statistics and used to refine arithmetic atoms where possible.
    pub use_cells: bool,
}

impl Default for VerifierConfig {
    fn default() -> Self {
        VerifierConfig {
            nav_depth: 1,
            max_successors: 512,
            max_control_states: 20_000,
            max_merge_pairs: 6,
            max_unknown_props: 4,
            km_node_cap: 50_000,
            use_cells: false,
        }
    }
}

/// The HAS verifier.
pub struct Verifier<'a> {
    system: &'a ArtifactSystem,
    property: &'a HltlFormula,
    config: VerifierConfig,
}

impl<'a> Verifier<'a> {
    /// Creates a verifier for a system and property with default settings.
    pub fn new(system: &'a ArtifactSystem, property: &'a HltlFormula) -> Self {
        Verifier {
            system,
            property,
            config: VerifierConfig::default(),
        }
    }

    /// Creates a verifier with an explicit configuration.
    pub fn with_config(
        system: &'a ArtifactSystem,
        property: &'a HltlFormula,
        config: VerifierConfig,
    ) -> Self {
        Verifier {
            system,
            property,
            config,
        }
    }

    /// Decides `Γ ⊨ φ`.
    ///
    /// Returns an [`Outcome`] with the answer, a symbolic witness when the
    /// property can be violated, and exploration statistics.
    ///
    /// # Panics
    /// Panics if the property fails validation against the system.
    pub fn verify(&self) -> Outcome {
        self.property
            .validate(self.system)
            .expect("property must be well-formed for the system");

        let mut stats = Stats::default();
        if self.config.use_cells {
            stats.hcd_cells = self.build_hcd_cell_count();
        }

        let mut pc = PropertyContext::new(self.system, self.property, self.config.nav_depth);
        let schema = &self.system.schema;

        // Bottom-up order: children before parents.
        let mut order: Vec<TaskId> = Vec::new();
        let mut stack = vec![(schema.root, false)];
        while let Some((t, expanded)) = stack.pop() {
            if expanded {
                order.push(t);
            } else {
                stack.push((t, true));
                for &c in &schema.task(t).children {
                    stack.push((c, false));
                }
            }
        }

        let mut summaries: BTreeMap<TaskId, TaskSummary> = BTreeMap::new();
        for task in order {
            let mut summary = TaskSummary::default();
            let assignments = pc.assignments(task);
            for beta in assignments {
                // Büchi automata are cached inside the property context; the
                // borrow is released before the task verifier runs by cloning
                // the automaton (they are small).
                let buchi = pc.buchi(task, &beta).clone();
                let phi = pc.phi(task).to_vec();
                let ctx = pc.context(task);
                let child_contexts: BTreeMap<TaskId, _> = schema
                    .task(task)
                    .children
                    .iter()
                    .map(|c| (*c, pc.context(*c).clone()))
                    .collect();
                let tv = TaskVerifier::new(
                    self.system,
                    &self.config,
                    ctx,
                    task,
                    beta,
                    &phi,
                    &buchi,
                    &summaries,
                    &child_contexts,
                );
                let (entries, task_stats) = tv.explore();
                if std::env::var("HAS_VERIFIER_DEBUG").is_ok() {
                    let returning = entries.iter().filter(|e| e.output.is_some()).count();
                    eprintln!(
                        "[has-core] task {} beta {:?}: {} entries ({} returning), {}",
                        self.system.schema.task(task).name,
                        tv_beta_for_debug(&entries),
                        entries.len(),
                        returning,
                        task_stats
                    );
                }
                stats.absorb(&task_stats);
                summary.entries.extend(entries);
            }
            summaries.insert(task, summary);
        }

        // Γ ⊨ φ iff there is no non-returning root run with β(ξ) = 0.
        let (root_task, root_index) = pc.root();
        let root_summary = &summaries[&root_task];
        let violating = root_summary
            .entries
            .iter()
            .find(|e| e.output.is_none() && !e.beta.get(root_index).copied().unwrap_or(false));

        match violating {
            None => Outcome {
                holds: true,
                violation: None,
                stats,
            },
            Some(entry) => Outcome {
                holds: false,
                violation: Some(Violation {
                    task: root_task,
                    kind: ViolationKind::Lasso,
                    input_description: format!("input isomorphism type {:?}", entry.input_key),
                }),
                stats,
            },
        }
    }

    /// Builds the Hierarchical Cell Decomposition induced by the arithmetic
    /// atoms of the specification and the property, and returns its total
    /// cell count (the quantity measured by experiment EXP-F4).
    fn build_hcd_cell_count(&self) -> usize {
        let schema = &self.system.schema;
        let mut builder: HcdBuilder<VarId> = HcdBuilder::new();
        for (task_id, task) in schema.tasks() {
            let mut polys: Vec<LinExpr<VarId>> = Vec::new();
            let collect = |c: &has_model::Condition, polys: &mut Vec<LinExpr<VarId>>| {
                for a in c.arithmetic_atoms() {
                    polys.push(a.expr.clone());
                }
            };
            for s in &task.internal_services {
                collect(&s.pre, &mut polys);
                collect(&s.post, &mut polys);
            }
            collect(&task.closing.pre, &mut polys);
            for &c in &task.children {
                collect(&schema.task(c).opening.pre, &mut polys);
            }
            // Shared numeric variables with the parent (inputs and returns).
            let shared: Vec<(VarId, VarId)> = task
                .opening
                .input_map
                .iter()
                .map(|(c, p)| (*c, *p))
                .chain(task.closing.output_map.iter().map(|(p, c)| (*c, *p)))
                .filter(|(c, _)| {
                    schema.variable(*c).sort == has_model::VarSort::Numeric
                })
                .collect();
            builder = builder.task(task_id.0, task.parent.map(|p| p.0), polys, shared);
        }
        builder.build().total_cells()
    }
}

fn tv_beta_for_debug(entries: &[crate::task_verifier::RtEntry]) -> Vec<bool> {
    entries.first().map(|e| e.beta.clone()).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use has_ltl::hltl::HltlBuilder;
    use has_model::{Condition, SetUpdate, SystemBuilder};

    /// A single-task system with one flag that is set by a service and never
    /// unset: `F set` should hold on every infinite run... except runs where
    /// the service never fires, so `F set` is violated; `G (set -> set)` is a
    /// tautology and holds.
    fn flag_system() -> (ArtifactSystem, has_model::VarId) {
        let mut b = SystemBuilder::new("flag");
        let root = b.root_task("Main");
        let flag = b.num_var(root, "flag");
        b.internal_service(
            root,
            "set",
            Condition::True,
            Condition::eq_const(flag, has_arith::Rational::from_int(1)),
            SetUpdate::None,
        );
        b.internal_service(
            root,
            "idle",
            Condition::True,
            Condition::True,
            SetUpdate::None,
        );
        (b.build().unwrap(), flag)
    }

    #[test]
    fn tautology_holds() {
        let (system, flag) = flag_system();
        let root = system.root();
        let mut hb = HltlBuilder::new(root);
        let set = hb.condition(Condition::eq_const(flag, has_arith::Rational::from_int(1)));
        let property = hb.finish(set.clone().implies(set).globally());
        let outcome = Verifier::new(&system, &property).verify();
        assert!(outcome.holds, "{outcome}");
    }

    #[test]
    fn eventually_set_is_violated_by_idle_loop() {
        let (system, flag) = flag_system();
        let root = system.root();
        let mut hb = HltlBuilder::new(root);
        let set = hb.condition(Condition::eq_const(flag, has_arith::Rational::from_int(1)));
        let property = hb.finish(set.eventually());
        let outcome = Verifier::new(&system, &property).verify();
        assert!(!outcome.holds, "{outcome}");
        assert!(outcome.violation.is_some());
    }

    #[test]
    fn contradictory_property_is_always_violated() {
        let (system, flag) = flag_system();
        let root = system.root();
        let mut hb = HltlBuilder::new(root);
        let set = hb.condition(Condition::eq_const(flag, has_arith::Rational::from_int(1)));
        let property = hb.finish(set.clone().and(set.not()).eventually().globally());
        let outcome = Verifier::new(&system, &property).verify();
        assert!(!outcome.holds);
    }

    #[test]
    fn true_property_holds_and_reports_stats() {
        let (system, _) = flag_system();
        let root = system.root();
        let hb = HltlBuilder::new(root);
        let property = hb.finish(has_ltl::Ltl::True);
        let outcome = Verifier::new(&system, &property).verify();
        assert!(outcome.holds);
        assert!(outcome.stats.control_states > 0);
        assert!(outcome.stats.task_assignments >= 1);
    }
}
