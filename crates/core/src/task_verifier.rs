//! Per-task symbolic exploration: construction of the VASS `V(T, β)` and
//! computation of the relation `R_T` (Section 4.2, Lemma 21).

use crate::compiled::CompiledBuchi;
use crate::outcome::{Stats, WitnessStep};
use crate::verifier::VerifierConfig;
use has_analysis::{
    dimension_cone, dimension_cone_multi, presolve_query, DeadServiceMap, PresolveStats,
};
use has_ltl::buchi::{Buchi, BuchiState};
use has_ltl::hltl::TaskProp;
use has_ltl::Ltl;
use has_model::{
    ArtifactSystem, Condition, ServiceRef, TaskId, VarId, VarSort,
};
use has_symbolic::{transfer_pattern, ProjectionKey, SymState, TaskContext};
use has_vass::{
    BitSet, CoverabilityGraph, CycleSearch, FxHashMap, Interner, SharedCoverability, Vass,
};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// The cost measures of one `(T, β, τ_in)` Lemma 21 query, accumulated into
/// [`Stats`] by [`TaskVerifier::reduce_queries`]: Karp–Miller nodes explored
/// and the query's counter dimension before/after cone-of-influence
/// projection (equal when projection is off or the cone is full).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryCost {
    /// Karp–Miller coverability-graph nodes this query explored.
    pub km_nodes: usize,
    /// The query VASS's dimension before projection.
    pub dims_before: usize,
    /// The dimension actually searched (the cone size).
    pub dims_after: usize,
    /// Pre-solver verdict counts for this query's three Lemma 21
    /// sub-queries (all zero when [`VerifierConfig::presolve`] is off).
    pub presolve: PresolveStats,
    /// Karp–Miller nodes served from the shared per-`(T, β)` arena instead
    /// of being recomputed (0 when [`VerifierConfig::shared_km`] is off).
    pub km_reused: usize,
    /// Karp–Miller successors pruned by the shared arena's antichain (0
    /// when sharing is off).
    pub km_subsumed: usize,
}

/// The bottom-up store of completed task summaries the verifier threads
/// through the hierarchy: values are reference-counted so a scheduler can
/// publish a new snapshot per committed task (an `Arc` swap) without cloning
/// any summary, and every [`TaskVerifier`] holds its own snapshot handle.
pub type SummaryMap = BTreeMap<TaskId, Arc<TaskSummary>>;

/// Which of Lemma 21's non-returning path kinds were witnessed by a
/// non-returning [`RtEntry`] (`output: None`).
///
/// One entry can carry both: the same `(τ_in, β)` may admit a blocking run
/// *and* an infinite local run. Returning entries leave both flags `false`.
/// The flags ride along the tuple rather than splitting it, so the entry
/// count (and everything downstream of it — parent explorations, `R_T`
/// statistics) is unchanged by the classification.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NonReturningWitness {
    /// A run blocks forever on a child that never returns (the blocking
    /// query of Lemma 21).
    pub blocking: bool,
    /// An infinite local run exists (the lasso query of Lemma 21).
    pub lasso: bool,
}

impl NonReturningWitness {
    /// Accumulates the kinds witnessed by another candidate for the same
    /// `(τ_in, τ_out, β)` tuple.
    pub fn merge(&mut self, other: NonReturningWitness) {
        self.blocking |= other.blocking;
        self.lasso |= other.lasso;
    }
}

/// The retained Lemma 21 query structure of one [`RtEntry`]: a rendered
/// realization of the entry's run, kept only when
/// [`VerifierConfig::witnesses`] is enabled so the no-witness hot path pays
/// no extra allocations.
///
/// The steps carry everything witness reconstruction needs to *descend*:
/// each [`WitnessStep::OpenChild`] records the child `R_T` tuple the run
/// chose (input key, output, β), which identifies the child entry — and
/// therefore the child's own retained details — in the committed summaries.
/// The details ride inside the entry through the parallel engine's
/// ordered-reduction buffers, so the reconstructed counterexample inherits
/// the determinism contract of DESIGN.md §5.6 unchanged (see §5.7).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EntryDetails {
    /// Steps from the initial state to the distinguished point: the closing
    /// step (returning), the blocking state (blocking), or the pump cycle's
    /// entry node (lasso).
    pub prefix: Vec<WitnessStep>,
    /// The pump cycle of a lasso run (closed, componentwise non-negative
    /// counter effect); empty for the other kinds.
    pub cycle: Vec<WitnessStep>,
    /// A lasso whose pump cycle exceeded the materialization cap
    /// ([`WITNESS_CYCLE_CAP`]): the run is still a proven lasso, only the
    /// explicit cycle rendering is unavailable.
    pub cycle_truncated: bool,
}

/// Cap on the number of edge traversals a materialized pump cycle may take:
/// the circulation witness is scaled to integers and walked as an Eulerian
/// circuit, whose length is the scaled total flow — exact but potentially
/// large, so rendering degrades gracefully past this bound
/// (`EntryDetails::cycle_truncated`) while the lasso *decision* stays exact.
pub const WITNESS_CYCLE_CAP: usize = 4_096;

/// One tuple of the relation `R_T`: for runs with the given input
/// isomorphism type and truth assignment `β` over `Φ_T`, either a returning
/// run producing the recorded output state exists (`output = Some`), or an
/// infinite/blocking run exists (`output = None`, the paper's `τ_out = ⊥`,
/// with `witness` recording which of the two kinds were found).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RtEntry {
    /// Canonical key of the input isomorphism type (projection of the
    /// initial state onto the input variables).
    pub input_key: ProjectionKey,
    /// The symbolic state at the closing step for returning runs, `None` for
    /// non-returning (infinite or blocking) runs.
    pub output: Option<SymState>,
    /// Truth assignment over `Φ_T`.
    pub beta: Vec<bool>,
    /// For non-returning entries, the Lemma 21 path kinds witnessed.
    pub witness: NonReturningWitness,
    /// Retained run realization for witness reconstruction (`None` unless
    /// [`VerifierConfig::witnesses`] is enabled). Not part of the tuple's
    /// deduplication identity; shared by `Arc` so entry clones stay cheap.
    pub details: Option<Arc<EntryDetails>>,
}

impl RtEntry {
    /// Whether two candidates describe the same `R_T` tuple — the
    /// deduplication key of [`TaskVerifier::reduce_queries`], which merges
    /// the witnesses of equal tuples instead of keeping duplicates.
    fn same_tuple(&self, other: &RtEntry) -> bool {
        self.input_key == other.input_key
            && self.output == other.output
            && self.beta == other.beta
    }
}

/// The computed `R_T` of one task, for all assignments `β`.
#[derive(Clone, Debug, Default)]
pub struct TaskSummary {
    /// All entries.
    pub entries: Vec<RtEntry>,
}

impl TaskSummary {
    /// Entries matching an input key.
    pub fn matching(&self, input_key: &ProjectionKey) -> Vec<&RtEntry> {
        self.entries
            .iter()
            .filter(|e| &e.input_key == input_key)
            .collect()
    }

    /// Returns `true` if some entry has a non-returning run with the given
    /// predicate on `β`.
    pub fn has_non_returning<F>(&self, mut pred: F) -> bool
    where
        F: FnMut(&RtEntry) -> bool,
    {
        self.entries
            .iter()
            .any(|e| e.output.is_none() && pred(e))
    }
}

/// Status of a child task within a segment of the parent's run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum ChildStatus {
    /// Opened and not yet returned; `output` is the promised output state as
    /// a dense id into the exploration's symbolic-state arena (`None` = the
    /// chosen child run never returns).
    Active { output: Option<u32> },
    /// Returned within the current segment.
    Closed,
}

/// One flat transition of the product under construction: source control
/// state, sparse counter deltas as `(dim, amount)` pairs, target control
/// state.
type FlatTransition = (u32, Vec<(u32, i64)>, u32);

/// A control state of `V(T, β)`.
///
/// Symbolic states are held as dense ids into the exploration's
/// [`Interner`]-backed arena (equal states share an id, so id equality is
/// exactly the structural equality the former `SymState`-carrying
/// representation compared); children are a `Vec` kept sorted by [`TaskId`],
/// which preserves the iteration order and equality of the former
/// `BTreeMap` while making the whole control state a few words to clone and
/// hash.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
struct CState {
    /// Dense id of the symbolic state in the exploration's arena.
    sym: u32,
    q: BuchiState,
    /// Child statuses, sorted by task id.
    children: Vec<(TaskId, ChildStatus)>,
    /// Set when the task's own closing service has been applied (terminal).
    closed: bool,
    /// Index of the initial input state this control state originated from
    /// (keeps runs originating from different inputs separate, as the paper
    /// does by fixing `τ_in` per query).
    input_index: usize,
}

impl CState {
    /// The status of a child, if it has been opened in this segment.
    fn child_status(&self, child: TaskId) -> Option<ChildStatus> {
        self.children
            .binary_search_by_key(&child, |&(c, _)| c)
            .ok()
            .map(|i| self.children[i].1)
    }

    /// The child list with `child` set to `status`, preserving the sort.
    fn with_child(&self, child: TaskId, status: ChildStatus) -> Vec<(TaskId, ChildStatus)> {
        let mut children = self.children.clone();
        match children.binary_search_by_key(&child, |&(c, _)| c) {
            Ok(i) => children[i].1 = status,
            Err(i) => children.insert(i, (child, status)),
        }
        children
    }
}

/// Explores one `(T, β)` pair and contributes entries to `R_T`.
pub struct TaskVerifier<'a> {
    system: &'a ArtifactSystem,
    config: &'a VerifierConfig,
    ctx: &'a TaskContext,
    task: TaskId,
    beta: Vec<bool>,
    buchi: &'a Buchi<TaskProp>,
    /// The automaton compiled to bitset masks over `props` — what the hot
    /// letter-stepping loops consult instead of `buchi`.
    cbuchi: CompiledBuchi,
    props: Vec<TaskProp>,
    /// Snapshot of the completed child summaries this exploration reads.
    /// Owned (not borrowed) so the readiness scheduler can keep a verifier
    /// alive in shared state across its `init_queries` jobs while the
    /// published summary map keeps moving for other tasks.
    children: Arc<SummaryMap>,
    /// Child contexts (needed to transfer input patterns).
    child_contexts: &'a BTreeMap<TaskId, TaskContext>,
    /// Guards proven unsatisfiable by the static analyzer; the corresponding
    /// transitions are skipped during graph construction (empty when
    /// projection is disabled — see [`crate::VerifierConfig::projection`]).
    dead: &'a DeadServiceMap,
}

impl<'a> TaskVerifier<'a> {
    /// Creates the explorer for one `(T, β)`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        system: &'a ArtifactSystem,
        config: &'a VerifierConfig,
        ctx: &'a TaskContext,
        task: TaskId,
        beta: Vec<bool>,
        phi: &[Ltl<TaskProp>],
        buchi: &'a Buchi<TaskProp>,
        children: Arc<SummaryMap>,
        child_contexts: &'a BTreeMap<TaskId, TaskContext>,
        dead: &'a DeadServiceMap,
    ) -> Self {
        let mut props: Vec<TaskProp> = phi
            .iter()
            .flat_map(|f| f.propositions().into_iter())
            .collect();
        props.sort();
        props.dedup();
        let cbuchi = CompiledBuchi::new(buchi, &props);
        TaskVerifier {
            system,
            config,
            ctx,
            task,
            beta,
            buchi,
            cbuchi,
            props,
            children,
            child_contexts,
            dead,
        }
    }

    /// Whether the static analyzer proved the given internal service of this
    /// task unfireable (its pre- or post-condition is unsatisfiable).
    fn dead_internal(&self, service_idx: usize) -> bool {
        self.dead
            .get(&self.task)
            .is_some_and(|d| d.internal.get(service_idx).copied().unwrap_or(false))
    }

    fn schema(&self) -> &has_model::ArtifactSchema {
        &self.system.schema
    }

    fn no_arith(_: &has_arith::LinearConstraint<VarId>) -> Option<bool> {
        None
    }

    /// Three-valued satisfaction treating arithmetic atoms as undetermined;
    /// undetermined results are resolved optimistically (the verifier
    /// searches for violations, so "possibly satisfiable" transitions must be
    /// kept — see DESIGN.md §5 on the direction of this approximation).
    fn sat_optimistic(&self, state: &SymState, cond: &Condition) -> bool {
        state
            .satisfies(self.ctx, cond, &Self::no_arith)
            .unwrap_or(true)
    }

    // ------------------------------------------------------------------
    // Input-state enumeration
    // ------------------------------------------------------------------

    /// Enumerates the possible initial symbolic states of the task: every
    /// equality/binding pattern over the input variables (constrained by `Π`
    /// for the root task), with all other variables at their initial values.
    pub fn enumerate_inputs(&self) -> Vec<SymState> {
        let schema = self.schema();
        let t = schema.task(self.task);
        let constraint = if self.task == schema.root {
            self.system.precondition.clone()
        } else {
            Condition::True
        };
        let mut states = vec![SymState::blank(self.ctx, schema)];
        for &v in &t.input_vars {
            let mut next = Vec::new();
            for s in &states {
                match schema.variable(v).sort {
                    VarSort::Id => {
                        // null
                        next.push(s.clone());
                        // bound to each candidate relation, fresh
                        for &rel in self.ctx.bindings_for(v) {
                            let mut b = s.clone();
                            b.bind(self.ctx, v, Some(rel));
                            next.push(b);
                            // or equal to a previously assigned input variable
                            // with the same binding
                            for &w in &t.input_vars {
                                if w == v {
                                    break;
                                }
                                if s.binding_of(self.ctx, w) == Some(rel) {
                                    let mut e = s.clone();
                                    e.bind(self.ctx, v, Some(rel));
                                    if e
                                        .union(self.ctx, self.ctx.var_idx(v), self.ctx.var_idx(w))
                                        .is_ok()
                                    {
                                        next.push(e);
                                    }
                                }
                            }
                        }
                    }
                    VarSort::Numeric => {
                        // stays zero
                        next.push(s.clone());
                        // fresh value
                        let mut f = s.clone();
                        f.fresh_numeric(self.ctx, v);
                        next.push(f);
                        // equal to a constant of the universe
                        for (i, e) in self.ctx.exprs.iter().enumerate() {
                            if matches!(e, has_symbolic::Expr::Const(_)) {
                                let mut c = s.clone();
                                c.fresh_numeric(self.ctx, v);
                                if c.union(self.ctx, self.ctx.var_idx(v), i).is_ok() {
                                    next.push(c);
                                }
                            }
                        }
                        // equal to a previously assigned numeric input var
                        for &w in &t.input_vars {
                            if w == v {
                                break;
                            }
                            if schema.variable(w).sort == VarSort::Numeric {
                                let mut e = s.clone();
                                e.fresh_numeric(self.ctx, v);
                                if e
                                    .union(self.ctx, self.ctx.var_idx(v), self.ctx.var_idx(w))
                                    .is_ok()
                                {
                                    next.push(e);
                                }
                            }
                        }
                    }
                }
            }
            states = Self::dedup(next);
            if states.len() > self.config.max_successors {
                states.truncate(self.config.max_successors);
            }
        }
        states.retain(|s| self.sat_optimistic(s, &constraint));
        Self::dedup(states)
    }

    fn dedup(mut states: Vec<SymState>) -> Vec<SymState> {
        for s in &mut states {
            s.normalize();
        }
        states.sort();
        states.dedup();
        states
    }

    // ------------------------------------------------------------------
    // Successor enumeration for internal services
    // ------------------------------------------------------------------

    /// Enumerates the possible post-states of an internal service from
    /// `state`: input variables keep their pattern, every other variable is
    /// rewritten (restriction 1 of Section 6), constrained by the
    /// post-condition.
    fn enumerate_post_states(&self, state: &SymState, post: &Condition) -> Vec<SymState> {
        let schema = self.schema();
        let t = schema.task(self.task);
        let free_vars: Vec<VarId> = t
            .variables
            .iter()
            .copied()
            .filter(|v| !t.input_vars.contains(v))
            .collect();

        let mut base = SymState::blank(self.ctx, schema);
        base.adopt_vars(self.ctx, state, &t.input_vars);

        let mut states = vec![base];
        let mut remaining: std::collections::BTreeSet<VarId> = free_vars.iter().copied().collect();
        for &v in &free_vars {
            let mut next = Vec::new();
            for s in &states {
                next.extend(self.choices_for_var(s, v));
            }
            remaining.remove(&v);
            // Early pruning: drop states that already contradict the
            // post-condition on the atoms whose variables are all decided
            // (atoms touching variables not yet rewritten are left open).
            next.retain(|s| {
                s.satisfies_with_unknowns(self.ctx, post, &remaining, &Self::no_arith)
                    .unwrap_or(true)
            });
            states = Self::dedup(next);
            if states.len() > self.config.max_successors {
                states.truncate(self.config.max_successors);
            }
        }
        // Final filter plus the optional merge refinement over related pairs.
        let mut out = Vec::new();
        for s in states {
            for refined in self.merge_refinements(&s) {
                if self.sat_optimistic(&refined, post) {
                    out.push(refined);
                }
            }
        }
        let mut out = Self::dedup(out);
        if out.len() > self.config.max_successors {
            out.truncate(self.config.max_successors);
        }
        out
    }

    /// The candidate values of a single rewritten variable.
    fn choices_for_var(&self, state: &SymState, v: VarId) -> Vec<SymState> {
        let schema = self.schema();
        let mut out = Vec::new();
        match schema.variable(v).sort {
            VarSort::Id => {
                // null
                let mut n = state.clone();
                n.bind(self.ctx, v, None);
                out.push(n);
                for &rel in self.ctx.bindings_for(v) {
                    // fresh tuple of rel
                    let mut f = state.clone();
                    f.bind(self.ctx, v, Some(rel));
                    out.push(f.clone());
                    // or equal to an existing expression of sort Id(rel)
                    // related to v through the atom basis
                    for &cand in self.ctx.related_to(self.ctx.var_idx(v)) {
                        let mut e = f.clone();
                        if e.union(self.ctx, self.ctx.var_idx(v), cand).is_ok() {
                            out.push(e);
                        }
                    }
                }
            }
            VarSort::Numeric => {
                // zero
                let mut z = state.clone();
                z.fresh_numeric(self.ctx, v);
                let _ = z.union(self.ctx, self.ctx.var_idx(v), self.ctx.zero_idx);
                out.push(z);
                // fresh
                let mut f = state.clone();
                f.fresh_numeric(self.ctx, v);
                out.push(f.clone());
                // equal to a related expression (constants, navigations,
                // other numeric variables mentioned together in atoms)
                for &cand in self.ctx.related_to(self.ctx.var_idx(v)) {
                    let mut e = state.clone();
                    e.fresh_numeric(self.ctx, v);
                    if e.union(self.ctx, self.ctx.var_idx(v), cand).is_ok() {
                        out.push(e);
                    }
                }
            }
        }
        out
    }

    /// Optionally merges related expression pairs that are still distinct:
    /// this lets the enumeration produce "coincidental" equalities that the
    /// specification's atoms can observe (2^k branching over undecided
    /// related pairs, capped).
    fn merge_refinements(&self, state: &SymState) -> Vec<SymState> {
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for i in 0..self.ctx.len() {
            for &j in self.ctx.related_to(i) {
                if i < j && state.is_live(i) && state.is_live(j) && !state.eq(i, j) {
                    pairs.push((i, j));
                }
            }
        }
        pairs.truncate(self.config.max_merge_pairs);
        let mut out = vec![state.clone()];
        for (i, j) in pairs {
            // Append the merged variants in place: `dedup` sorts, so the
            // interleaving of originals and merged states is immaterial.
            let unmerged = out.len();
            for k in 0..unmerged {
                let mut m = out[k].clone();
                if m.union(self.ctx, i, j).is_ok() {
                    out.push(m);
                }
            }
            out = Self::dedup(out);
            if out.len() > self.config.max_successors {
                out.truncate(self.config.max_successors);
                break;
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Letters and Büchi stepping
    // ------------------------------------------------------------------

    /// The truth assignments ("letters") compatible with observing `service`
    /// in state `sym`, branching over propositions left undetermined by the
    /// abstraction (arithmetic atoms when cell tracking is disabled).
    ///
    /// A letter is a word-packed truth assignment over the canonical sorted
    /// proposition list `self.props` (bit `i` ⇔ `props[i]` holds; absent —
    /// i.e. truncated-unknown — propositions read as `false`, exactly as the
    /// former map representation defaulted missing entries). Letters are
    /// produced in enumeration-mask order with `unknown` bits assigned in
    /// proposition order, matching the former enumeration exactly.
    fn letters(
        &self,
        sym: &SymState,
        service: ServiceRef,
        child_choice: Option<(TaskId, &[bool])>,
    ) -> Vec<Box<[u64]>> {
        let mut base = vec![0u64; self.cbuchi.words()];
        let mut unknown: Vec<usize> = Vec::new();
        for (bit, p) in self.props.iter().enumerate() {
            let value = match p {
                TaskProp::Condition(c) => match sym.satisfies(self.ctx, c, &Self::no_arith) {
                    Some(b) => b,
                    None => {
                        unknown.push(bit);
                        false
                    }
                },
                TaskProp::Service(s) => *s == service,
                TaskProp::Child { child, phi_index } => match (child_choice, service) {
                    (Some((chosen, beta)), ServiceRef::Opening(opened))
                        if opened == *child && chosen == *child =>
                    {
                        beta.get(*phi_index).copied().unwrap_or(false)
                    }
                    _ => false,
                },
            };
            if value {
                base[bit / 64] |= 1u64 << (bit % 64);
            }
        }
        unknown.truncate(self.config.max_unknown_props);
        let mut letters = Vec::with_capacity(1 << unknown.len());
        for mask in 0..(1usize << unknown.len()) {
            let mut letter = base.clone();
            for (i, &bit) in unknown.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    letter[bit / 64] |= 1u64 << (bit % 64);
                }
            }
            letters.push(letter.into_boxed_slice());
        }
        letters
    }

    fn step_buchi(&self, q: Option<BuchiState>, letter: &[u64]) -> Vec<BuchiState> {
        match q {
            None => self.cbuchi.initial_successors(letter),
            Some(q) => self.cbuchi.step(q, letter),
        }
    }

    // ------------------------------------------------------------------
    // Cross-task transfer
    // ------------------------------------------------------------------

    /// Builds the child's initial symbolic state induced by opening it from
    /// the parent state `sym` (the paper's `τ'_in = f_in^{-1}(τ_i)` of
    /// Definition 18), and returns its input projection key.
    fn child_input(&self, sym: &SymState, child: TaskId) -> (SymState, ProjectionKey) {
        let schema = self.schema();
        let child_ctx = &self.child_contexts[&child];
        let child_task = schema.task(child);
        let mut state = SymState::blank(child_ctx, schema);
        // (parent_var -> child_var) correspondence for the pattern transfer.
        let map: Vec<(VarId, VarId)> = child_task
            .opening
            .input_map
            .iter()
            .map(|(cv, pv)| (*pv, *cv))
            .collect();
        // Numeric mapped variables must leave the zero class before the
        // transfer so that only the parent's equalities constrain them.
        for (_, cv) in &map {
            if schema.variable(*cv).sort == VarSort::Numeric {
                state.fresh_numeric(child_ctx, *cv);
            }
        }
        transfer_pattern(self.ctx, sym, child_ctx, &mut state, &map);
        let key = state.project_vars(child_ctx, &child_task.input_vars);
        (state, key)
    }

    /// Applies a child's return to the parent state (Definition 8's closing
    /// transition): numeric returned variables are overwritten, ID returned
    /// variables only if currently `null`; their new pattern follows the
    /// child's output state, including its relationships to the variables
    /// that were passed down on opening and to their navigations.
    fn apply_return(&self, sym: &SymState, child: TaskId, output: &SymState) -> SymState {
        let schema = self.schema();
        let child_ctx = &self.child_contexts[&child];
        let child_task = schema.task(child);
        let mut next = sym.clone();
        // Child variables visible to the parent after the return: the
        // overwritten returned variables plus the original inputs (whose
        // parent-side values are unchanged but whose pattern anchors the
        // returned values).
        let mut map: Vec<(VarId, VarId)> = Vec::new(); // (child_var, parent_var)
        for (pv, cv) in &child_task.closing.output_map {
            let overwrite = match schema.variable(*pv).sort {
                VarSort::Numeric => true,
                VarSort::Id => sym.is_null(self.ctx, *pv),
            };
            if overwrite {
                map.push((*cv, *pv));
            }
        }
        let written: Vec<VarId> = map.iter().map(|(_, pv)| *pv).collect();
        for (cv, pv) in &child_task.opening.input_map {
            map.push((*cv, *pv));
        }
        // Re-initialize the written numeric parent variables so the transfer
        // determines their pattern from scratch.
        for pv in &written {
            if schema.variable(*pv).sort == VarSort::Numeric {
                next.fresh_numeric(self.ctx, *pv);
            }
        }
        // The transfer re-binds the written parent variables; the input
        // parent variables keep their classes because transfer only *adds*
        // equalities among live expressions... except that `transfer_pattern`
        // rebinds every mapped destination variable, which would disturb the
        // parent's own pattern for the passed (input) variables. To avoid
        // that, the transfer is restricted to the written variables, and the
        // input variables participate only as sources of equalities checked
        // directly below.
        let written_map: Vec<(VarId, VarId)> = map
            .iter()
            .filter(|(_, pv)| written.contains(pv))
            .map(|(cv, pv)| (*cv, *pv))
            .collect();
        transfer_pattern(child_ctx, output, self.ctx, &mut next, &written_map);
        // Equalities between written parent variables (and their navigations)
        // and the *passed* parent variables (and theirs), as dictated by the
        // child's output pattern.
        let corresponding = |cv: VarId, pv: VarId| -> Vec<(usize, usize)> {
            // (child expr, parent expr) pairs anchored at (cv, pv).
            self.ctx
                .exprs
                .iter()
                .enumerate()
                .filter_map(|(pi, pe)| {
                    let ce = match pe {
                        has_symbolic::Expr::Var(v) if *v == pv => has_symbolic::Expr::Var(cv),
                        has_symbolic::Expr::Nav { var, rel, path } if *var == pv => {
                            has_symbolic::Expr::Nav {
                                var: cv,
                                rel: *rel,
                                path: path.clone(),
                            }
                        }
                        _ => return None,
                    };
                    child_ctx.index_of(&ce).map(|ci| (ci, pi))
                })
                .collect()
        };
        for (cv_w, pv_w) in &written_map {
            for (cv_in, pv_in) in &child_task.opening.input_map {
                for (cw, pw) in corresponding(*cv_w, *pv_w) {
                    for (ci, pi) in corresponding(*cv_in, *pv_in) {
                        if output.is_live(cw)
                            && output.is_live(ci)
                            && output.eq(cw, ci)
                            && next.is_live(pw)
                            && next.is_live(pi)
                            && !next.eq(pw, pi)
                        {
                            let _ = next.union(self.ctx, pw, pi);
                        }
                    }
                }
            }
        }
        next.normalize();
        next
    }

    /// Projects a closing state onto the given variables (the paper's
    /// `τ_out = τ|（x̄_in ∪ x̄_ret)`): a fresh state carrying only the
    /// equality/binding pattern of those variables.
    fn project_output(&self, state: &SymState, vars: &[VarId]) -> SymState {
        let schema = self.schema();
        let mut out = SymState::blank(self.ctx, schema);
        for &v in vars {
            if schema.variable(v).sort == VarSort::Numeric {
                out.fresh_numeric(self.ctx, v);
            }
        }
        let map: Vec<(VarId, VarId)> = vars.iter().map(|v| (*v, *v)).collect();
        transfer_pattern(self.ctx, state, self.ctx, &mut out, &map);
        out
    }

    // ------------------------------------------------------------------
    // Main exploration
    // ------------------------------------------------------------------

    /// Explores `V(T, β)` and returns the contributed `R_T` entries together
    /// with exploration statistics.
    ///
    /// This is the sequential composition of the two independently callable
    /// phases the parallel engine schedules separately:
    /// [`TaskVerifier::build_graph`] (one job per `(T, β)`) followed by
    /// [`TaskVerifier::init_queries`] for every initial state (one job per
    /// `(T, β, τ_in)`), reduced in initial-state order by
    /// [`TaskVerifier::reduce_queries`].
    pub fn explore(&self) -> (Vec<RtEntry>, Stats) {
        let graph = self.build_graph();
        let per_init: Vec<(Vec<RtEntry>, QueryCost)> = if self.config.shared_km {
            let mut shared = self.prepare_shared(&graph);
            (0..graph.initial_count())
                .map(|pos| self.init_queries_shared(&graph, pos, &mut shared))
                .collect()
        } else {
            (0..graph.initial_count())
                .map(|pos| self.init_queries(&graph, pos))
                .collect()
        };
        Self::reduce_queries(&graph, per_init)
    }

    /// Builds the control-state graph and VASS of `V(T, β)` — the forward
    /// exploration half of [`TaskVerifier::explore`]; the Lemma 21 queries
    /// over the result are issued separately per initial state through
    /// [`TaskVerifier::init_queries`].
    pub fn build_graph(&self) -> ExploredGraph {
        let schema = self.schema();
        let t = schema.task(self.task);
        let mut stats = Stats {
            task_assignments: 1,
            buchi_states: self.buchi.state_count(),
            ..Stats::default()
        };

        let inputs = self.enumerate_inputs();
        // Dense arenas: symbolic states and control states are interned once
        // into insertion-ordered ids ([`Interner`]); all hot-loop identity
        // checks compare ids. Ids are assigned in worklist discovery order —
        // the same order the former `BTreeMap<CState, usize>` assigned them —
        // which is the canonical order of DESIGN.md §5.6/§5.8.
        let mut syms: Interner<SymState> = Interner::new();
        let mut cstates: Interner<CState> = Interner::new();
        // Counter dimensions in first-encounter order; the map is
        // lookup-only (never iterated), so deterministic hashing suffices.
        let mut counter_dims: FxHashMap<ProjectionKey, usize> = FxHashMap::default();
        // Transitions: (from, delta as sparse (dim, amount) pairs, to). A
        // service contributes at most one insert and one retrieve, so a flat
        // two-entry vector replaces the former per-transition `BTreeMap`.
        let mut transitions: Vec<FlatTransition> = Vec::new();
        let mut initial_states: Vec<usize> = Vec::new();
        let mut input_keys: Vec<ProjectionKey> = Vec::new();
        // Witness retention: one rendered step label per transition (and per
        // VASS action, since actions are created in transition order). Gated
        // so the no-witness hot path allocates nothing here.
        let retain = self.config.witnesses;
        let mut labels: Vec<WitnessStep> = Vec::new();

        // Accumulates a counter bump into the sparse delta.
        let bump = |delta: &mut Vec<(u32, i64)>, dim: usize, amount: i64| {
            let dim = dim as u32;
            match delta.iter_mut().find(|(d, _)| *d == dim) {
                Some((_, a)) => *a += amount,
                None => delta.push((dim, amount)),
            }
        };

        // Initial states: step the Büchi automaton on the opening letter.
        for (input_index, input) in inputs.iter().enumerate() {
            input_keys.push(input.project_vars(self.ctx, &t.input_vars));
            let sym_id = syms.intern(input.clone()).0;
            for letter in self.letters(input, ServiceRef::Opening(self.task), None) {
                for q in self.step_buchi(None, &letter) {
                    let c = CState {
                        sym: sym_id,
                        q,
                        children: Vec::new(),
                        closed: false,
                        input_index,
                    };
                    let (id, newly) = cstates.intern(c);
                    if newly {
                        initial_states.push(id as usize);
                    }
                }
            }
        }

        // Forward exploration of the control-state graph (counter validity is
        // decided later by the coverability queries). A state enters the
        // worklist exactly when it is newly interned (every enqueued state
        // is interned at creation, so "newly interned" ⇔ the former
        // `seen_in_worklist` insert succeeding); terminal `closed` states
        // are interned but never enqueued.
        let mut worklist: VecDeque<u32> = initial_states.iter().map(|&i| i as u32).collect();
        let ts_vars: Vec<VarId> = {
            let mut v: Vec<VarId> = t.input_vars.clone();
            if let Some(ar) = &t.artifact_relation {
                v.extend(ar.tuple.iter().copied());
            }
            v.sort();
            v.dedup();
            v
        };

        // Post-state enumeration is the expensive step and depends only on
        // the symbolic state and the service, not on the Büchi/children
        // components of the control state: memoize it, keyed by dense sym
        // id (id equality is structural equality within the arena).
        let mut post_cache: FxHashMap<(u32, usize), Vec<u32>> = FxHashMap::default();
        while let Some(id) = worklist.pop_front() {
            if cstates.len() > self.config.max_control_states {
                break;
            }
            let current = cstates.get(id).clone();
            if current.closed {
                continue;
            }
            let has_active_children = current
                .children
                .iter()
                .any(|(_, c)| matches!(c, ChildStatus::Active { .. }));

            // --- Internal services -------------------------------------
            if !has_active_children {
                for (service_idx, service) in t.internal_services.iter().enumerate() {
                    if self.dead_internal(service_idx)
                        || !self.sat_optimistic(syms.get(current.sym), &service.pre)
                    {
                        continue;
                    }
                    let cache_key = (current.sym, service_idx);
                    let posts: Vec<u32> = match post_cache.get(&cache_key) {
                        Some(ids) => ids.clone(),
                        None => {
                            let list = self
                                .enumerate_post_states(syms.get(current.sym), &service.post);
                            let ids: Vec<u32> =
                                list.into_iter().map(|s| syms.intern(s).0).collect();
                            post_cache.insert(cache_key, ids.clone());
                            ids
                        }
                    };
                    for post_id in posts {
                        // Counter update (Definition 17's a̅ vector).
                        let mut delta: Vec<(u32, i64)> = Vec::new();
                        if t.artifact_relation.is_some() {
                            if service.delta.inserts() {
                                let key =
                                    syms.get(current.sym).project_vars(self.ctx, &ts_vars);
                                let dims = counter_dims.len();
                                let dim = *counter_dims.entry(key).or_insert(dims);
                                bump(&mut delta, dim, 1);
                            }
                            if service.delta.retrieves() {
                                let key = syms.get(post_id).project_vars(self.ctx, &ts_vars);
                                let dims = counter_dims.len();
                                let dim = *counter_dims.entry(key).or_insert(dims);
                                bump(&mut delta, dim, -1);
                            }
                        }
                        let sref = ServiceRef::Internal(self.task, service_idx);
                        for letter in self.letters(syms.get(post_id), sref, None) {
                            for q in self.step_buchi(Some(current.q), &letter) {
                                let next = CState {
                                    sym: post_id,
                                    q,
                                    children: Vec::new(),
                                    closed: false,
                                    input_index: current.input_index,
                                };
                                let (nid, newly) = cstates.intern(next);
                                transitions.push((id, delta.clone(), nid));
                                if retain {
                                    labels.push(WitnessStep::Internal {
                                        service: service.name.clone(),
                                    });
                                }
                                if newly {
                                    worklist.push_back(nid);
                                }
                            }
                        }
                    }
                }
            }

            // --- Opening a child ----------------------------------------
            for &child in &t.children {
                if current.child_status(child).is_some() {
                    continue;
                }
                if self.dead.get(&child).is_some_and(|d| d.opening) {
                    continue;
                }
                let opening_pre = &schema.task(child).opening.pre;
                if !self.sat_optimistic(syms.get(current.sym), opening_pre) {
                    continue;
                }
                let (_, child_key) = self.child_input(syms.get(current.sym), child);
                let summary = &self.children[&child];
                for entry in summary.matching(&child_key) {
                    let out_id = entry.output.as_ref().map(|s| syms.intern(s.clone()).0);
                    let sref = ServiceRef::Opening(child);
                    for letter in
                        self.letters(syms.get(current.sym), sref, Some((child, &entry.beta)))
                    {
                        for q in self.step_buchi(Some(current.q), &letter) {
                            let next = CState {
                                sym: current.sym,
                                q,
                                children: current
                                    .with_child(child, ChildStatus::Active { output: out_id }),
                                closed: false,
                                input_index: current.input_index,
                            };
                            let (nid, newly) = cstates.intern(next);
                            transitions.push((id, Vec::new(), nid));
                            if retain {
                                labels.push(WitnessStep::OpenChild {
                                    child,
                                    child_name: schema.task(child).name.clone(),
                                    beta: entry.beta.clone(),
                                    input_key: child_key.clone(),
                                    output: entry.output.clone(),
                                });
                            }
                            if newly {
                                worklist.push_back(nid);
                            }
                        }
                    }
                }
            }

            // --- Closing a child ----------------------------------------
            for &(child, status) in &current.children {
                let ChildStatus::Active { output: Some(out) } = status else {
                    continue;
                };
                let new_sym =
                    self.apply_return(syms.get(current.sym), child, syms.get(out));
                let sref = ServiceRef::Closing(child);
                let letters = self.letters(&new_sym, sref, None);
                let new_sym_id = syms.intern(new_sym).0;
                for letter in letters {
                    for q in self.step_buchi(Some(current.q), &letter) {
                        let next = CState {
                            sym: new_sym_id,
                            q,
                            children: current.with_child(child, ChildStatus::Closed),
                            closed: false,
                            input_index: current.input_index,
                        };
                        let (nid, newly) = cstates.intern(next);
                        transitions.push((id, Vec::new(), nid));
                        if retain {
                            labels.push(WitnessStep::CloseChild {
                                child,
                                child_name: schema.task(child).name.clone(),
                            });
                        }
                        if newly {
                            worklist.push_back(nid);
                        }
                    }
                }
            }

            // --- Closing the task itself --------------------------------
            if self.task != schema.root
                && !has_active_children
                && !self.dead.get(&self.task).is_some_and(|d| d.closing)
                && self.sat_optimistic(syms.get(current.sym), &t.closing.pre)
            {
                let sref = ServiceRef::Closing(self.task);
                for letter in self.letters(syms.get(current.sym), sref, None) {
                    for q in self.step_buchi(Some(current.q), &letter) {
                        let next = CState {
                            sym: current.sym,
                            q,
                            children: current.children.clone(),
                            closed: true,
                            input_index: current.input_index,
                        };
                        let (nid, _) = cstates.intern(next);
                        transitions.push((id, Vec::new(), nid));
                        if retain {
                            labels.push(WitnessStep::CloseTask);
                        }
                        // Closed states have no successors; no need to enqueue.
                    }
                }
            }
        }

        let states = cstates.into_items();
        let syms = syms.into_items();
        stats.control_states = states.len();
        stats.transitions = transitions.len();
        stats.counter_dimensions = counter_dims.len();

        // ----------------------------------------------------------------
        // Build the VASS and answer the Lemma 21 queries per initial state.
        // ----------------------------------------------------------------
        let dim = counter_dims.len();
        let mut vass = Vass::new(states.len(), dim);
        for (from, delta, to) in &transitions {
            let mut d = vec![0i64; dim];
            for &(k, v) in delta {
                d[k as usize] = v;
            }
            vass.add_action(*from as usize, d, *to as usize);
        }

        let mut accepting = BitSet::new(states.len());
        for (i, s) in states.iter().enumerate() {
            if !s.closed && self.cbuchi.is_accepting(s.q) {
                accepting.insert(i);
            }
        }

        // The variables a parent can observe in a returning run's output
        // (the paper's τ_out projection target).
        let out_vars: Vec<VarId> = {
            let mut v = t.input_vars.clone();
            v.extend(schema.task(self.task).return_vars());
            v.sort();
            v.dedup();
            v
        };

        ExploredGraph {
            states,
            syms,
            vass,
            initial_states,
            input_keys,
            accepting,
            out_vars,
            stats,
            labels,
        }
    }

    /// Answers the three Lemma 21 queries for the `pos`-th initial state of a
    /// built graph, returning the candidate `R_T` entries **in deterministic
    /// push order** (returning entries in coverability-node order, then the
    /// blocking entry, then the lasso entry) together with the number of
    /// Karp–Miller nodes this query explored.
    ///
    /// Candidates are *not* deduplicated against other initial states here —
    /// that happens in [`TaskVerifier::reduce_queries`], which must run over
    /// initial states in order. Queries for distinct initial states only read
    /// the graph, so the parallel engine runs them concurrently.
    ///
    /// With [`crate::VerifierConfig::projection`] on, the query's VASS is
    /// first projected onto its dimension cone of influence
    /// ([`has_analysis::dimension_cone`]) — an exact reduction: counter
    /// dimensions that cannot block any run from *this* initial state are
    /// dropped (and actions proven unfireable are disabled) before the
    /// Karp–Miller construction, which is the step whose cost explodes with
    /// the dimension. Action indices are preserved by the projection, so
    /// witness paths keep indexing into `graph.labels`.
    pub fn init_queries(&self, graph: &ExploredGraph, pos: usize) -> (Vec<RtEntry>, QueryCost) {
        let init = graph.initial_states[pos];
        let states = &graph.states;
        let input_key = graph.input_keys[states[init].input_index].clone();
        let mut cost = QueryCost {
            dims_before: graph.vass.dim,
            dims_after: graph.vass.dim,
            ..QueryCost::default()
        };
        let projected: Option<Vass> = if self.config.projection {
            let cone = dimension_cone(&graph.vass, init);
            cost.dims_after = cone.dims_after();
            (!cone.is_trivial()).then(|| cone.project(&graph.vass))
        } else {
            None
        };
        let vass = projected.as_ref().unwrap_or(&graph.vass);
        let mut candidates: Vec<RtEntry> = Vec::new();
        let finite_ok = |s: &CState| self.cbuchi.is_finite_accepting(s.q);

        // Query pre-solver (DESIGN.md §5.11): static refutation filters over
        // the (projected) VASS, run before any Karp–Miller construction. The
        // three target sets below are exactly what the scans after the build
        // look for, so a refuted sub-query's scan would find nothing — the
        // capped build under-approximates coverability, which is why skipping
        // refuted work is verdict- and witness-identical (only the cost
        // statistics change).
        let presolved = self.config.presolve.then(|| {
            let mut returning = vec![false; states.len()];
            let mut blocking = vec![false; states.len()];
            let lasso: Vec<bool> = (0..states.len())
                .map(|q| graph.accepting.contains(q))
                .collect();
            for (q, cs) in states.iter().enumerate() {
                if !finite_ok(cs) {
                    continue;
                }
                if cs.closed {
                    returning[q] = true;
                } else {
                    blocking[q] = cs
                        .children
                        .iter()
                        .any(|(_, c)| matches!(c, ChildStatus::Active { output: None }));
                }
            }
            let pre = presolve_query(vass, init, &returning, &blocking, &lasso);
            cost.presolve.record(&pre);
            pre
        });
        if presolved.as_ref().is_some_and(|pre| pre.skip_build()) {
            // All three sub-queries statically refuted: no entry can exist
            // for this initial state, so no graph is built at all.
            return (candidates, cost);
        }
        let bounded: &[bool] = presolved
            .as_ref()
            .map_or(&[], |pre| pre.bounded_dims.as_slice());
        let cover = CoverabilityGraph::build_capped_with_bounds(
            vass,
            init,
            self.config.km_node_cap,
            bounded,
        );
        let skip = |refuted: Option<has_analysis::Refutation>| refuted.is_some();
        let (skip_returning, skip_blocking, skip_lasso) = presolved.as_ref().map_or(
            (false, false, false),
            |pre| (skip(pre.returning), skip(pre.blocking), skip(pre.lasso)),
        );

        // Witness retention: the run realization of a candidate is the label
        // sequence of its Karp–Miller path (actions and transitions share
        // indices, so a path's action list indexes straight into the labels
        // recorded by `build_graph`).
        let retain = self.config.witnesses;
        let steps_to = |node: usize| -> Vec<WitnessStep> {
            cover
                .path_to_node(node)
                .into_iter()
                .map(|action| graph.labels[action].clone())
                .collect()
        };
        let point_details = |node: usize| -> Option<Arc<EntryDetails>> {
            retain.then(|| {
                Arc::new(EntryDetails {
                    prefix: steps_to(node),
                    cycle: Vec::new(),
                    cycle_truncated: false,
                })
            })
        };

        // Returning paths. The recorded output is the closing state
        // projected onto the variables the parent can observe (the input
        // and return variables) — the paper's τ_out — which also keeps
        // the number of distinct R_T entries small.
        for (node_id, node) in cover.nodes().enumerate() {
            if skip_returning {
                break;
            }
            let cs = &states[node.state];
            if cs.closed && finite_ok(cs) {
                let projected =
                    self.project_output(&graph.syms[cs.sym as usize], &graph.out_vars);
                candidates.push(RtEntry {
                    input_key: input_key.clone(),
                    output: Some(projected),
                    beta: self.beta.clone(),
                    witness: NonReturningWitness::default(),
                    details: point_details(node_id),
                });
            }
        }
        // Blocking paths: a child was opened with a never-returning run.
        for (node_id, node) in cover.nodes().enumerate() {
            if skip_blocking {
                break;
            }
            let cs = &states[node.state];
            let blocking_child = cs
                .children
                .iter()
                .any(|(_, c)| matches!(c, ChildStatus::Active { output: None }));
            if !cs.closed && blocking_child && finite_ok(cs) {
                candidates.push(RtEntry {
                    input_key: input_key.clone(),
                    output: None,
                    beta: self.beta.clone(),
                    witness: NonReturningWitness {
                        blocking: true,
                        lasso: false,
                    },
                    details: point_details(node_id),
                });
                break;
            }
        }
        // Lasso paths — decided exactly; no cycle-length bound applies
        // (the former `lasso_cycle_bound` config under-approximated this
        // query and could miss violations). With retention on, the decision
        // and the pump-cycle materialization come from one pipeline run
        // (`nonneg_cycle_search_through_pred`): the walk's actions label the
        // cycle, the Karp–Miller path to its start node labels the prefix;
        // a walk past the materialization cap truncates the rendering only,
        // never the decision.
        if graph.accepting.any() && !skip_lasso {
            let accepting = |s: usize| graph.accepting.contains(s);
            let (lasso, details) = if retain {
                match cover.nonneg_cycle_search_through_pred(
                    vass,
                    &accepting,
                    WITNESS_CYCLE_CAP,
                ) {
                    CycleSearch::None => (false, None),
                    CycleSearch::Witness(walk) => (
                        true,
                        Some(Arc::new(EntryDetails {
                            prefix: steps_to(walk[0].0),
                            cycle: walk
                                .iter()
                                .map(|&(_, action, _)| graph.labels[action].clone())
                                .collect(),
                            cycle_truncated: false,
                        })),
                    ),
                    CycleSearch::ExceedsCap => (
                        true,
                        Some(Arc::new(EntryDetails {
                            prefix: Vec::new(),
                            cycle: Vec::new(),
                            cycle_truncated: true,
                        })),
                    ),
                }
            } else {
                (cover.nonneg_cycle_through_pred(vass, &accepting), None)
            };
            if lasso {
                candidates.push(RtEntry {
                    input_key,
                    output: None,
                    beta: self.beta.clone(),
                    witness: NonReturningWitness {
                        blocking: false,
                        lasso: true,
                    },
                    details,
                });
            }
        }
        cost.km_nodes = cover.node_count();
        (candidates, cost)
    }

    /// Builds the shared query state of one `(T, β)` pair for
    /// [`VerifierConfig::shared_km`] mode (DESIGN.md §5.12): the pair-level
    /// projected VASS every `τ_in` query runs on — the *union* dimension
    /// cone over all of the pair's initial states, so interned markings
    /// stay comparable across queries — and the incremental
    /// [`SharedCoverability`] arena those queries extend in initial-state
    /// order.
    pub fn prepare_shared(&self, graph: &ExploredGraph) -> PairShared {
        let (vass, dims_after) = if self.config.projection {
            let cone = dimension_cone_multi(&graph.vass, &graph.initial_states);
            (
                (!cone.is_trivial()).then(|| cone.project(&graph.vass)),
                cone.dims_after(),
            )
        } else {
            (None, graph.vass.dim)
        };
        let arena = SharedCoverability::new(vass.as_ref().unwrap_or(&graph.vass));
        PairShared { vass, dims_after, arena }
    }

    /// The shared-arena counterpart of [`TaskVerifier::init_queries`]: one
    /// `(T, β, τ_in)` Lemma 21 query extending the pair's incremental
    /// arena instead of building a Karp–Miller graph from scratch. Callers
    /// **must** invoke it in initial-state order on one [`PairShared`] —
    /// the arena's evolution is part of the determinism contract.
    ///
    /// The returning and blocking scans run over the query's visit order
    /// (every visited control state is genuinely coverable — arrival
    /// pruning only skips markings covered by an already-visited one, and
    /// saturation preserves the coverable state *set*, so the candidate
    /// entry set matches the from-scratch scan's). The lasso decision is
    /// tiered: a non-negative cycle over *real* edges is sound evidence;
    /// failing that, no cycle over the jump-augmented edge relation
    /// refutes the lasso outright; in the remaining gap — a cycle that
    /// exists only through unjustified jump targets — one from-scratch
    /// build (counted into `km_nodes`) decides exactly as unshared mode
    /// would.
    pub fn init_queries_shared(
        &self,
        graph: &ExploredGraph,
        pos: usize,
        shared: &mut PairShared,
    ) -> (Vec<RtEntry>, QueryCost) {
        let init = graph.initial_states[pos];
        let states = &graph.states;
        let input_key = graph.input_keys[states[init].input_index].clone();
        let mut cost = QueryCost {
            dims_before: graph.vass.dim,
            dims_after: shared.dims_after,
            ..QueryCost::default()
        };
        let vass = shared.vass.as_ref().unwrap_or(&graph.vass);
        let mut candidates: Vec<RtEntry> = Vec::new();
        let finite_ok = |s: &CState| self.cbuchi.is_finite_accepting(s.q);

        // The pre-solver runs per initial state on the pair-level VASS —
        // same filters as unshared mode, only the projection differs (the
        // union cone instead of the per-init cone).
        let presolved = self.config.presolve.then(|| {
            let mut returning = vec![false; states.len()];
            let mut blocking = vec![false; states.len()];
            let lasso: Vec<bool> = (0..states.len())
                .map(|q| graph.accepting.contains(q))
                .collect();
            for (q, cs) in states.iter().enumerate() {
                if !finite_ok(cs) {
                    continue;
                }
                if cs.closed {
                    returning[q] = true;
                } else {
                    blocking[q] = cs
                        .children
                        .iter()
                        .any(|(_, c)| matches!(c, ChildStatus::Active { output: None }));
                }
            }
            let pre = presolve_query(vass, init, &returning, &blocking, &lasso);
            cost.presolve.record(&pre);
            pre
        });
        if presolved.as_ref().is_some_and(|pre| pre.skip_build()) {
            return (candidates, cost);
        }
        let bounded: &[bool] = presolved
            .as_ref()
            .map_or(&[], |pre| pre.bounded_dims.as_slice());
        // Boundedness certificates become *standing* constraints: fresh
        // arena expansions skip ω-acceleration of certified dimensions for
        // this and every later query of the pair (certificates come from
        // the same pair-level VASS every time, so they compose).
        let run = shared
            .arena
            .query(vass, init, self.config.km_node_cap, bounded);
        let skip = |refuted: Option<has_analysis::Refutation>| refuted.is_some();
        let (skip_returning, skip_blocking, skip_lasso) = presolved.as_ref().map_or(
            (false, false, false),
            |pre| (skip(pre.returning), skip(pre.blocking), skip(pre.lasso)),
        );

        let retain = self.config.witnesses;
        let steps_to = |vidx: usize| -> Vec<WitnessStep> {
            run.path_to_node(vidx)
                .into_iter()
                .map(|action| graph.labels[action].clone())
                .collect()
        };
        let point_details = |vidx: usize| -> Option<Arc<EntryDetails>> {
            retain.then(|| {
                Arc::new(EntryDetails {
                    prefix: steps_to(vidx),
                    cycle: Vec::new(),
                    cycle_truncated: false,
                })
            })
        };

        // Returning paths, over the visit order.
        for (vidx, state) in run.states().enumerate() {
            if skip_returning {
                break;
            }
            let cs = &states[state];
            if cs.closed && finite_ok(cs) {
                let projected =
                    self.project_output(&graph.syms[cs.sym as usize], &graph.out_vars);
                candidates.push(RtEntry {
                    input_key: input_key.clone(),
                    output: Some(projected),
                    beta: self.beta.clone(),
                    witness: NonReturningWitness::default(),
                    details: point_details(vidx),
                });
            }
        }
        // Blocking paths.
        for (vidx, state) in run.states().enumerate() {
            if skip_blocking {
                break;
            }
            let cs = &states[state];
            let blocking_child = cs
                .children
                .iter()
                .any(|(_, c)| matches!(c, ChildStatus::Active { output: None }));
            if !cs.closed && blocking_child && finite_ok(cs) {
                candidates.push(RtEntry {
                    input_key: input_key.clone(),
                    output: None,
                    beta: self.beta.clone(),
                    witness: NonReturningWitness {
                        blocking: true,
                        lasso: false,
                    },
                    details: point_details(vidx),
                });
                break;
            }
        }
        // Lasso paths — the tiered decision described above.
        if graph.accepting.any() && !skip_lasso {
            let accepting = |s: usize| graph.accepting.contains(s);
            let (mut lasso, mut details) = if retain {
                match run.nonneg_cycle_search_through_pred(
                    vass,
                    &accepting,
                    WITNESS_CYCLE_CAP,
                ) {
                    CycleSearch::None => (false, None),
                    CycleSearch::Witness(walk) => (
                        true,
                        Some(Arc::new(EntryDetails {
                            prefix: steps_to(walk[0].0),
                            cycle: walk
                                .iter()
                                .map(|&(_, action, _)| graph.labels[action].clone())
                                .collect(),
                            cycle_truncated: false,
                        })),
                    ),
                    CycleSearch::ExceedsCap => (
                        true,
                        Some(Arc::new(EntryDetails {
                            prefix: Vec::new(),
                            cycle: Vec::new(),
                            cycle_truncated: true,
                        })),
                    ),
                }
            } else {
                (run.nonneg_cycle_through_pred(vass, &accepting), None)
            };
            if !lasso && run.augmented_nonneg_cycle_through_pred(vass, &accepting) {
                // Ambiguous: a cycle exists only through jump edges, whose
                // targets over-approximate. One from-scratch build decides;
                // its nodes are charged to this query's cost.
                let cover = CoverabilityGraph::build_capped_with_bounds(
                    vass,
                    init,
                    self.config.km_node_cap,
                    bounded,
                );
                cost.km_nodes += cover.node_count();
                let fallback_steps = |node: usize| -> Vec<WitnessStep> {
                    cover
                        .path_to_node(node)
                        .into_iter()
                        .map(|action| graph.labels[action].clone())
                        .collect()
                };
                let (l, d) = if retain {
                    match cover.nonneg_cycle_search_through_pred(
                        vass,
                        &accepting,
                        WITNESS_CYCLE_CAP,
                    ) {
                        CycleSearch::None => (false, None),
                        CycleSearch::Witness(walk) => (
                            true,
                            Some(Arc::new(EntryDetails {
                                prefix: fallback_steps(walk[0].0),
                                cycle: walk
                                    .iter()
                                    .map(|&(_, action, _)| graph.labels[action].clone())
                                    .collect(),
                                cycle_truncated: false,
                            })),
                        ),
                        CycleSearch::ExceedsCap => (
                            true,
                            Some(Arc::new(EntryDetails {
                                prefix: Vec::new(),
                                cycle: Vec::new(),
                                cycle_truncated: true,
                            })),
                        ),
                    }
                } else {
                    (cover.nonneg_cycle_through_pred(vass, &accepting), None)
                };
                lasso = l;
                details = d;
            }
            if lasso {
                candidates.push(RtEntry {
                    input_key,
                    output: None,
                    beta: self.beta.clone(),
                    witness: NonReturningWitness {
                        blocking: false,
                        lasso: true,
                    },
                    details,
                });
            }
        }
        cost.km_nodes += run.node_count();
        cost.km_reused = run.reused;
        cost.km_subsumed = run.subsumed;
        (candidates, cost)
    }

    /// Combines per-initial-state query results — which **must** be supplied
    /// in initial-state order — into the `(T, β)` pair's final entry list and
    /// statistics, deduplicating candidates exactly as the sequential
    /// exploration does: candidates for the same `(τ_in, τ_out, β)` tuple
    /// collapse into one entry whose [`NonReturningWitness`] accumulates
    /// every path kind witnessed for it.
    ///
    /// Retained details follow the kind the verifier will *report* for the
    /// entry (lasso is preferred over blocking when both are witnessed): the
    /// first lasso candidate's details win over a blocking candidate's;
    /// otherwise the first candidate in canonical order keeps its details.
    /// Because this reduction runs over the canonical candidate order in
    /// both engines, the surviving details — and hence the reconstructed
    /// counterexample — are identical at every thread count.
    pub fn reduce_queries(
        graph: &ExploredGraph,
        per_init: impl IntoIterator<Item = (Vec<RtEntry>, QueryCost)>,
    ) -> (Vec<RtEntry>, Stats) {
        let mut stats = graph.stats.clone();
        let mut entries: Vec<RtEntry> = Vec::new();
        for (candidates, cost) in per_init {
            stats.coverability_nodes += cost.km_nodes;
            stats.counter_dims_before += cost.dims_before;
            stats.counter_dims_after += cost.dims_after;
            stats.presolve.absorb(&cost.presolve);
            stats.km_reused += cost.km_reused;
            stats.km_subsumed += cost.km_subsumed;
            for e in candidates {
                match entries.iter_mut().find(|kept| kept.same_tuple(&e)) {
                    Some(kept) => {
                        let had_lasso = kept.witness.lasso;
                        kept.witness.merge(e.witness);
                        if (!had_lasso && e.witness.lasso) || kept.details.is_none() {
                            kept.details = e.details;
                        }
                    }
                    None => entries.push(e),
                }
            }
        }
        stats.rt_entries = entries.len();
        (entries, stats)
    }
}

/// The immutable artifacts of one `(T, β)` forward exploration: the control
/// states and VASS of `V(T, β)`, its initial states with their input
/// projection keys, the accepting set, and the statistics accumulated while
/// building them (`coverability_nodes` and `rt_entries` are contributed later
/// by the query phase).
///
/// Produced by [`TaskVerifier::build_graph`] and consumed read-only by
/// [`TaskVerifier::init_queries`], which is what lets the engine fan the
/// per-initial-state Lemma 21 queries out across workers.
pub struct ExploredGraph {
    states: Vec<CState>,
    /// Arena of distinct symbolic states, indexed by the dense ids held in
    /// [`CState::sym`] and [`ChildStatus::Active`].
    syms: Vec<SymState>,
    vass: Vass,
    initial_states: Vec<usize>,
    input_keys: Vec<ProjectionKey>,
    accepting: BitSet,
    out_vars: Vec<VarId>,
    stats: Stats,
    /// One rendered step per transition/VASS action, in creation order —
    /// empty unless [`VerifierConfig::witnesses`] retained them.
    labels: Vec<WitnessStep>,
}

impl ExploredGraph {
    /// Number of initial states — one [`TaskVerifier::init_queries`] job per
    /// position `0..initial_count()`.
    pub fn initial_count(&self) -> usize {
        self.initial_states.len()
    }
}

/// The shared query state of one `(T, β)` pair in
/// [`VerifierConfig::shared_km`] mode (DESIGN.md §5.12), produced by
/// [`TaskVerifier::prepare_shared`] and threaded mutably through the
/// pair's [`TaskVerifier::init_queries_shared`] calls in initial-state
/// order.
pub struct PairShared {
    /// The union-cone-projected pair VASS (`None` when projection is off
    /// or the cone is trivial: queries run on the unprojected
    /// [`ExploredGraph::vass`] directly).
    vass: Option<Vass>,
    /// The union cone's dimension count (the `dims_after` every query of
    /// the pair reports).
    dims_after: usize,
    /// The incremental coverability arena all queries extend.
    arena: SharedCoverability,
}
