//! Verification outcomes, witnesses and statistics.
//!
//! When witness reconstruction is enabled
//! ([`VerifierConfig::witnesses`](crate::verifier::VerifierConfig::witnesses)),
//! a violation carries a [`WitnessNode`] tree: the violating root run
//! (prefix + pump cycle or blocking point) with one nested node per child
//! call on the run, down to the task where the violation actually
//! originates. DESIGN.md §5.7 describes the reconstruction and how the
//! chosen counterexample stays byte-identical at every thread count.

use has_analysis::PresolveStats;
use has_model::TaskId;
use has_symbolic::{ProjectionKey, SymState};
use std::fmt;

/// How the reported violation manifests at the root task (the three path
/// kinds of Lemma 21).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// The root task has an infinite local run (a lasso in `V(T1, β)`).
    Lasso,
    /// The root task blocks forever on a child that never returns.
    Blocking,
    /// A returning path (only possible for non-root tasks; reported when a
    /// sub-call witnesses the violation).
    Returning,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::Lasso => "infinite (lasso) run",
            ViolationKind::Blocking => "blocking run",
            ViolationKind::Returning => "returning run",
        };
        f.write_str(s)
    }
}

/// One step of a reconstructed symbolic run, with the names needed to render
/// it without access to the schema.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WitnessStep {
    /// An internal service of the task fired.
    Internal {
        /// Name of the service.
        service: String,
    },
    /// A child task was opened, choosing one tuple of its `R_T` relation
    /// (the paper's Definition 18: the parent guesses the child run's input
    /// type, output type and truth assignment). The recorded choice is what
    /// lets witness reconstruction descend into the child's own run.
    OpenChild {
        /// The opened child task.
        child: TaskId,
        /// Its name.
        child_name: String,
        /// The chosen truth assignment over `Φ_child`.
        beta: Vec<bool>,
        /// The child-side input isomorphism-type key induced by the opening.
        input_key: ProjectionKey,
        /// The promised output state (`None` = a never-returning child run:
        /// the parent blocks on this call forever).
        output: Option<SymState>,
    },
    /// A previously opened child returned.
    CloseChild {
        /// The returning child task.
        child: TaskId,
        /// Its name.
        child_name: String,
    },
    /// The task applied its own closing service (returning runs only).
    CloseTask,
}

impl WitnessStep {
    /// Renders a truth assignment compactly (`β=10` for `[true, false]`).
    fn render_beta(beta: &[bool]) -> String {
        beta.iter().map(|&b| if b { '1' } else { '0' }).collect()
    }
}

/// Renders an input isomorphism-type key for humans: the equivalence-class
/// id of each projected expression in order, with `has-symbolic`'s
/// dead/unset sentinel (`u32::MAX`) shown as `-` instead of `4294967295`.
pub fn render_input_key(key: &[u32]) -> String {
    let cells: Vec<String> = key
        .iter()
        .map(|&class| {
            if class == u32::MAX {
                "-".to_string()
            } else {
                class.to_string()
            }
        })
        .collect();
    format!("[{}]", cells.join(", "))
}

impl fmt::Display for WitnessStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WitnessStep::Internal { service } => write!(f, "internal service `{service}`"),
            WitnessStep::OpenChild {
                child_name,
                beta,
                output,
                ..
            } => {
                write!(f, "open child `{child_name}`")?;
                if !beta.is_empty() {
                    write!(f, " (β={})", Self::render_beta(beta))?;
                }
                match output {
                    Some(_) => write!(f, " → returns"),
                    None => write!(f, " → never returns"),
                }
            }
            WitnessStep::CloseChild { child_name, .. } => {
                write!(f, "child `{child_name}` returns")
            }
            WitnessStep::CloseTask => f.write_str("close task"),
        }
    }
}

/// One node of a reconstructed hierarchical counterexample: the symbolic run
/// of one task, with a nested node per child call made on that run.
///
/// The root node describes the violating run of the root task (always
/// non-returning: a lasso or a blocking run); child nodes describe the runs
/// chosen for the child calls the parent's run performs — [`ViolationKind::Returning`]
/// nodes for returned calls, lasso/blocking nodes for a call the parent
/// blocks on. [`WitnessNode::origin`] walks the carrier chain down to the
/// task where the violation actually originates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WitnessNode {
    /// The task this run belongs to.
    pub task: TaskId,
    /// Its name.
    pub task_name: String,
    /// The Lemma 21 path kind of this node's run.
    pub kind: ViolationKind,
    /// Human-readable description of the run's input isomorphism type.
    pub input_description: String,
    /// The truth assignment over `Φ_task` this run realizes; the indices it
    /// assigns `false` are the sub-formulas the run *violates*
    /// ([`WitnessNode::violated`]).
    pub beta: Vec<bool>,
    /// The rendered run prefix: from the initial state to the blocking
    /// point (blocking), the pump cycle's entry (lasso), or the closing
    /// step (returning).
    pub prefix: Vec<WitnessStep>,
    /// The pump cycle of a lasso run (empty for other kinds): a closed
    /// sequence of steps with componentwise non-negative counter effect,
    /// repeatable forever.
    pub cycle: Vec<WitnessStep>,
    /// `true` when a pump cycle exists but exceeded the materialization cap
    /// (the run is still a proven lasso; only the explicit cycle rendering
    /// is omitted).
    pub cycle_truncated: bool,
    /// One node per distinct child call on the run, in run order.
    pub children: Vec<WitnessNode>,
}

impl WitnessNode {
    /// Indices of `Φ_task` this node's run *violates* — exactly the indices
    /// `beta` assigns `false`.
    pub fn violated(&self) -> Vec<usize> {
        self.beta
            .iter()
            .enumerate()
            .filter(|(_, b)| !**b)
            .map(|(i, _)| i)
            .collect()
    }

    /// The node where the violation actually originates: follows the
    /// carrier chain ([`WitnessNode::carrier`]) to its end.
    pub fn origin(&self) -> &WitnessNode {
        let mut node = self;
        while let Some(next) = node.carrier() {
            node = next;
        }
        node
    }

    /// The child call that carries this node's violation further down, if
    /// any: for a blocking run, the never-returning call the run blocks on;
    /// otherwise the first returned call whose run violates one of its own
    /// sub-formulas ([`WitnessNode::violated`] non-empty). `None` means the
    /// violation originates here.
    pub fn carrier(&self) -> Option<&WitnessNode> {
        if self.kind == ViolationKind::Blocking {
            if let Some(blocker) = self
                .children
                .iter()
                .find(|c| c.kind != ViolationKind::Returning)
            {
                return Some(blocker);
            }
        }
        self.children
            .iter()
            .find(|c| c.kind == ViolationKind::Returning && c.beta.iter().any(|b| !b))
    }

    /// Writes the node (and its subtree) at the given nesting depth.
    fn render(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "    ".repeat(depth);
        let marker = if depth == 0 { "" } else { "└ " };
        write!(
            f,
            "{pad}{marker}task `{}` — {} ({})",
            self.task_name, self.kind, self.input_description
        )?;
        let violated = self.violated();
        if !violated.is_empty() {
            let phis: Vec<String> = violated.iter().map(|i| format!("φ{i}")).collect();
            write!(f, " [violates {}]", phis.join(", "))?;
        }
        writeln!(f)?;
        let mut step_no = 0usize;
        if !self.prefix.is_empty() {
            writeln!(f, "{pad}  prefix:")?;
            for step in &self.prefix {
                step_no += 1;
                writeln!(f, "{pad}    {step_no}. {step}")?;
            }
        }
        if !self.cycle.is_empty() {
            writeln!(f, "{pad}  cycle (repeatable pump):")?;
            for step in &self.cycle {
                step_no += 1;
                writeln!(f, "{pad}    {step_no}. {step}")?;
            }
        }
        if self.cycle_truncated {
            writeln!(
                f,
                "{pad}  (pump cycle exists but exceeds the materialization cap)"
            )?;
        }
        for child in &self.children {
            child.render(f, depth + 1)?;
        }
        Ok(())
    }
}

impl fmt::Display for WitnessNode {
    /// Multi-line, indented rendering of the witness tree. Every line of a
    /// node at depth `d` is indented by `4·d` spaces; nested child runs are
    /// introduced with a `└` marker.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.render(f, 0)
    }
}

/// A symbolic witness that the property can be violated.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The task at whose level the violating run was found (the root).
    pub task: TaskId,
    /// The kind of violating run. With witness reconstruction enabled this
    /// is refined to [`ViolationKind::Returning`] when a *returned*
    /// sub-call carries the violation (the witness tree's carrier chain
    /// starts with a returning node); without reconstruction it is the root
    /// run's own path kind (lasso or blocking).
    pub kind: ViolationKind,
    /// Human-readable description of the initial isomorphism type of the
    /// violating run.
    pub input_description: String,
    /// The reconstructed witness tree (`Some` only when
    /// [`VerifierConfig::witnesses`](crate::verifier::VerifierConfig::witnesses)
    /// is enabled).
    pub witness: Option<WitnessNode>,
}

impl Violation {
    /// The task where the violation actually originates: the end of the
    /// witness tree's carrier chain, or the root task when no witness tree
    /// was reconstructed.
    pub fn origin(&self) -> TaskId {
        self.witness.as_ref().map_or(self.task, |w| w.origin().task)
    }

    /// The originating task's name, when a witness tree is available.
    pub fn origin_name(&self) -> Option<&str> {
        self.witness.as_ref().map(|w| w.origin().task_name.as_str())
    }
}

/// Exploration statistics, the cost measures reported by the benchmarks
/// (EXP-T1 / EXP-T2 / EXP-F3 in DESIGN.md).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Symbolic control states constructed across all per-task VASS.
    pub control_states: usize,
    /// VASS actions (transitions) constructed.
    pub transitions: usize,
    /// Karp–Miller coverability-graph nodes explored.
    pub coverability_nodes: usize,
    /// Total vector dimension (TS-isomorphism types) across tasks.
    pub counter_dimensions: usize,
    /// Büchi automaton states across all `B(T, β)`.
    pub buchi_states: usize,
    /// Number of `(task, β)` pairs analysed.
    pub task_assignments: usize,
    /// Number of `R_T` entries computed.
    pub rt_entries: usize,
    /// Number of cells in the hierarchical cell decomposition (0 when
    /// arithmetic support is disabled).
    pub hcd_cells: usize,
    /// Counter dimensions summed over all coverability queries *before*
    /// cone-of-influence projection.
    pub counter_dims_before: usize,
    /// Counter dimensions summed over all coverability queries *after*
    /// projection (equals `counter_dims_before` when projection is off).
    pub counter_dims_after: usize,
    /// Service guards proven unsatisfiable and excluded from graph
    /// construction (0 when projection is off).
    pub dead_services_pruned: usize,
    /// Query pre-solver verdict counts: sub-queries examined and statically
    /// decided per filter, Karp–Miller builds skipped, dimensions certified
    /// bounded (all zero when the pre-solver is off).
    pub presolve: PresolveStats,
    /// Karp–Miller nodes served from the shared per-`(T, β)` arena instead
    /// of being recomputed (0 when [`crate::VerifierConfig::shared_km`] is
    /// off — DESIGN.md §5.12).
    pub km_reused: usize,
    /// Karp–Miller successors pruned by the shared arena's per-query
    /// antichain — covered on arrival or retro-pruned by a larger marking
    /// (0 when sharing is off).
    pub km_subsumed: usize,
}

impl Stats {
    /// Merges two statistics records into one, by value.
    ///
    /// The merge is associative and commutative (every field is a plain
    /// count, combined by addition), which is what lets the parallel engine
    /// combine per-`(T, β)` statistics in *any* completion order and still
    /// produce aggregates identical to the sequential run — see DESIGN.md
    /// §5.6 for the determinism contract this supports.
    #[must_use]
    pub fn merge(mut self, other: &Stats) -> Stats {
        self.absorb(other);
        self
    }

    /// Merges another statistics record into this one.
    pub fn absorb(&mut self, other: &Stats) {
        self.control_states += other.control_states;
        self.transitions += other.transitions;
        self.coverability_nodes += other.coverability_nodes;
        self.counter_dimensions += other.counter_dimensions;
        self.buchi_states += other.buchi_states;
        self.task_assignments += other.task_assignments;
        self.rt_entries += other.rt_entries;
        self.hcd_cells += other.hcd_cells;
        self.counter_dims_before += other.counter_dims_before;
        self.counter_dims_after += other.counter_dims_after;
        self.dead_services_pruned += other.dead_services_pruned;
        self.presolve.absorb(&other.presolve);
        self.km_reused += other.km_reused;
        self.km_subsumed += other.km_subsumed;
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "states={} transitions={} km-nodes={} dims={} buchi={} (T,β)={} R_T={} cells={} \
             proj={}->{} dead={} presolve={}/{} km-skip={} bounded={} km-reuse={} km-subsume={}",
            self.control_states,
            self.transitions,
            self.coverability_nodes,
            self.counter_dimensions,
            self.buchi_states,
            self.task_assignments,
            self.rt_entries,
            self.hcd_cells,
            self.counter_dims_before,
            self.counter_dims_after,
            self.dead_services_pruned,
            self.presolve.decided,
            self.presolve.queries,
            self.presolve.skipped_builds,
            self.presolve.bounded_dims,
            self.km_reused,
            self.km_subsumed
        )
    }
}

/// The result of a verification run.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// `true` iff `Γ ⊨ φ` (no violating symbolic tree of runs exists).
    pub holds: bool,
    /// A symbolic witness when the property can be violated.
    pub violation: Option<Violation>,
    /// Exploration statistics.
    pub stats: Stats,
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.holds {
            write!(f, "property HOLDS ({})", self.stats)
        } else {
            // Without a witness there is no kind segment at all — rendering
            // an empty one used to produce a dangling "(;".
            match self.violation.as_ref() {
                Some(v) => match v.origin_name().filter(|_| v.origin() != v.task) {
                    // A reconstructed witness that descends below the root
                    // names the originating sub-task inline; the full tree
                    // is available through `Violation::witness`.
                    Some(origin) => write!(
                        f,
                        "property VIOLATED ({} originating in task `{}`; {})",
                        v.kind, origin, self.stats
                    ),
                    None => write!(f, "property VIOLATED ({}; {})", v.kind, self.stats),
                },
                None => write!(f, "property VIOLATED ({})", self.stats),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_absorb_accumulates() {
        let mut a = Stats {
            control_states: 1,
            transitions: 2,
            ..Stats::default()
        };
        let b = Stats {
            control_states: 10,
            coverability_nodes: 5,
            ..Stats::default()
        };
        a.absorb(&b);
        assert_eq!(a.control_states, 11);
        assert_eq!(a.transitions, 2);
        assert_eq!(a.coverability_nodes, 5);
        assert!(a.to_string().contains("states=11"));
    }

    #[test]
    fn stats_merge_is_associative_and_commutative() {
        let a = Stats {
            control_states: 3,
            coverability_nodes: 7,
            ..Stats::default()
        };
        let b = Stats {
            control_states: 11,
            transitions: 2,
            ..Stats::default()
        };
        let c = Stats {
            rt_entries: 5,
            transitions: 9,
            ..Stats::default()
        };
        let left = a.clone().merge(&b).merge(&c);
        let right = a.clone().merge(&b.clone().merge(&c));
        assert_eq!(left, right);
        let swapped = c.merge(&b).merge(&a);
        assert_eq!(left, swapped);
    }

    #[test]
    fn outcome_display_mentions_result() {
        let ok = Outcome {
            holds: true,
            violation: None,
            stats: Stats::default(),
        };
        assert!(ok.to_string().contains("HOLDS"));
        let bad = Outcome {
            holds: false,
            violation: Some(Violation {
                task: TaskId(0),
                kind: ViolationKind::Lasso,
                input_description: "x".into(),
                witness: None,
            }),
            stats: Stats::default(),
        };
        assert!(bad.to_string().contains("VIOLATED"));
        assert!(bad.to_string().contains("lasso"));
    }

    #[test]
    fn violated_outcome_without_witness_omits_the_kind_segment() {
        let bad = Outcome {
            holds: false,
            violation: None,
            stats: Stats::default(),
        };
        let rendered = bad.to_string();
        assert_eq!(
            rendered,
            format!("property VIOLATED ({})", Stats::default()),
            "no dangling separator when there is no violation witness"
        );
        assert!(!rendered.contains("(;"), "{rendered}");
    }

    #[test]
    fn violation_kinds_render_distinctly() {
        for (kind, needle) in [
            (ViolationKind::Lasso, "lasso"),
            (ViolationKind::Blocking, "blocking"),
            (ViolationKind::Returning, "returning"),
        ] {
            let outcome = Outcome {
                holds: false,
                violation: Some(Violation {
                    task: TaskId(0),
                    kind,
                    input_description: "x".into(),
                    witness: None,
                }),
                stats: Stats::default(),
            };
            assert!(outcome.to_string().contains(needle), "{kind:?}");
        }
    }

    // ------------------------------------------------------------------
    // Witness-tree rendering
    // ------------------------------------------------------------------

    fn leaf(name: &str, kind: ViolationKind, beta: Vec<bool>) -> WitnessNode {
        WitnessNode {
            task: TaskId(9),
            task_name: name.to_string(),
            kind,
            input_description: "input isomorphism type [0]".into(),
            beta,
            prefix: vec![WitnessStep::Internal {
                service: "spin".into(),
            }],
            cycle: Vec::new(),
            cycle_truncated: false,
            children: Vec::new(),
        }
    }

    #[test]
    fn witness_tree_indents_nested_runs() {
        let mut grandchild = leaf("GrandChild", ViolationKind::Returning, vec![false]);
        grandchild.prefix.push(WitnessStep::CloseTask);
        let mut child = leaf("Child", ViolationKind::Returning, vec![false]);
        child.children.push(grandchild);
        let mut root = leaf("Main", ViolationKind::Lasso, vec![false]);
        root.cycle = vec![WitnessStep::Internal {
            service: "idle".into(),
        }];
        root.children.push(child);

        let rendered = root.to_string();
        // Depth-proportional indentation: the root header at column 0, the
        // child header at one unit, the grandchild at two.
        assert!(rendered.contains("task `Main`"), "{rendered}");
        assert!(rendered.contains("\n    └ task `Child`"), "{rendered}");
        assert!(rendered.contains("\n        └ task `GrandChild`"), "{rendered}");
        // Step lists are indented below their node and numbered across
        // prefix + cycle.
        assert!(rendered.contains("1. internal service `spin`"), "{rendered}");
        assert!(rendered.contains("cycle (repeatable pump):"), "{rendered}");
        assert!(rendered.contains("2. internal service `idle`"), "{rendered}");
        assert!(rendered.contains("[violates φ0]"), "{rendered}");
    }

    /// A structurally valid (if trivial) symbolic state for rendering tests.
    fn some_sym_state() -> SymState {
        let mut b = has_model::SystemBuilder::new("w");
        let root = b.root_task("Main");
        let _flag = b.num_var(root, "flag");
        let system = b.build().expect("well-formed");
        let ctx = has_symbolic::TaskContext::build(&system, root, &[], 0);
        SymState::blank(&ctx, &system.schema)
    }

    #[test]
    fn input_keys_render_the_dead_sentinel_as_a_dash() {
        assert_eq!(render_input_key(&[0, 1, 2]), "[0, 1, 2]");
        assert_eq!(render_input_key(&[0, u32::MAX, 1]), "[0, -, 1]");
        assert_eq!(render_input_key(&[]), "[]");
    }

    #[test]
    fn witness_step_segments_render_distinctly() {
        let open_ret = WitnessStep::OpenChild {
            child: TaskId(1),
            child_name: "Child".into(),
            beta: vec![true, false],
            input_key: vec![0, 1],
            output: Some(some_sym_state()),
        };
        assert_eq!(open_ret.to_string(), "open child `Child` (β=10) → returns");
        let open_block = WitnessStep::OpenChild {
            child: TaskId(1),
            child_name: "Child".into(),
            beta: Vec::new(),
            input_key: vec![],
            output: None,
        };
        assert_eq!(open_block.to_string(), "open child `Child` → never returns");
        assert_eq!(
            WitnessStep::CloseChild {
                child: TaskId(1),
                child_name: "Child".into()
            }
            .to_string(),
            "child `Child` returns"
        );
        assert_eq!(WitnessStep::CloseTask.to_string(), "close task");
    }

    #[test]
    fn blocking_lasso_and_returning_nodes_render_their_kind() {
        for (kind, needle) in [
            (ViolationKind::Lasso, "infinite (lasso) run"),
            (ViolationKind::Blocking, "blocking run"),
            (ViolationKind::Returning, "returning run"),
        ] {
            let node = leaf("T", kind, vec![]);
            assert!(node.to_string().contains(needle), "{kind:?}");
        }
        // A truncated pump cycle is announced instead of silently omitted.
        let mut node = leaf("T", ViolationKind::Lasso, vec![]);
        node.cycle_truncated = true;
        assert!(node.to_string().contains("materialization cap"));
    }

    #[test]
    fn origin_follows_the_carrier_chain() {
        let grandchild = leaf("GrandChild", ViolationKind::Returning, vec![true, false]);
        let mut child = leaf("Child", ViolationKind::Returning, vec![false]);
        child.children.push(grandchild);
        // An innocuous returned sibling (violates nothing) is not a carrier.
        let sibling = leaf("Sibling", ViolationKind::Returning, vec![true]);
        let mut root = leaf("Main", ViolationKind::Lasso, vec![false]);
        root.children.push(sibling);
        root.children.push(child);
        assert_eq!(root.origin().task_name, "GrandChild");

        // A blocking node's carrier is the never-returning call, preferred
        // over returned calls.
        let blocker = leaf("Spinner", ViolationKind::Lasso, vec![]);
        let mut blocked = leaf("Main", ViolationKind::Blocking, vec![false]);
        blocked.children.push(leaf("Done", ViolationKind::Returning, vec![false]));
        blocked.children.push(blocker);
        assert_eq!(blocked.origin().task_name, "Spinner");
    }

    #[test]
    fn outcome_display_names_a_sub_task_origin() {
        let child = leaf("Child", ViolationKind::Returning, vec![false]);
        let mut root = leaf("Main", ViolationKind::Lasso, vec![false]);
        root.task = TaskId(0);
        root.children.push(child);
        let outcome = Outcome {
            holds: false,
            violation: Some(Violation {
                task: TaskId(0),
                kind: ViolationKind::Returning,
                input_description: "x".into(),
                witness: Some(root),
            }),
            stats: Stats::default(),
        };
        let rendered = outcome.to_string();
        assert!(
            rendered.contains("returning run originating in task `Child`"),
            "{rendered}"
        );
        // The single-line format without a witness is unchanged.
        let plain = Outcome {
            holds: false,
            violation: Some(Violation {
                task: TaskId(0),
                kind: ViolationKind::Lasso,
                input_description: "x".into(),
                witness: None,
            }),
            stats: Stats::default(),
        };
        assert_eq!(
            plain.to_string(),
            format!("property VIOLATED (infinite (lasso) run; {})", Stats::default())
        );
    }
}
