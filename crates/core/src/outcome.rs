//! Verification outcomes, witnesses and statistics.

use has_model::TaskId;
use std::fmt;

/// How the reported violation manifests at the root task (the three path
/// kinds of Lemma 21).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// The root task has an infinite local run (a lasso in `V(T1, β)`).
    Lasso,
    /// The root task blocks forever on a child that never returns.
    Blocking,
    /// A returning path (only possible for non-root tasks; reported when a
    /// sub-call witnesses the violation).
    Returning,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::Lasso => "infinite (lasso) run",
            ViolationKind::Blocking => "blocking run",
            ViolationKind::Returning => "returning run",
        };
        f.write_str(s)
    }
}

/// A symbolic witness that the property can be violated.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The task at whose level the violating run was found (the root).
    pub task: TaskId,
    /// The kind of violating run.
    pub kind: ViolationKind,
    /// Human-readable description of the initial isomorphism type of the
    /// violating run.
    pub input_description: String,
}

/// Exploration statistics, the cost measures reported by the benchmarks
/// (EXP-T1 / EXP-T2 / EXP-F3 in DESIGN.md).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Stats {
    /// Symbolic control states constructed across all per-task VASS.
    pub control_states: usize,
    /// VASS actions (transitions) constructed.
    pub transitions: usize,
    /// Karp–Miller coverability-graph nodes explored.
    pub coverability_nodes: usize,
    /// Total vector dimension (TS-isomorphism types) across tasks.
    pub counter_dimensions: usize,
    /// Büchi automaton states across all `B(T, β)`.
    pub buchi_states: usize,
    /// Number of `(task, β)` pairs analysed.
    pub task_assignments: usize,
    /// Number of `R_T` entries computed.
    pub rt_entries: usize,
    /// Number of cells in the hierarchical cell decomposition (0 when
    /// arithmetic support is disabled).
    pub hcd_cells: usize,
}

impl Stats {
    /// Merges two statistics records into one, by value.
    ///
    /// The merge is associative and commutative (every field is a plain
    /// count, combined by addition), which is what lets the parallel engine
    /// combine per-`(T, β)` statistics in *any* completion order and still
    /// produce aggregates identical to the sequential run — see DESIGN.md
    /// §5.6 for the determinism contract this supports.
    #[must_use]
    pub fn merge(mut self, other: &Stats) -> Stats {
        self.absorb(other);
        self
    }

    /// Merges another statistics record into this one.
    pub fn absorb(&mut self, other: &Stats) {
        self.control_states += other.control_states;
        self.transitions += other.transitions;
        self.coverability_nodes += other.coverability_nodes;
        self.counter_dimensions += other.counter_dimensions;
        self.buchi_states += other.buchi_states;
        self.task_assignments += other.task_assignments;
        self.rt_entries += other.rt_entries;
        self.hcd_cells += other.hcd_cells;
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "states={} transitions={} km-nodes={} dims={} buchi={} (T,β)={} R_T={} cells={}",
            self.control_states,
            self.transitions,
            self.coverability_nodes,
            self.counter_dimensions,
            self.buchi_states,
            self.task_assignments,
            self.rt_entries,
            self.hcd_cells
        )
    }
}

/// The result of a verification run.
#[derive(Clone, Debug)]
pub struct Outcome {
    /// `true` iff `Γ ⊨ φ` (no violating symbolic tree of runs exists).
    pub holds: bool,
    /// A symbolic witness when the property can be violated.
    pub violation: Option<Violation>,
    /// Exploration statistics.
    pub stats: Stats,
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.holds {
            write!(f, "property HOLDS ({})", self.stats)
        } else {
            // Without a witness there is no kind segment at all — rendering
            // an empty one used to produce a dangling "(;".
            match self.violation.as_ref() {
                Some(v) => write!(f, "property VIOLATED ({}; {})", v.kind, self.stats),
                None => write!(f, "property VIOLATED ({})", self.stats),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_absorb_accumulates() {
        let mut a = Stats {
            control_states: 1,
            transitions: 2,
            ..Stats::default()
        };
        let b = Stats {
            control_states: 10,
            coverability_nodes: 5,
            ..Stats::default()
        };
        a.absorb(&b);
        assert_eq!(a.control_states, 11);
        assert_eq!(a.transitions, 2);
        assert_eq!(a.coverability_nodes, 5);
        assert!(a.to_string().contains("states=11"));
    }

    #[test]
    fn stats_merge_is_associative_and_commutative() {
        let a = Stats {
            control_states: 3,
            coverability_nodes: 7,
            ..Stats::default()
        };
        let b = Stats {
            control_states: 11,
            transitions: 2,
            ..Stats::default()
        };
        let c = Stats {
            rt_entries: 5,
            transitions: 9,
            ..Stats::default()
        };
        let left = a.clone().merge(&b).merge(&c);
        let right = a.clone().merge(&b.clone().merge(&c));
        assert_eq!(left, right);
        let swapped = c.merge(&b).merge(&a);
        assert_eq!(left, swapped);
    }

    #[test]
    fn outcome_display_mentions_result() {
        let ok = Outcome {
            holds: true,
            violation: None,
            stats: Stats::default(),
        };
        assert!(ok.to_string().contains("HOLDS"));
        let bad = Outcome {
            holds: false,
            violation: Some(Violation {
                task: TaskId(0),
                kind: ViolationKind::Lasso,
                input_description: "x".into(),
            }),
            stats: Stats::default(),
        };
        assert!(bad.to_string().contains("VIOLATED"));
        assert!(bad.to_string().contains("lasso"));
    }

    #[test]
    fn violated_outcome_without_witness_omits_the_kind_segment() {
        let bad = Outcome {
            holds: false,
            violation: None,
            stats: Stats::default(),
        };
        let rendered = bad.to_string();
        assert_eq!(
            rendered,
            format!("property VIOLATED ({})", Stats::default()),
            "no dangling separator when there is no violation witness"
        );
        assert!(!rendered.contains("(;"), "{rendered}");
    }

    #[test]
    fn violation_kinds_render_distinctly() {
        for (kind, needle) in [
            (ViolationKind::Lasso, "lasso"),
            (ViolationKind::Blocking, "blocking"),
            (ViolationKind::Returning, "returning"),
        ] {
            let outcome = Outcome {
                holds: false,
                violation: Some(Violation {
                    task: TaskId(0),
                    kind,
                    input_description: "x".into(),
                }),
                stats: Stats::default(),
            };
            assert!(outcome.to_string().contains(needle), "{kind:?}");
        }
    }
}
