//! The HAS verifier — the primary contribution of *Verification of
//! Hierarchical Artifact Systems* (Deutsch, Li, Vianu; PODS 2016).
//!
//! Given a Hierarchical Artifact System `Γ` and an HLTL-FO property
//! `φ = [ξ]_{T1}`, [`Verifier::verify`] decides whether every tree of local
//! runs of `Γ` (over every database satisfying the schema's key and
//! foreign-key dependencies) satisfies `φ`, by searching for a *symbolic tree
//! of runs* satisfying `[¬ξ]_{T1}` (Theorem 20 reduces the two problems to
//! each other):
//!
//! 1. the property is flattened into per-task LTL skeletons `Φ_T`
//!    ([`has_ltl::hltl`]), and for every task `T` and truth assignment `β`
//!    over `Φ_T` a Büchi automaton `B(T, β)` is built;
//! 2. bottom-up over the hierarchy, the relation `R_T(τ_in, τ_out, β)` of
//!    Section 4.2 is computed: a per-task VASS `V(T, β)` is constructed whose
//!    control states combine a symbolic state (restricted T-isomorphism
//!    type), a Büchi state, and the status of child calls, and whose counters
//!    track artifact-relation contents per TS-isomorphism type; the
//!    returning / lasso / blocking paths of Lemma 21 are found with
//!    Karp–Miller coverability queries ([`has_vass`]);
//! 3. `Γ ⊨ φ` iff no `(τ_in, ⊥, β)` with `β(ξ) = 0` and `τ_in ⊨ Π` belongs to
//!    `R_{T1}`.
//!
//! Engineering deviations from the paper's worst-case constructions (lazy
//! state enumeration, the restriction of isomorphism types to the
//! specification's observable expressions, the treatment of arithmetic) are
//! catalogued in DESIGN.md §5 together with the direction in which each can
//! affect precision.
//!
//! The engine runs either sequentially or in parallel
//! ([`VerifierConfig::threads`]): sibling `(T, β)` explorations within a
//! hierarchy level, and the per-initial-state Lemma 21 queries, are
//! independent given the children's completed `R_T`, so they are fanned out
//! over a scoped worker pool. The reported [`Outcome`] and [`Stats`] are
//! identical at every thread count — DESIGN.md §5.6 states the determinism
//! contract.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod compiled;
pub mod outcome;
mod parallel;
pub mod property;
pub mod task_verifier;
pub mod verifier;

pub use outcome::{Outcome, Stats, Violation, ViolationKind, WitnessNode, WitnessStep};
pub use property::PropertyContext;
pub use verifier::{Verifier, VerifierConfig};
