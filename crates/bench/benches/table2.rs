//! EXP-T2 — Table 2 (verification **with** arithmetic).
//!
//! Same grid as Table 1 but with linear arithmetic constraints in the
//! specification and the Hierarchical Cell Decomposition enabled in the
//! verifier; each cell of the grid is expected to cost at least as much as
//! the corresponding Table 1 cell, with the extra cost growing with the
//! number of numeric variables (EXP-F4 isolates that growth).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use has_bench::{engine_modes, fast_config, measure};
use has_core::VerifierConfig;
use has_model::SchemaClass;
use has_workloads::generator::GeneratorParams;

fn table2(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_with_arithmetic");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for class in [
        SchemaClass::Acyclic,
        SchemaClass::LinearlyCyclic,
        SchemaClass::Cyclic,
    ] {
        for artifact_relations in [false, true] {
            let params = GeneratorParams {
                schema_class: class,
                artifact_relations,
                arithmetic: true,
                depth: 2,
                width: 1,
                numeric_vars: 1,
            };
            let generated = params.generate();
            for (mode, threads) in engine_modes() {
                let config = VerifierConfig {
                    use_cells: true,
                    ..fast_config()
                }
                .with_threads(threads);
                let id = BenchmarkId::new(
                    format!("{class}/{mode}"),
                    if artifact_relations { "with-set" } else { "no-set" },
                );
                group.bench_function(id, |b| {
                    b.iter(|| {
                        measure(
                            &generated.label,
                            &generated.system,
                            &generated.property,
                            config.clone(),
                        )
                    })
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, table2);
criterion_main!(benches);
