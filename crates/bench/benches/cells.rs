//! EXP-F4 — growth of the Hierarchical Cell Decomposition (Section 5 /
//! Appendix D).
//!
//! The number of non-empty cells grows exponentially with the number of
//! numeric expressions per task and is compounded by projection through the
//! hierarchy. This bench measures cell enumeration for growing variable
//! counts and HCD construction for growing hierarchy depths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use has_arith::{CellSet, HcdBuilder, LinExpr, Rational};
use has_bench::{engine_modes, fast_config, measure};
use has_core::VerifierConfig;
use has_workloads::generator::GeneratorParams;

fn polynomials(nvars: usize) -> Vec<LinExpr<usize>> {
    // x_i - x_{i+1} and x_i - c hyperplanes.
    let mut polys = Vec::new();
    for i in 0..nvars {
        polys.push(LinExpr::var(i) - LinExpr::constant(Rational::from_int(i as i64)));
        if i + 1 < nvars {
            polys.push(LinExpr::var(i) - LinExpr::var(i + 1));
        }
    }
    polys
}

fn cells(c: &mut Criterion) {
    let mut group = c.benchmark_group("cell_decomposition");
    group.sample_size(10);
    for nvars in [1usize, 2, 3, 4] {
        let polys = polynomials(nvars);
        group.bench_with_input(BenchmarkId::new("cellset", nvars), &polys, |b, p| {
            b.iter(|| CellSet::enumerate(p).len())
        });
    }
    for depth in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::new("hcd_depth", depth), &depth, |b, &d| {
            b.iter(|| {
                let mut builder: HcdBuilder<usize> = HcdBuilder::new();
                for level in 0..d {
                    let parent = if level == 0 { None } else { Some(level - 1) };
                    builder = builder.task(
                        level,
                        parent,
                        polynomials(2)
                            .into_iter()
                            .map(|p| p.rename(|v| v + level * 10))
                            .collect(),
                        vec![(level * 10, (level.saturating_sub(1)) * 10)],
                    );
                }
                builder.build().total_cells()
            })
        });
    }
    group.finish();
}

/// End-to-end verification with the HCD enabled, in both engine modes: the
/// cell decomposition is built once up front on the coordinating thread, so
/// this isolates how it composes with the parallel `(T, β)` fan-out.
fn cells_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("cell_decomposition_verify");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let generated = GeneratorParams {
        arithmetic: true,
        numeric_vars: 2,
        ..GeneratorParams::default()
    }
    .generate();
    for (mode, threads) in engine_modes() {
        let config = VerifierConfig {
            use_cells: true,
            ..fast_config()
        }
        .with_threads(threads);
        group.bench_function(BenchmarkId::new("acyclic-arith", mode), |b| {
            b.iter(|| {
                measure(
                    &generated.label,
                    &generated.system,
                    &generated.property,
                    config.clone(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, cells, cells_verify);
criterion_main!(benches);
