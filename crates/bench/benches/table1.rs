//! EXP-T1 — Table 1 (verification **without** arithmetic).
//!
//! The paper's Table 1 places verification in PSPACE for acyclic schemas
//! without artifact relations and lets the cost climb through EXPSPACE and
//! beyond as the schema becomes (linearly-)cyclic and artifact relations are
//! added. This bench sweeps the same grid — schema class × artifact
//! relations — on generated workloads of fixed specification size, so the
//! *relative* cost ordering of the six cells can be compared.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use has_bench::{engine_modes, fast_config, measure};
use has_model::SchemaClass;
use has_workloads::generator::GeneratorParams;

fn table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_no_arithmetic");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for class in [
        SchemaClass::Acyclic,
        SchemaClass::LinearlyCyclic,
        SchemaClass::Cyclic,
    ] {
        for artifact_relations in [false, true] {
            let params = GeneratorParams {
                schema_class: class,
                artifact_relations,
                arithmetic: false,
                depth: 2,
                width: 1,
                numeric_vars: 1,
            };
            let generated = params.generate();
            for (mode, threads) in engine_modes() {
                let id = BenchmarkId::new(
                    format!("{class}/{mode}"),
                    if artifact_relations { "with-set" } else { "no-set" },
                );
                group.bench_function(id, |b| {
                    b.iter(|| {
                        measure(
                            &generated.label,
                            &generated.system,
                            &generated.property,
                            fast_config().with_threads(threads),
                        )
                    })
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, table1);
criterion_main!(benches);
