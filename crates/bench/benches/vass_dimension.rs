//! EXP-F3 — the VASS dimension as cost driver (Section 4.2 / Lemma 21).
//!
//! The space bound of the paper's algorithm is exponential in the VASS
//! dimension `d` (the number of TS-isomorphism types). This bench measures
//! Karp–Miller coverability directly on synthetic VASS of growing dimension
//! and on generated artifact systems with growing artifact-relation tuples.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use has_bench::{engine_modes, fast_config, measure};
use has_vass::{CoverabilityGraph, Vass};
use has_workloads::counters::{counter_gadget, counter_liveness_property};

/// A VASS with `d` counters where state 0 pumps each counter and state 1
/// drains them; the coverability graph grows with `d`.
fn pump_drain(d: usize) -> Vass {
    let mut v = Vass::new(2, d);
    for i in 0..d {
        let mut up = vec![0i64; d];
        up[i] = 1;
        v.add_action(0, up, 0);
        let mut down = vec![0i64; d];
        down[i] = -1;
        v.add_action(1, down, 1);
    }
    v.add_action(0, vec![0; d], 1);
    v
}

fn vass_dimension(c: &mut Criterion) {
    let mut group = c.benchmark_group("vass_dimension");
    group.sample_size(10);
    for d in [1usize, 2, 3, 4, 5] {
        let vass = pump_drain(d);
        group.bench_with_input(BenchmarkId::new("coverability", d), &vass, |b, v| {
            b.iter(|| {
                let g = CoverabilityGraph::build(v, 0);
                (g.node_count(), v.state_repeated_reachable(0, 1))
            })
        });
    }
    group.finish();
}

/// Full verification of the Theorem 11 counter gadget (whose VASS dimension
/// grows with `d`) in both engine modes — the end-to-end counterpart of the
/// raw coverability sweep above.
fn counter_gadget_verify(c: &mut Criterion) {
    let mut group = c.benchmark_group("counter_gadget_verify");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for d in [1usize, 2] {
        let g = counter_gadget(d);
        let property = counter_liveness_property(&g);
        for (mode, threads) in engine_modes() {
            group.bench_function(BenchmarkId::new(format!("d{d}"), mode), |b| {
                b.iter(|| {
                    measure(
                        &format!("counter-gadget/d={d}"),
                        &g.system,
                        &property,
                        fast_config().with_threads(threads),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, vass_dimension, counter_gadget_verify);
criterion_main!(benches);
