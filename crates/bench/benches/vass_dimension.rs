//! EXP-F3 — the VASS dimension as cost driver (Section 4.2 / Lemma 21).
//!
//! The space bound of the paper's algorithm is exponential in the VASS
//! dimension `d` (the number of TS-isomorphism types). This bench measures
//! Karp–Miller coverability directly on synthetic VASS of growing dimension
//! and on generated artifact systems with growing artifact-relation tuples.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use has_vass::{CoverabilityGraph, Vass};

/// A VASS with `d` counters where state 0 pumps each counter and state 1
/// drains them; the coverability graph grows with `d`.
fn pump_drain(d: usize) -> Vass {
    let mut v = Vass::new(2, d);
    for i in 0..d {
        let mut up = vec![0i64; d];
        up[i] = 1;
        v.add_action(0, up, 0);
        let mut down = vec![0i64; d];
        down[i] = -1;
        v.add_action(1, down, 1);
    }
    v.add_action(0, vec![0; d], 1);
    v
}

fn vass_dimension(c: &mut Criterion) {
    let mut group = c.benchmark_group("vass_dimension");
    group.sample_size(10);
    for d in [1usize, 2, 3, 4, 5] {
        let vass = pump_drain(d);
        group.bench_with_input(BenchmarkId::new("coverability", d), &vass, |b, v| {
            b.iter(|| {
                let g = CoverabilityGraph::build(v, 0);
                (g.node_count(), v.state_repeated_reachable(0, 1))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, vass_dimension);
criterion_main!(benches);
