//! EXP-F1 — the travel-booking running example (Figure 1 / Appendix A).
//!
//! Measures verification of the discount/cancellation policy (Appendix A.2)
//! on the buggy and fixed variants of the specification.

use criterion::{criterion_group, criterion_main, Criterion};
use has_bench::{engine_modes, fast_config, measure};
use has_workloads::travel::{travel_booking, travel_property, TravelVariant};

fn travel(c: &mut Criterion) {
    let mut group = c.benchmark_group("travel_booking");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(5));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for variant in [TravelVariant::Buggy, TravelVariant::Fixed] {
        let t = travel_booking(variant);
        let property = travel_property(&t);
        for (mode, threads) in engine_modes() {
            group.bench_function(format!("{variant:?}/{mode}"), |b| {
                b.iter(|| {
                    measure(
                        &format!("{variant:?}"),
                        &t.system,
                        &property,
                        fast_config().with_threads(threads),
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, travel);
criterion_main!(benches);
