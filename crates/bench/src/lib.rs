//! Shared helpers for the benchmark harness.
//!
//! The benches in `benches/` (one per paper table/figure — see DESIGN.md §3)
//! and the `tables` binary both go through [`measure`], which runs the
//! verifier on a workload and extracts the cost measures the paper's
//! complexity analysis talks about: wall time, symbolic control states,
//! Karp–Miller coverability nodes, counter dimensions, HCD cells, and the
//! static-reduction counters (projection dimensions, dead guards, query
//! pre-solver verdicts). [`BenchRecord`]/[`records_to_json`] turn the same
//! rows into the tracked `BENCH_<tag>.json` documents CI commits for
//! regression comparison.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use has_analysis::PresolveStats;
use has_core::{Outcome, Verifier, VerifierConfig};
use has_ltl::HltlFormula;
use has_model::ArtifactSystem;
use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::time::{Duration, Instant};

/// The cost measures of one verification run.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Label of the instance.
    pub label: String,
    /// Whether the property holds.
    pub holds: bool,
    /// Wall-clock time.
    pub time: Duration,
    /// Worker threads the verifier ran with (`1` = sequential engine).
    pub threads: usize,
    /// Symbolic control states constructed across all per-task VASS.
    pub control_states: usize,
    /// Karp–Miller coverability-graph nodes.
    pub coverability_nodes: usize,
    /// Total counter dimensions (TS-isomorphism types).
    pub counter_dimensions: usize,
    /// Cells of the hierarchical cell decomposition (0 without arithmetic).
    pub hcd_cells: usize,
    /// Counter dimensions summed over all coverability queries before
    /// cone-of-influence projection.
    pub counter_dims_before: usize,
    /// Counter dimensions summed over all coverability queries after
    /// projection (equals `counter_dims_before` when projection is off).
    pub counter_dims_after: usize,
    /// Service guards proven dead and pruned from graph construction.
    pub dead_services: usize,
    /// Karp–Miller nodes served from the shared arena instead of being
    /// re-expanded (0 with sharing off).
    pub km_reused: usize,
    /// Karp–Miller expansions pruned by the arena's subsumption check
    /// (0 with sharing off).
    pub km_subsumed: usize,
    /// Query pre-solver verdict counts (all zero when the pre-solver is
    /// off).
    pub presolve: PresolveStats,
}

impl Measurement {
    /// One formatted row for the `tables` binary.
    pub fn row(&self) -> String {
        format!(
            "{:<42} {:>7} {:>4} {:>9} {:>9} {:>6} {:>9} {:>9} {:>13} {:>7} {:>9.1}",
            self.label,
            if self.holds { "holds" } else { "viol." },
            self.threads,
            self.control_states,
            self.coverability_nodes,
            self.counter_dimensions,
            format!("{}->{}", self.counter_dims_before, self.counter_dims_after),
            format!("{}/{}", self.presolve.decided, self.presolve.queries),
            format!("{}/{}", self.km_reused, self.km_subsumed),
            self.hcd_cells,
            self.time.as_secs_f64() * 1000.0
        )
    }

    /// The header matching [`Measurement::row`].
    pub fn header() -> String {
        format!(
            "{:<42} {:>7} {:>4} {:>9} {:>9} {:>6} {:>9} {:>9} {:>13} {:>7} {:>9}",
            "instance",
            "result",
            "thr",
            "states",
            "km-nodes",
            "dims",
            "proj",
            "presolve",
            "reuse/subsume",
            "cells",
            "time(ms)"
        )
    }
}

/// One machine-readable benchmark record: a row of an experiment, with the
/// cost columns that apply to it. Rows that do not run the verifier (the
/// VASS and cell-decomposition sweeps) leave the inapplicable columns
/// `None`, and the JSON writer omits them.
#[derive(Clone, Debug, Default)]
pub struct BenchRecord {
    /// Experiment name (`table2`, `vass`, …) as accepted by the `tables`
    /// binary.
    pub experiment: String,
    /// Row label within the experiment.
    pub label: String,
    /// Wall-clock time of the row, in milliseconds.
    pub time_ms: f64,
    /// Whether the verified property holds (verifier rows only).
    pub holds: Option<bool>,
    /// Worker threads (verifier rows only).
    pub threads: Option<usize>,
    /// Symbolic control states (verifier rows only).
    pub control_states: Option<usize>,
    /// Karp–Miller coverability nodes.
    pub km_nodes: Option<usize>,
    /// Counter dimensions (verifier rows only).
    pub counter_dims: Option<usize>,
    /// HCD cells (verifier and cell-sweep rows).
    pub hcd_cells: Option<usize>,
    /// Query counter dimensions before projection (verifier rows only).
    pub counter_dims_before: Option<usize>,
    /// Query counter dimensions after projection (verifier rows only).
    pub counter_dims_after: Option<usize>,
    /// Dead service guards pruned (verifier rows only).
    pub dead_services: Option<usize>,
    /// Karp–Miller nodes served from the shared arena (verifier rows only).
    pub km_reused: Option<usize>,
    /// Karp–Miller expansions pruned by subsumption (verifier rows only).
    pub km_subsumed: Option<usize>,
    /// Corpus instances scored (fuzz rows only).
    pub instances: Option<usize>,
    /// Soundness mismatches found (fuzz rows only).
    pub mismatches: Option<usize>,
    /// Runs excused as bounded by the exploration caps (fuzz rows only).
    pub bounded: Option<usize>,
    /// Query pre-solver verdict counts (verifier rows only; omitted when
    /// every counter is zero — e.g. the pre-solver was off).
    pub presolve: Option<PresolveStats>,
}

impl BenchRecord {
    /// A record carrying the full verifier measurement.
    pub fn from_measurement(experiment: &str, m: &Measurement) -> Self {
        BenchRecord {
            experiment: experiment.to_string(),
            label: m.label.clone(),
            time_ms: m.time.as_secs_f64() * 1000.0,
            holds: Some(m.holds),
            threads: Some(m.threads),
            control_states: Some(m.control_states),
            km_nodes: Some(m.coverability_nodes),
            counter_dims: Some(m.counter_dimensions),
            hcd_cells: Some(m.hcd_cells),
            counter_dims_before: Some(m.counter_dims_before),
            counter_dims_after: Some(m.counter_dims_after),
            dead_services: Some(m.dead_services),
            km_reused: Some(m.km_reused),
            km_subsumed: Some(m.km_subsumed),
            presolve: (m.presolve != PresolveStats::default()).then_some(m.presolve),
            ..BenchRecord::default()
        }
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"experiment\":{},\"label\":{},\"time_ms\":{:.3}",
            json_string(&self.experiment),
            json_string(&self.label),
            self.time_ms
        );
        if let Some(holds) = self.holds {
            let _ = write!(out, ",\"holds\":{holds}");
        }
        if let Some(threads) = self.threads {
            let _ = write!(out, ",\"threads\":{threads}");
        }
        if let Some(states) = self.control_states {
            let _ = write!(out, ",\"control_states\":{states}");
        }
        if let Some(nodes) = self.km_nodes {
            let _ = write!(out, ",\"km_nodes\":{nodes}");
        }
        if let Some(dims) = self.counter_dims {
            let _ = write!(out, ",\"counter_dims\":{dims}");
        }
        if let Some(cells) = self.hcd_cells {
            let _ = write!(out, ",\"hcd_cells\":{cells}");
        }
        if let Some(before) = self.counter_dims_before {
            let _ = write!(out, ",\"counter_dims_before\":{before}");
        }
        if let Some(after) = self.counter_dims_after {
            let _ = write!(out, ",\"counter_dims_after\":{after}");
        }
        if let Some(dead) = self.dead_services {
            let _ = write!(out, ",\"dead_services\":{dead}");
        }
        if let Some(reused) = self.km_reused {
            let _ = write!(out, ",\"km_reused\":{reused}");
        }
        if let Some(subsumed) = self.km_subsumed {
            let _ = write!(out, ",\"km_subsumed\":{subsumed}");
        }
        if let Some(instances) = self.instances {
            let _ = write!(out, ",\"instances\":{instances}");
        }
        if let Some(mismatches) = self.mismatches {
            let _ = write!(out, ",\"mismatches\":{mismatches}");
        }
        if let Some(bounded) = self.bounded {
            let _ = write!(out, ",\"bounded\":{bounded}");
        }
        if let Some(p) = self.presolve {
            let _ = write!(
                out,
                ",\"presolve_queries\":{},\"presolve_decided\":{},\
                 \"presolve_control\":{},\"presolve_state_eq\":{},\
                 \"presolve_dfa\":{},\"presolve_circulation\":{},\
                 \"presolve_km_skipped\":{},\"presolve_bounded_dims\":{}",
                p.queries,
                p.decided,
                p.control,
                p.state_eq,
                p.counter_dfa,
                p.circulation,
                p.skipped_builds,
                p.bounded_dims
            );
        }
        out.push('}');
        out
    }
}

/// Escapes a string as a JSON string literal (hand-rolled: the workspace
/// build carries no serialization dependency).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serializes a record set as the `BENCH_<tag>.json` document: a top-level
/// object with the schema marker, the tag, and one record object per row.
pub fn records_to_json(tag: &str, records: &[BenchRecord]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"schema\": \"has-bench-records/1\",\n  \"tag\": {},\n  \"records\": [",
        json_string(tag)
    );
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    ");
        out.push_str(&r.to_json());
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Writes the `BENCH_<tag>.json` document to `path`.
pub fn write_records(path: &Path, tag: &str, records: &[BenchRecord]) -> io::Result<()> {
    std::fs::write(path, records_to_json(tag, records))
}

/// Runs the verifier on one instance and collects the measurement.
pub fn measure(
    label: &str,
    system: &ArtifactSystem,
    property: &HltlFormula,
    config: VerifierConfig,
) -> Measurement {
    let threads = config.threads.max(1);
    let start = Instant::now();
    let outcome: Outcome = Verifier::with_config(system, property, config).verify();
    let time = start.elapsed();
    Measurement {
        label: label.to_string(),
        holds: outcome.holds,
        time,
        threads,
        control_states: outcome.stats.control_states,
        coverability_nodes: outcome.stats.coverability_nodes,
        counter_dimensions: outcome.stats.counter_dimensions,
        hcd_cells: outcome.stats.hcd_cells,
        counter_dims_before: outcome.stats.counter_dims_before,
        counter_dims_after: outcome.stats.counter_dims_after,
        dead_services: outcome.stats.dead_services_pruned,
        km_reused: outcome.stats.km_reused,
        km_subsumed: outcome.stats.km_subsumed,
        presolve: outcome.stats.presolve,
    }
}

/// The engine modes every verification bench reports: the exact sequential
/// path and the parallel path at the default worker count, floored at two
/// workers — even on a single-core machine (or under `HAS_THREADS=1`) the
/// `par` mode must spawn a real pool, since a one-worker "pool" would run
/// inline and skip the fan-out code path entirely.
pub fn engine_modes() -> Vec<(&'static str, usize)> {
    let par = VerifierConfig::default_threads().max(2);
    vec![("seq", 1), ("par", par)]
}

/// The verifier configuration used by the benchmarks: modest caps so the
/// sweeps finish quickly while the *relative* cost ordering remains visible.
pub fn bench_config() -> VerifierConfig {
    VerifierConfig {
        max_successors: 48,
        max_control_states: 3_000,
        km_node_cap: 20_000,
        // Benchmarks pin the sequential engine by default so rows are
        // comparable across machines; the parallel mode is always reported
        // explicitly (see `engine_modes` and EXP-P1).
        threads: 1,
        ..VerifierConfig::default()
    }
}

/// A tighter configuration for the criterion benches and the large
/// hand-written workloads (travel booking): the per-iteration cost stays in
/// the hundreds of milliseconds so timing sweeps remain practical. With
/// these caps the verifier explicitly reports a *bounded* search; see
/// EXPERIMENTS.md on how to re-run with larger budgets.
pub fn fast_config() -> VerifierConfig {
    VerifierConfig {
        max_successors: 24,
        max_control_states: 800,
        km_node_cap: 4_000,
        threads: 1,
        ..VerifierConfig::default()
    }
}

/// The configuration used for `bench_config` callers that also want a bound
/// on coverability-graph size (kept separate so the two knobs can be swept
/// independently in EXPERIMENTS.md).
pub fn capped_km(config: VerifierConfig, cap: usize) -> VerifierConfig {
    VerifierConfig {
        km_node_cap: cap,
        ..config
    }
}
