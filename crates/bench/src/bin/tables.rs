//! Paper-style table harness: prints one measured row per cell of the
//! paper's Tables 1 and 2 plus the figure-level experiments, in the format
//! recorded in EXPERIMENTS.md.
//!
//! Usage:
//! ```text
//! cargo run --release -p has-bench --bin tables            # all experiments
//! cargo run --release -p has-bench --bin tables -- table1  # one experiment
//! ```

use has_arith::{CellSet, LinExpr, Rational};
use has_bench::{bench_config, engine_modes, fast_config, measure, Measurement};
use has_core::{Outcome, Verifier, VerifierConfig};
use has_model::SchemaClass;
use has_vass::{CoverabilityGraph, Vass};
use has_workloads::counters::{counter_gadget, counter_liveness_property};
use has_workloads::generator::GeneratorParams;
use has_workloads::orders::{never_enqueue_property, order_fulfilment, ship_after_quote_property};
use has_workloads::travel::{
    travel_booking, travel_liveness_property, travel_property, TravelVariant,
};

fn grid_params(arithmetic: bool) -> Vec<GeneratorParams> {
    let mut out = Vec::new();
    for class in [
        SchemaClass::Acyclic,
        SchemaClass::LinearlyCyclic,
        SchemaClass::Cyclic,
    ] {
        for artifact_relations in [false, true] {
            out.push(GeneratorParams {
                schema_class: class,
                artifact_relations,
                arithmetic,
                depth: 2,
                width: 1,
                numeric_vars: if arithmetic { 2 } else { 1 },
            });
        }
    }
    out
}

fn table_grid(arithmetic: bool, threads: usize) -> Vec<Measurement> {
    let mut rows = Vec::new();
    for params in grid_params(arithmetic) {
        let generated = params.generate();
        let config = VerifierConfig {
            use_cells: arithmetic,
            ..bench_config()
        }
        .with_threads(threads);
        rows.push(measure(
            &generated.label,
            &generated.system,
            &generated.property,
            config,
        ));
    }
    rows
}

fn exp_table(arithmetic: bool) {
    for (_, threads) in engine_modes() {
        for row in table_grid(arithmetic, threads) {
            println!("{}", row.row());
        }
    }
}

fn exp_table1() {
    println!("== EXP-T1: Table 1 (no arithmetic) — schema class x artifact relations ==");
    println!("{}", Measurement::header());
    exp_table(false);
    println!();
}

fn exp_table2() {
    println!("== EXP-T2: Table 2 (with arithmetic) — schema class x artifact relations ==");
    println!("{}", Measurement::header());
    exp_table(true);
    println!();
}

fn exp_travel() {
    println!("== EXP-F1: travel booking (Appendix A) — buggy vs fixed ==");
    println!("{}", Measurement::header());
    for (_, threads) in engine_modes() {
        for variant in [TravelVariant::Buggy, TravelVariant::Fixed] {
            let t = travel_booking(variant);
            let property = travel_property(&t);
            let row = measure(
                &format!("travel-booking/{variant:?}"),
                &t.system,
                &property,
                fast_config().with_threads(threads),
            );
            println!("{}", row.row());
        }
        // The orders workload doubles as a second realistic process.
        let o = order_fulfilment();
        for (name, property) in [
            ("orders/ship-after-quote", ship_after_quote_property(&o)),
            ("orders/never-enqueue(false)", never_enqueue_property(&o)),
        ] {
            let row = measure(
                name,
                &o.system,
                &property,
                bench_config().with_threads(threads),
            );
            println!("{}", row.row());
        }
    }
    println!();
}

/// EXP-P1 — wall-clock scaling of the parallel engine over the Tables 1/2
/// grids plus the deep-narrow chain. One row per thread count with each
/// workload's total verification time and the speedup relative to the
/// sequential engine. (On a single-core host the speedups hover around
/// 1.0× — the jobs timeshare one CPU.)
///
/// The `deep(d6w1)` column is the family the readiness scheduler exists
/// for: a chain of six tasks has one task per hierarchy level, so PR 3's
/// level barriers exposed almost no job supply per level and serialized the
/// run; the work-stealing scheduler pipelines each task's query jobs with
/// its parent's build instead (DESIGN.md §5.6).
fn exp_scaling() {
    println!("== EXP-P1: parallel engine scaling — speedup vs thread count ==");
    println!(
        "{:<10} {:>8} {:>14} {:>9} {:>14} {:>9} {:>14} {:>9}",
        "threads",
        "workers",
        "table1(ms)",
        "speedup",
        "table2(ms)",
        "speedup",
        "deep(d6w1,ms)",
        "speedup"
    );
    let grid_time = |arithmetic: bool, threads: usize| -> f64 {
        table_grid(arithmetic, threads)
            .iter()
            .map(|m| m.time.as_secs_f64())
            .sum::<f64>()
            * 1000.0
    };
    let deep = GeneratorParams::deep_narrow(6).generate();
    let deep_time = |threads: usize| -> f64 {
        measure(
            &deep.label,
            &deep.system,
            &deep.property,
            fast_config().with_threads(threads),
        )
        .time
        .as_secs_f64()
            * 1000.0
    };
    // Warm-up pass over every workload so first-touch effects (page faults,
    // lazy allocation) do not contaminate the threads = 1 baselines.
    let _ = grid_time(false, 1);
    let _ = grid_time(true, 1);
    let _ = deep_time(1);
    let mut baseline: Option<(f64, f64, f64)> = None;
    for threads in [1usize, 2, 4, 8] {
        let t1 = grid_time(false, threads);
        let t2 = grid_time(true, threads);
        let td = deep_time(threads);
        let (b1, b2, bd) = *baseline.get_or_insert((t1, t2, td));
        println!(
            "{:<10} {:>8} {:>14.1} {:>8.2}x {:>14.1} {:>8.2}x {:>14.1} {:>8.2}x",
            threads,
            threads,
            t1,
            b1 / t1,
            t2,
            b2 / t2,
            td,
            bd / td
        );
    }
    println!();
}

/// EXP-W1 — hierarchical counterexample witnesses (DESIGN.md §5.7): run the
/// violated travel and orders properties with witness retention on and print
/// the reconstructed witness tree — the run prefix, the pump cycle or
/// blocking point, and the per-task nested runs down to the originating
/// task. The verdict and statistics are identical to the retention-off runs
/// of EXP-F1; only the violation report is richer.
fn exp_witness() {
    println!("== EXP-W1: counterexample witness trees — travel (buggy) and orders ==");
    let print_witness = |label: &str, outcome: &Outcome| {
        println!("{label}:  {outcome}");
        match outcome.violation.as_ref().and_then(|v| v.witness.as_ref()) {
            Some(tree) => print!("{tree}"),
            None => println!("  (no witness tree: the property holds)"),
        }
        println!();
    };
    let t = travel_booking(TravelVariant::Buggy);
    // The walkthrough instance: the F-paid liveness property is genuinely
    // violated within the bounded budget, so it yields a full witness tree
    // (run prefix + pump cycle + nested child runs).
    let liveness = travel_liveness_property(&t);
    let outcome = Verifier::with_config(
        &t.system,
        &liveness,
        fast_config().with_witnesses(true),
    )
    .verify();
    print_witness("travel-booking/Buggy vs F(status=PAID)", &outcome);
    // The Appendix A.2 policy: its violation search exhausts the bounded
    // coverability budget (the root's 12 counter dimensions), so this line
    // reads `HOLDS` — a *bounded* search result, kept here deliberately so
    // the walkthrough can show what an exhausted budget looks like.
    let property = travel_property(&t);
    let outcome = Verifier::with_config(
        &t.system,
        &property,
        fast_config().with_witnesses(true),
    )
    .verify();
    print_witness("travel-booking/Buggy vs Appendix A.2 (bounded)", &outcome);

    let o = order_fulfilment();
    let property = never_enqueue_property(&o);
    let outcome = Verifier::with_config(
        &o.system,
        &property,
        bench_config().with_witnesses(true),
    )
    .verify();
    print_witness("orders/never-enqueue(false)", &outcome);
}

fn exp_gadget() {
    println!("== EXP-F2: Theorem 11 counter gadget — HLTL-FO stays tractable ==");
    println!("{}", Measurement::header());
    for d in [1usize, 2, 3] {
        let g = counter_gadget(d);
        let property = counter_liveness_property(&g);
        let row = measure(
            &format!("counter-gadget/d={d}"),
            &g.system,
            &property,
            fast_config(),
        );
        println!("{}", row.row());
    }
    println!();
}

fn exp_vass() {
    println!("== EXP-F3: VASS dimension vs coverability cost ==");
    println!("{:<20} {:>12} {:>12}", "dimension", "km-nodes", "lasso");
    for d in [1usize, 2, 3, 4, 5] {
        let mut v = Vass::new(2, d);
        for i in 0..d {
            let mut up = vec![0i64; d];
            up[i] = 1;
            v.add_action(0, up, 0);
            let mut down = vec![0i64; d];
            down[i] = -1;
            v.add_action(1, down, 1);
        }
        v.add_action(0, vec![0; d], 1);
        let g = CoverabilityGraph::build(&v, 0);
        println!(
            "{:<20} {:>12} {:>12}",
            d,
            g.node_count(),
            v.state_repeated_reachable(0, 0)
        );
    }
    println!();
}

fn exp_cells() {
    println!("== EXP-F4: cell decomposition growth ==");
    println!("{:<20} {:>12}", "numeric vars", "cells");
    for nvars in [1usize, 2, 3, 4, 5] {
        let mut polys: Vec<LinExpr<usize>> = Vec::new();
        for i in 0..nvars {
            polys.push(LinExpr::var(i) - LinExpr::constant(Rational::from_int(i as i64)));
            if i + 1 < nvars {
                polys.push(LinExpr::var(i) - LinExpr::var(i + 1));
            }
        }
        let cells = CellSet::enumerate(&polys).len();
        println!("{:<20} {:>12}", nvars, cells);
    }
    println!();
}

/// The accepted experiment names, in execution order, with their runners.
const EXPERIMENTS: &[(&str, fn())] = &[
    ("table1", exp_table1),
    ("table2", exp_table2),
    ("travel", exp_travel),
    ("witness", exp_witness),
    ("gadget", exp_gadget),
    ("vass", exp_vass),
    ("cells", exp_cells),
    ("scaling", exp_scaling),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let unknown: Vec<&String> = args
        .iter()
        .filter(|a| EXPERIMENTS.iter().all(|(name, _)| name != a))
        .collect();
    if !unknown.is_empty() {
        let accepted: Vec<&str> = EXPERIMENTS.iter().map(|(name, _)| *name).collect();
        eprintln!(
            "error: unknown experiment name(s): {}",
            unknown
                .iter()
                .map(|a| a.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        eprintln!("accepted names: {}", accepted.join(", "));
        std::process::exit(2);
    }
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);
    for (name, run) in EXPERIMENTS {
        if want(name) {
            run();
        }
    }
}
