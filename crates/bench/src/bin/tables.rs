//! Paper-style table harness: prints one measured row per cell of the
//! paper's Tables 1 and 2 plus the figure-level experiments, in the format
//! recorded in EXPERIMENTS.md.
//!
//! Usage:
//! ```text
//! cargo run --release -p has-bench --bin tables            # all experiments
//! cargo run --release -p has-bench --bin tables -- table1  # one experiment
//! cargo run --release -p has-bench --bin tables -- --json pr6 table2 vass
//! #   ... additionally writes BENCH_pr6.json with one machine-readable
//! #   record per printed row (see has_bench::records_to_json)
//! ```

use has_analysis::{analyze, presolve_diagnostics, PresolveStats, Severity};
use has_arith::{CellSet, LinExpr, Rational};
use has_bench::{
    bench_config, engine_modes, fast_config, measure, write_records, BenchRecord, Measurement,
};
use has_core::{Outcome, Verifier, VerifierConfig};
use has_corpus::{fuzz, FuzzOptions};
use has_model::SchemaClass;
use has_vass::{CoverabilityGraph, Vass};
use has_workloads::counters::{counter_gadget, counter_liveness_property};
use has_workloads::generator::GeneratorParams;
use has_workloads::orders::{never_enqueue_property, order_fulfilment, ship_after_quote_property};
use has_workloads::travel::{
    travel_booking, travel_liveness_property, travel_property, TravelVariant,
};
use std::time::Instant;

/// Collects the machine-readable benchmark records alongside the printed
/// rows. Every experiment runner receives the recorder and pushes one
/// [`BenchRecord`] per row; `--json <tag>` writes the accumulated set to
/// `BENCH_<tag>.json` after the selected experiments finish.
#[derive(Default)]
struct Recorder {
    records: Vec<BenchRecord>,
}

impl Recorder {
    fn measurement(&mut self, experiment: &str, m: &Measurement) {
        self.records.push(BenchRecord::from_measurement(experiment, m));
    }

    fn raw(&mut self, record: BenchRecord) {
        self.records.push(record);
    }
}

fn grid_params(arithmetic: bool) -> Vec<GeneratorParams> {
    let mut out = Vec::new();
    for class in [
        SchemaClass::Acyclic,
        SchemaClass::LinearlyCyclic,
        SchemaClass::Cyclic,
    ] {
        for artifact_relations in [false, true] {
            out.push(GeneratorParams {
                schema_class: class,
                artifact_relations,
                arithmetic,
                depth: 2,
                width: 1,
                numeric_vars: if arithmetic { 2 } else { 1 },
            });
        }
    }
    out
}

fn table_grid(arithmetic: bool, threads: usize) -> Vec<Measurement> {
    let mut rows = Vec::new();
    for params in grid_params(arithmetic) {
        let generated = params.generate();
        let config = VerifierConfig {
            use_cells: arithmetic,
            ..bench_config()
        }
        .with_threads(threads);
        rows.push(measure(
            &generated.label,
            &generated.system,
            &generated.property,
            config,
        ));
    }
    rows
}

fn exp_table(name: &str, arithmetic: bool, rec: &mut Recorder) {
    for (_, threads) in engine_modes() {
        for row in table_grid(arithmetic, threads) {
            rec.measurement(name, &row);
            println!("{}", row.row());
        }
    }
}

fn exp_table1(rec: &mut Recorder) {
    println!("== EXP-T1: Table 1 (no arithmetic) — schema class x artifact relations ==");
    println!("{}", Measurement::header());
    exp_table("table1", false, rec);
    println!();
}

fn exp_table2(rec: &mut Recorder) {
    println!("== EXP-T2: Table 2 (with arithmetic) — schema class x artifact relations ==");
    println!("{}", Measurement::header());
    exp_table("table2", true, rec);
    println!();
}

fn exp_travel(rec: &mut Recorder) {
    println!("== EXP-F1: travel booking (Appendix A) — buggy vs fixed ==");
    println!("{}", Measurement::header());
    for (_, threads) in engine_modes() {
        for variant in [TravelVariant::Buggy, TravelVariant::Fixed] {
            let t = travel_booking(variant);
            let property = travel_property(&t);
            let row = measure(
                &format!("travel-booking/{variant:?}"),
                &t.system,
                &property,
                fast_config().with_threads(threads),
            );
            rec.measurement("travel", &row);
            println!("{}", row.row());
        }
        // The orders workload doubles as a second realistic process.
        let o = order_fulfilment();
        for (name, property) in [
            ("orders/ship-after-quote", ship_after_quote_property(&o)),
            ("orders/never-enqueue(false)", never_enqueue_property(&o)),
        ] {
            let row = measure(
                name,
                &o.system,
                &property,
                bench_config().with_threads(threads),
            );
            rec.measurement("travel", &row);
            println!("{}", row.row());
        }
    }
    println!();
}

/// EXP-P1 — wall-clock scaling of the parallel engine over the Tables 1/2
/// grids plus the deep-narrow chain. One row per thread count with each
/// workload's total verification time and the speedup relative to the
/// sequential engine. (On a single-core host the speedups hover around
/// 1.0× — the jobs timeshare one CPU.)
///
/// The `deep(d6w1)` column is the family the readiness scheduler exists
/// for: a chain of six tasks has one task per hierarchy level, so PR 3's
/// level barriers exposed almost no job supply per level and serialized the
/// run; the work-stealing scheduler pipelines each task's query jobs with
/// its parent's build instead (DESIGN.md §5.6).
fn exp_scaling(rec: &mut Recorder) {
    println!("== EXP-P1: parallel engine scaling — speedup vs thread count ==");
    println!(
        "{:<10} {:>8} {:>14} {:>9} {:>14} {:>9} {:>14} {:>9}",
        "threads",
        "workers",
        "table1(ms)",
        "speedup",
        "table2(ms)",
        "speedup",
        "deep(d6w1,ms)",
        "speedup"
    );
    let grid_time = |arithmetic: bool, threads: usize| -> f64 {
        table_grid(arithmetic, threads)
            .iter()
            .map(|m| m.time.as_secs_f64())
            .sum::<f64>()
            * 1000.0
    };
    let deep = GeneratorParams::deep_narrow(6).generate();
    let deep_time = |threads: usize| -> f64 {
        measure(
            &deep.label,
            &deep.system,
            &deep.property,
            fast_config().with_threads(threads),
        )
        .time
        .as_secs_f64()
            * 1000.0
    };
    // Warm-up pass over every workload so first-touch effects (page faults,
    // lazy allocation) do not contaminate the threads = 1 baselines.
    let _ = grid_time(false, 1);
    let _ = grid_time(true, 1);
    let _ = deep_time(1);
    let mut baseline: Option<(f64, f64, f64)> = None;
    for threads in [1usize, 2, 4, 8] {
        let t1 = grid_time(false, threads);
        let t2 = grid_time(true, threads);
        let td = deep_time(threads);
        let (b1, b2, bd) = *baseline.get_or_insert((t1, t2, td));
        for (workload, total) in [("table1", t1), ("table2", t2), ("deep-d6w1", td)] {
            rec.raw(BenchRecord {
                experiment: "scaling".to_string(),
                label: format!("{workload}/threads={threads}"),
                time_ms: total,
                threads: Some(threads),
                ..BenchRecord::default()
            });
        }
        println!(
            "{:<10} {:>8} {:>14.1} {:>8.2}x {:>14.1} {:>8.2}x {:>14.1} {:>8.2}x",
            threads,
            threads,
            t1,
            b1 / t1,
            t2,
            b2 / t2,
            td,
            bd / td
        );
    }
    println!();
}

/// EXP-W1 — hierarchical counterexample witnesses (DESIGN.md §5.7): run the
/// violated travel and orders properties with witness retention on and print
/// the reconstructed witness tree — the run prefix, the pump cycle or
/// blocking point, and the per-task nested runs down to the originating
/// task. The verdict and statistics are identical to the retention-off runs
/// of EXP-F1; only the violation report is richer.
fn exp_witness(rec: &mut Recorder) {
    println!("== EXP-W1: counterexample witness trees — travel (buggy) and orders ==");
    let record = |rec: &mut Recorder, label: &str, outcome: &Outcome, ms: f64| {
        rec.raw(BenchRecord {
            experiment: "witness".to_string(),
            label: label.to_string(),
            time_ms: ms,
            holds: Some(outcome.holds),
            control_states: Some(outcome.stats.control_states),
            km_nodes: Some(outcome.stats.coverability_nodes),
            counter_dims: Some(outcome.stats.counter_dimensions),
            hcd_cells: Some(outcome.stats.hcd_cells),
            ..BenchRecord::default()
        });
    };
    let print_witness = |label: &str, outcome: &Outcome| {
        println!("{label}:  {outcome}");
        match outcome.violation.as_ref().and_then(|v| v.witness.as_ref()) {
            Some(tree) => print!("{tree}"),
            None => println!("  (no witness tree: the property holds)"),
        }
        println!();
    };
    let t = travel_booking(TravelVariant::Buggy);
    // The walkthrough instance: the F-paid liveness property is genuinely
    // violated within the bounded budget, so it yields a full witness tree
    // (run prefix + pump cycle + nested child runs).
    let liveness = travel_liveness_property(&t);
    let start = Instant::now();
    let outcome = Verifier::with_config(
        &t.system,
        &liveness,
        fast_config().with_witnesses(true),
    )
    .verify();
    let label = "travel-booking/Buggy vs F(status=PAID)";
    record(rec, label, &outcome, start.elapsed().as_secs_f64() * 1000.0);
    print_witness(label, &outcome);
    // The Appendix A.2 policy at the deliberately tight `fast_config` caps:
    // this line reads `HOLDS` — a *bounded* search result, kept in the
    // walkthrough to show what an exhausted budget looks like. The violation
    // itself is no longer out of reach: EXP-S1 and `tests/a2_violation.rs`
    // find it within the default search budgets once `max_merge_pairs` is
    // raised to the branching depth the configuration needs.
    let property = travel_property(&t);
    let start = Instant::now();
    let outcome = Verifier::with_config(
        &t.system,
        &property,
        fast_config().with_witnesses(true),
    )
    .verify();
    let label = "travel-booking/Buggy vs Appendix A.2 (bounded)";
    record(rec, label, &outcome, start.elapsed().as_secs_f64() * 1000.0);
    print_witness(label, &outcome);

    let o = order_fulfilment();
    let property = never_enqueue_property(&o);
    let start = Instant::now();
    let outcome = Verifier::with_config(
        &o.system,
        &property,
        bench_config().with_witnesses(true),
    )
    .verify();
    let label = "orders/never-enqueue(false)";
    record(rec, label, &outcome, start.elapsed().as_secs_f64() * 1000.0);
    print_witness(label, &outcome);
}

fn exp_gadget(rec: &mut Recorder) {
    println!("== EXP-F2: Theorem 11 counter gadget — HLTL-FO stays tractable ==");
    println!("{}", Measurement::header());
    for d in [1usize, 2, 3] {
        let g = counter_gadget(d);
        let property = counter_liveness_property(&g);
        let row = measure(
            &format!("counter-gadget/d={d}"),
            &g.system,
            &property,
            fast_config(),
        );
        rec.measurement("gadget", &row);
        println!("{}", row.row());
    }
    println!();
}

fn exp_vass(rec: &mut Recorder) {
    println!("== EXP-F3: VASS dimension vs coverability cost ==");
    println!("{:<20} {:>12} {:>12}", "dimension", "km-nodes", "lasso");
    for d in [1usize, 2, 3, 4, 5] {
        let mut v = Vass::new(2, d);
        for i in 0..d {
            let mut up = vec![0i64; d];
            up[i] = 1;
            v.add_action(0, up, 0);
            let mut down = vec![0i64; d];
            down[i] = -1;
            v.add_action(1, down, 1);
        }
        v.add_action(0, vec![0; d], 1);
        let start = Instant::now();
        let g = CoverabilityGraph::build(&v, 0);
        let lasso = v.state_repeated_reachable(0, 0);
        rec.raw(BenchRecord {
            experiment: "vass".to_string(),
            label: format!("pump-drain/d={d}"),
            time_ms: start.elapsed().as_secs_f64() * 1000.0,
            holds: Some(lasso),
            km_nodes: Some(g.node_count()),
            ..BenchRecord::default()
        });
        println!("{:<20} {:>12} {:>12}", d, g.node_count(), lasso);
    }
    println!();
}

fn exp_cells(rec: &mut Recorder) {
    println!("== EXP-F4: cell decomposition growth ==");
    println!("{:<20} {:>12}", "numeric vars", "cells");
    for nvars in [1usize, 2, 3, 4, 5] {
        let mut polys: Vec<LinExpr<usize>> = Vec::new();
        for i in 0..nvars {
            polys.push(LinExpr::var(i) - LinExpr::constant(Rational::from_int(i as i64)));
            if i + 1 < nvars {
                polys.push(LinExpr::var(i) - LinExpr::var(i + 1));
            }
        }
        let start = Instant::now();
        let cells = CellSet::enumerate(&polys).len();
        rec.raw(BenchRecord {
            experiment: "cells".to_string(),
            label: format!("hcd/nvars={nvars}"),
            time_ms: start.elapsed().as_secs_f64() * 1000.0,
            hcd_cells: Some(cells),
            ..BenchRecord::default()
        });
        println!("{:<20} {:>12}", nvars, cells);
    }
    println!();
}

/// EXP-A1 — the static analyzer over every workload the harness verifies:
/// both travel variants, the orders and counter-gadget systems, and the
/// Tables 1/2 generator grids. Prints each model's full diagnostic report
/// (stable `HASnnn` codes, `outcome.rs`-style rendering), followed by the
/// query pre-solver's `HAS111`–`HAS116` summaries from a capped verifier
/// run (statically decided sub-queries, per-filter refutation counts,
/// certified dimension bounds), and exits with status 1 if any model
/// reports an `Error`-severity finding — which is how CI lints the workload
/// zoo on every push.
fn exp_analyze(rec: &mut Recorder) {
    println!("== EXP-A1: static analysis — diagnostics over all workloads ==");
    let mut errors = 0usize;
    let mut lint = |rec: &mut Recorder,
                    label: &str,
                    system: &has_model::ArtifactSystem,
                    property: Option<&has_ltl::HltlFormula>| {
        let start = Instant::now();
        let report = analyze(system, property);
        let ms = start.elapsed().as_secs_f64() * 1000.0;
        errors += report.with_severity(Severity::Error).count();
        println!("--- {label} ---");
        println!("{report}");
        if let Some(property) = property.filter(|_| !report.has_errors()) {
            // The pre-solver's verdicts are per-query, so they come from a
            // (cheap, capped) verifier run rather than the model alone.
            let outcome =
                Verifier::with_config(system, property, fast_config()).verify();
            for d in presolve_diagnostics(&outcome.stats.presolve) {
                println!("{d}");
            }
        }
        println!();
        rec.raw(BenchRecord {
            experiment: "analyze".to_string(),
            label: label.to_string(),
            time_ms: ms,
            holds: Some(!report.has_errors()),
            ..BenchRecord::default()
        });
    };
    for variant in [TravelVariant::Buggy, TravelVariant::Fixed] {
        let t = travel_booking(variant);
        let property = travel_property(&t);
        lint(rec, &format!("travel-booking/{variant:?}"), &t.system, Some(&property));
    }
    let o = order_fulfilment();
    let property = ship_after_quote_property(&o);
    lint(rec, "orders", &o.system, Some(&property));
    let g = counter_gadget(2);
    let property = counter_liveness_property(&g);
    lint(rec, "counter-gadget/d=2", &g.system, Some(&property));
    for arithmetic in [false, true] {
        for params in grid_params(arithmetic) {
            let generated = params.generate();
            lint(rec, &generated.label, &generated.system, Some(&generated.property));
        }
    }
    if errors > 0 {
        eprintln!("error: {errors} Error-severity diagnostic(s) across the workloads");
        std::process::exit(1);
    }
}

/// EXP-A2 — the headline cone-of-influence measurement: the Appendix A.2
/// policy on the buggy travel instance, whose root carries 12 `TRIPS`
/// counter dimensions, verified with projection off and on at a fixed
/// Karp–Miller budget. Projection drops the per-query dimension (the
/// `proj` column) and collapses the coverability graphs from cap-truncated
/// to complete — the recorded node counts are the before/after pair
/// EXPERIMENTS.md quotes.
fn exp_projection(rec: &mut Recorder) {
    println!("== EXP-A2: dimension cone-of-influence — travel A.2 at fixed KM cap ==");
    println!("{}", Measurement::header());
    let mut nodes = [0usize; 2];
    for (i, projection) in [false, true].into_iter().enumerate() {
        let t = travel_booking(TravelVariant::Buggy);
        let property = travel_property(&t);
        // The pre-solver is pinned off so this experiment isolates the
        // projection axis; EXP-R2 toggles the pre-solver at the same caps.
        let config = VerifierConfig {
            max_successors: 48,
            max_control_states: 20_000,
            km_node_cap: 50_000,
            threads: 1,
            projection,
            presolve: false,
            ..VerifierConfig::default()
        };
        let row = measure(
            &format!("travel-A.2/projection={}", if projection { "on" } else { "off" }),
            &t.system,
            &property,
            config,
        );
        nodes[i] = row.coverability_nodes;
        rec.measurement("projection", &row);
        println!("{}", row.row());
    }
    if nodes[1] > 0 {
        println!(
            "km-node reduction factor: {:.2}x ({} -> {})",
            nodes[0] as f64 / nodes[1] as f64,
            nodes[0],
            nodes[1]
        );
    }
    println!();
}

/// EXP-R1/R2 — the query pre-solver (DESIGN.md §5.11). EXP-R1 replays the
/// Tables 1/2 grids plus the realistic workloads with the pre-solver on and
/// reports, per instance and in aggregate, how many of the per-query
/// coverability/lasso sub-queries the static filters decided without
/// touching Karp–Miller — broken down by refuting filter (control skeleton,
/// state-equation Z-relaxation, counter-abstraction DFA, lasso
/// circulation), plus how many graph builds were skipped outright and how
/// many counter dimensions were certified bounded. EXP-R2 repeats the
/// EXP-A2 fixed-budget travel A.2 measurement with the pre-solver off and
/// on — the before/after pair EXPERIMENTS.md quotes.
fn exp_presolve(rec: &mut Recorder) {
    println!("== EXP-R1: query pre-solver — statically decided sub-queries ==");
    println!("{}", Measurement::header());
    let mut total = PresolveStats::default();
    let mut record = |rec: &mut Recorder, row: &Measurement| {
        total.absorb(&row.presolve);
        rec.measurement("presolve", row);
        println!("{}", row.row());
    };
    for arithmetic in [false, true] {
        for params in grid_params(arithmetic) {
            let generated = params.generate();
            let config = VerifierConfig {
                use_cells: arithmetic,
                ..bench_config()
            };
            let row = measure(
                &generated.label,
                &generated.system,
                &generated.property,
                config,
            );
            record(rec, &row);
        }
    }
    for variant in [TravelVariant::Buggy, TravelVariant::Fixed] {
        let t = travel_booking(variant);
        let property = travel_property(&t);
        let row = measure(
            &format!("travel-booking/{variant:?}"),
            &t.system,
            &property,
            fast_config(),
        );
        record(rec, &row);
    }
    let o = order_fulfilment();
    let row = measure(
        "order-fulfilment/ship-after-quote",
        &o.system,
        &ship_after_quote_property(&o),
        fast_config(),
    );
    record(rec, &row);
    let g = counter_gadget(2);
    let row = measure(
        "counter-gadget/d=2",
        &g.system,
        &counter_liveness_property(&g),
        fast_config(),
    );
    record(rec, &row);
    let decided_pct = if total.queries > 0 {
        100.0 * total.decided as f64 / total.queries as f64
    } else {
        0.0
    };
    println!(
        "decided {}/{} sub-queries ({:.1}%): control {}, state-eq {}, dfa {}, \
         circulation {}; km builds skipped {}; dims certified bounded {}",
        total.decided,
        total.queries,
        decided_pct,
        total.control,
        total.state_eq,
        total.counter_dfa,
        total.circulation,
        total.skipped_builds,
        total.bounded_dims
    );
    println!();

    println!("== EXP-R2: pre-solver off/on — travel A.2 at fixed KM cap ==");
    println!("{}", Measurement::header());
    let mut nodes = [0usize; 2];
    for (i, presolve) in [false, true].into_iter().enumerate() {
        let t = travel_booking(TravelVariant::Buggy);
        let property = travel_property(&t);
        let config = VerifierConfig {
            max_successors: 48,
            max_control_states: 20_000,
            km_node_cap: 50_000,
            threads: 1,
            presolve,
            ..VerifierConfig::default()
        };
        let row = measure(
            &format!("travel-A.2/presolve={}", if presolve { "on" } else { "off" }),
            &t.system,
            &property,
            config,
        );
        nodes[i] = row.coverability_nodes;
        rec.measurement("presolve", &row);
        println!("{}", row.row());
    }
    if nodes[1] > 0 {
        println!(
            "km-node reduction factor: {:.2}x ({} -> {})",
            nodes[0] as f64 / nodes[1] as f64,
            nodes[0],
            nodes[1]
        );
    }
    println!();
}

/// EXP-S1 — the shared incremental Karp–Miller arena (DESIGN.md §5.12):
/// the Appendix A.2 policy on both travel variants at the EXP-A2/R2 fixed
/// budgets, with `max_merge_pairs` raised to 12 so the refinement actually
/// generates the violating `Cancel` configuration (see
/// `tests/a2_violation.rs`), measured with the arena off and on. The
/// verdicts must agree; the `reuse/subsume` column shows where the shared
/// engine's km-node reduction comes from, and the printed factor is the
/// off/on node pair EXPERIMENTS.md quotes.
fn exp_shared(rec: &mut Recorder) {
    println!("== EXP-S1: shared Karp-Miller arena off/on — travel A.2 ==");
    println!("{}", Measurement::header());
    for variant in [TravelVariant::Buggy, TravelVariant::Fixed] {
        let t = travel_booking(variant);
        let property = travel_property(&t);
        let mut nodes = [0usize; 2];
        let mut verdicts = [true; 2];
        for (i, shared) in [false, true].into_iter().enumerate() {
            let config = VerifierConfig {
                max_successors: 48,
                max_control_states: 20_000,
                km_node_cap: 50_000,
                max_merge_pairs: 12,
                threads: 1,
                ..VerifierConfig::default()
            }
            .with_shared_km(shared);
            let row = measure(
                &format!(
                    "travel-A.2/{variant:?}/shared={}",
                    if shared { "on" } else { "off" }
                ),
                &t.system,
                &property,
                config,
            );
            nodes[i] = row.coverability_nodes;
            verdicts[i] = row.holds;
            rec.measurement("shared", &row);
            println!("{}", row.row());
        }
        if verdicts[0] != verdicts[1] {
            eprintln!("error: shared and unshared engines disagree on travel/{variant:?}");
            std::process::exit(1);
        }
        if nodes[1] > 0 {
            println!(
                "km-node reduction factor ({variant:?}): {:.2}x ({} -> {})",
                nodes[0] as f64 / nodes[1] as f64,
                nodes[0],
                nodes[1]
            );
        }
    }
    println!();
}

/// EXP-C1/C2 — differential fuzzing of the verifier against the seeded
/// ground-truth corpus (DESIGN.md §5.10): every sampled instance carries a
/// certificate (clean by construction, or exactly one planted violation with
/// its kind and originating task), and every instance runs through the full
/// configuration matrix — threads × projection × presolve × witnesses ×
/// shared Karp–Miller — with each
/// reconstructed witness tree replayed through the `has-sim` executor and
/// judged by the runtime monitor. Prints the per-certificate-kind scoreboard
/// and exits with status 1 on any soundness mismatch — which is how CI
/// scores the verifier on every push. `HAS_FUZZ_DEEP=1` switches from the
/// smoke batch (EXP-C1) to the deep sweep (EXP-C2, ≥1,000 instances).
fn exp_fuzz(rec: &mut Recorder) {
    let deep = std::env::var("HAS_FUZZ_DEEP").map(|v| v == "1").unwrap_or(false);
    // The sharing axis doubled the matrix to 32 points, so the smoke batch
    // stays at 12 instances (two full plant rotations, so every certificate
    // kind is still scored evenly) to remain within CI's `timeout 120`
    // (~15s release on a single core); the deep sweep covers the acceptance
    // bar of ≥1,000 instances.
    let opts = FuzzOptions {
        count: if deep { 1200 } else { 12 },
        ..FuzzOptions::default()
    };
    println!(
        "== EXP-C{}: differential fuzzing — {} corpus instances (seed {:#x}) ==",
        if deep { 2 } else { 1 },
        opts.count,
        opts.seed
    );
    let start = Instant::now();
    let report = fuzz(&opts);
    let ms = start.elapsed().as_secs_f64() * 1000.0;
    println!(
        "{:<12} {:>6} {:>8} {:>8} {:>8}",
        "certificate", "runs", "agreed", "bounded", "recall"
    );
    for (name, score) in [
        ("clean", report.clean),
        ("lasso", report.lasso),
        ("blocking", report.blocking),
        ("returning", report.returning),
    ] {
        println!(
            "{:<12} {:>6} {:>8} {:>8} {:>7.1}%",
            name,
            score.runs,
            score.agreed,
            score.bounded,
            score.recall() * 100.0
        );
        rec.raw(BenchRecord {
            experiment: "fuzz".to_string(),
            label: format!("fuzz/{name}"),
            time_ms: ms / 4.0,
            holds: Some(score.agreed + score.bounded == score.runs),
            instances: Some(score.runs),
            mismatches: Some(score.runs - score.agreed - score.bounded),
            bounded: Some(score.bounded),
            ..BenchRecord::default()
        });
    }
    println!(
        "instances {}  runs {}  witness replays {}  bounded {}  mismatches {}  ({:.1}s)",
        report.instances,
        report.runs,
        report.replays,
        report.bounded(),
        report.mismatches.len(),
        ms / 1000.0
    );
    rec.raw(BenchRecord {
        experiment: "fuzz".to_string(),
        label: format!("fuzz/total(seed={:#x},count={})", opts.seed, opts.count),
        time_ms: ms,
        holds: Some(report.sound()),
        instances: Some(report.instances),
        mismatches: Some(report.mismatches.len()),
        bounded: Some(report.bounded()),
        ..BenchRecord::default()
    });
    println!();
    if !report.sound() {
        for m in &report.mismatches {
            eprintln!(
                "MISMATCH {} [{}] ({}): {}\n  params    {:?}\n  minimized {:?}",
                m.label, m.plant, m.at, m.detail, m.params, m.minimized
            );
        }
        eprintln!(
            "error: {} soundness mismatch(es) against the ground-truth corpus",
            report.mismatches.len()
        );
        std::process::exit(1);
    }
}

/// An experiment runner: records its rows into the shared recorder.
type ExperimentFn = fn(&mut Recorder);

/// The accepted experiment names, in execution order, with their runners.
const EXPERIMENTS: &[(&str, ExperimentFn)] = &[
    ("table1", exp_table1),
    ("table2", exp_table2),
    ("travel", exp_travel),
    ("witness", exp_witness),
    ("gadget", exp_gadget),
    ("vass", exp_vass),
    ("cells", exp_cells),
    ("scaling", exp_scaling),
    ("analyze", exp_analyze),
    ("projection", exp_projection),
    ("presolve", exp_presolve),
    ("shared", exp_shared),
    ("fuzz", exp_fuzz),
];

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--json <tag>` writes BENCH_<tag>.json next to the working directory
    // in addition to the printed tables. Parsed (and removed) before the
    // experiment-name check below.
    let mut json_tag: Option<String> = None;
    if let Some(pos) = args.iter().position(|a| a == "--json") {
        if pos + 1 >= args.len() {
            eprintln!("error: --json requires a tag argument (e.g. --json pr6)");
            std::process::exit(2);
        }
        let tag = args[pos + 1].clone();
        let tag_ok = !tag.is_empty()
            && tag
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
        if !tag_ok {
            eprintln!("error: --json tag must be non-empty [A-Za-z0-9._-], got {tag:?}");
            std::process::exit(2);
        }
        args.drain(pos..=pos + 1);
        json_tag = Some(tag);
    }
    let unknown: Vec<&String> = args
        .iter()
        .filter(|a| EXPERIMENTS.iter().all(|(name, _)| name != a))
        .collect();
    if !unknown.is_empty() {
        let accepted: Vec<&str> = EXPERIMENTS.iter().map(|(name, _)| *name).collect();
        eprintln!(
            "error: unknown experiment name(s): {}",
            unknown
                .iter()
                .map(|a| a.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        );
        eprintln!("accepted names: {}", accepted.join(", "));
        std::process::exit(2);
    }
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name);
    let mut recorder = Recorder::default();
    for (name, run) in EXPERIMENTS {
        if want(name) {
            run(&mut recorder);
        }
    }
    if let Some(tag) = json_tag {
        let path = std::path::PathBuf::from(format!("BENCH_{tag}.json"));
        match write_records(&path, &tag, &recorder.records) {
            Ok(()) => eprintln!(
                "wrote {} record(s) to {}",
                recorder.records.len(),
                path.display()
            ),
            Err(err) => {
                eprintln!("error: failed to write {}: {err}", path.display());
                std::process::exit(1);
            }
        }
    }
}
