//! Scripted re-execution of prescribed runs (witness replay).
//!
//! The randomized executor explores; the replayer *follows orders*: a
//! [`RunScript`] prescribes, per task instance, the exact sequence of moves
//! (internal services by index, child openings with the child's own script,
//! child closings), and [`replay`] executes it under the concrete
//! operational semantics — the same firing rules as [`Executor::run`],
//! including valuation sampling for unconstrained variables.
//!
//! This is what grounds a symbolic counterexample: `has-corpus` converts a
//! reconstructed witness tree into a script, replays it here, and hands the
//! recorded [`TreeOfRuns`] to [`monitor_property`](crate::monitor_property)
//! to confirm the claimed violation on a real run. Because free variables
//! are *sampled* subject to each post-condition, a single attempt can fail
//! on an unlucky draw; [`replay_with_retries`] sweeps seeds.
//!
//! HLTL-FO properties are evaluated on *local* runs, so the replayer may
//! schedule each child's moves en bloc right after its opening — any
//! interleaving of independent instances records the same per-task traces.

use crate::execution::{ExecutionConfig, Executor, TaskInstance};
use crate::trace::TreeOfRuns;
use has_data::DatabaseInstance;
use has_model::{ArtifactSystem, TaskId};
use std::fmt;

/// One prescribed move of a [`RunScript`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScriptMove {
    /// Fire the instance's internal service with this index.
    Internal(usize),
    /// Open a child task and immediately execute its prescribed run.
    Open {
        /// The child task to open.
        child: TaskId,
        /// The child instance's own prescribed run.
        script: RunScript,
    },
    /// Close a currently active child (applies its output mapping).
    Close(TaskId),
}

/// A prescribed run of one task instance: the moves to execute, in order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunScript {
    /// The moves, in execution order.
    pub moves: Vec<ScriptMove>,
}

/// Why a scripted replay attempt failed: the move that could not be fired
/// (condition unsatisfied, no satisfying valuation sampled, or the child to
/// close not active).
#[derive(Clone, Debug)]
pub struct ReplayError {
    /// The task whose script failed.
    pub task: TaskId,
    /// Index of the failing move within that task's script.
    pub move_index: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "replay failed at move {} of task {:?}: {}",
            self.move_index, self.task, self.reason
        )
    }
}

impl std::error::Error for ReplayError {}

/// Executes a prescribed run of the root task on a concrete database,
/// returning the recorded tree of local runs.
///
/// The script drives the same firing rules as the randomized executor;
/// `config.seed` only influences how unconstrained variables are sampled
/// when solving pre/post-conditions. `config.max_steps` is ignored — the
/// script's length bounds the run.
pub fn replay(
    system: &ArtifactSystem,
    db: &DatabaseInstance,
    script: &RunScript,
    config: ExecutionConfig,
) -> Result<TreeOfRuns, ReplayError> {
    let mut exec = Executor::new(system, db, config);
    let mut tree = TreeOfRuns::default();
    let root_instance = exec.init_root(&mut tree);
    let mut instances: Vec<TaskInstance> = vec![root_instance];
    run_script(&mut exec, &mut instances, &mut tree, 0, script)?;
    Ok(tree)
}

/// Replays the script with `attempts` consecutive sampling seeds
/// (`config.seed`, `config.seed + 1`, …), returning the first successful
/// tree or the last attempt's error.
pub fn replay_with_retries(
    system: &ArtifactSystem,
    db: &DatabaseInstance,
    script: &RunScript,
    config: ExecutionConfig,
    attempts: u64,
) -> Result<TreeOfRuns, ReplayError> {
    let mut last = None;
    for k in 0..attempts.max(1) {
        let attempt = ExecutionConfig {
            seed: config.seed.wrapping_add(k),
            ..config.clone()
        };
        match replay(system, db, script, attempt) {
            Ok(tree) => return Ok(tree),
            Err(e) => last = Some(e),
        }
    }
    Err(last.expect("at least one attempt"))
}

/// Executes one instance's script. `node` identifies the instance by its
/// trace-node index (stable across the instance vector's mutations).
fn run_script(
    exec: &mut Executor<'_>,
    instances: &mut Vec<TaskInstance>,
    tree: &mut TreeOfRuns,
    node: usize,
    script: &RunScript,
) -> Result<(), ReplayError> {
    for (move_index, mv) in script.moves.iter().enumerate() {
        let Some(idx) = instances.iter().position(|i| i.node == node) else {
            return Err(ReplayError {
                task: tree.nodes[node].task,
                move_index,
                reason: "instance no longer active".to_string(),
            });
        };
        let task = instances[idx].task;
        let fail = |reason: String| ReplayError {
            task,
            move_index,
            reason,
        };
        match mv {
            ScriptMove::Internal(service_idx) => {
                if !exec.fire_internal(idx, *service_idx, instances, tree) {
                    return Err(fail(format!(
                        "internal service {service_idx} not fireable \
                         (precondition false or no satisfying valuation sampled)"
                    )));
                }
            }
            ScriptMove::Open { child, script } => {
                if !exec.fire_open(idx, *child, instances, tree) {
                    return Err(fail(format!(
                        "child {child:?} not openable (opening condition false \
                         or already opened this segment)"
                    )));
                }
                let child_node = instances.last().expect("fire_open pushed").node;
                run_script(exec, instances, tree, child_node, script)?;
            }
            ScriptMove::Close(child) => {
                let Some(pos) = instances[idx]
                    .active_children
                    .iter()
                    .position(|(c, _)| c == child)
                else {
                    return Err(fail(format!("child {child:?} is not active")));
                };
                if !exec.fire_close(idx, pos, instances, tree) {
                    return Err(fail(format!(
                        "child {child:?} not closable (active grandchildren \
                         or closing condition false)"
                    )));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monitor_property;
    use has_data::{DatabaseGenerator, GeneratorConfig};
    use has_workloads::orders::{order_fulfilment, ship_after_quote_property};

    /// A hand-written script against the orders workload: fire the first
    /// internal service of the root a few times. The script either replays
    /// (recording one step per move) or fails with a precise error.
    #[test]
    fn scripted_internal_moves_replay_or_fail_precisely() {
        let o = order_fulfilment();
        let mut generator = DatabaseGenerator::new(GeneratorConfig::default());
        let db = generator.generate(&o.system.schema.database);
        let script = RunScript {
            moves: vec![ScriptMove::Internal(0); 3],
        };
        match replay_with_retries(&o.system, &db, &script, ExecutionConfig::default(), 16) {
            Ok(tree) => {
                // Opening step + three internal steps on the root trace.
                assert_eq!(tree.root().steps.len(), 4);
                // A prescribed prefix of a legal execution satisfies the
                // system's safety property.
                let property = ship_after_quote_property(&o);
                assert!(monitor_property(&o.system, &db, &tree, &property));
            }
            Err(e) => {
                assert_eq!(e.task, o.root);
                assert!(e.reason.contains("internal service"), "{e}");
            }
        }
    }

    /// An out-of-range child close fails with `not active` instead of
    /// panicking.
    #[test]
    fn closing_an_unopened_child_is_reported() {
        let o = order_fulfilment();
        let mut generator = DatabaseGenerator::new(GeneratorConfig::default());
        let db = generator.generate(&o.system.schema.database);
        let some_child = o.system.schema.task(o.root).children[0];
        let script = RunScript {
            moves: vec![ScriptMove::Close(some_child)],
        };
        let err = replay(&o.system, &db, &script, ExecutionConfig::default()).unwrap_err();
        assert!(err.reason.contains("not active"), "{err}");
    }
}
