//! Recorded trees of local runs.

use has_data::Valuation;
use has_model::{ServiceRef, TaskId};

/// One recorded step of a local run: the service that fired and the task's
/// valuation immediately afterwards. Steps that open a child carry the index
/// of the child's run node.
#[derive(Clone, Debug)]
pub struct Step {
    /// The service observed at this position.
    pub service: ServiceRef,
    /// The task's valuation after the step.
    pub valuation: Valuation,
    /// For child-opening steps, the node index of the spawned child run.
    pub child: Option<usize>,
}

/// The recorded local run of one task invocation.
#[derive(Clone, Debug)]
pub struct TaskTrace {
    /// The task.
    pub task: TaskId,
    /// The steps, starting with the opening service.
    pub steps: Vec<Step>,
    /// Whether the run ended with the task's closing service.
    pub returned: bool,
}

impl TaskTrace {
    /// Number of recorded positions.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` if no step was recorded (never the case for runs
    /// produced by the executor, which always records the opening).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// A tree of local runs: all task invocations recorded during one execution,
/// linked parent-to-child through the opening steps.
#[derive(Clone, Debug, Default)]
pub struct TreeOfRuns {
    /// All run nodes; index 0 is the root task's run.
    pub nodes: Vec<TaskTrace>,
}

impl TreeOfRuns {
    /// The root run.
    pub fn root(&self) -> &TaskTrace {
        &self.nodes[0]
    }

    /// Total number of recorded steps across all runs.
    pub fn total_steps(&self) -> usize {
        self.nodes.iter().map(TaskTrace::len).sum()
    }

    /// Number of task invocations.
    pub fn invocation_count(&self) -> usize {
        self.nodes.len()
    }

    /// All runs of a given task.
    pub fn runs_of(&self, task: TaskId) -> impl Iterator<Item = &TaskTrace> {
        self.nodes.iter().filter(move |n| n.task == task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_accessors() {
        let tree = TreeOfRuns {
            nodes: vec![
                TaskTrace {
                    task: TaskId(0),
                    steps: vec![Step {
                        service: ServiceRef::Opening(TaskId(0)),
                        valuation: Valuation::new(),
                        child: None,
                    }],
                    returned: false,
                },
                TaskTrace {
                    task: TaskId(1),
                    steps: vec![],
                    returned: true,
                },
            ],
        };
        assert_eq!(tree.root().task, TaskId(0));
        assert_eq!(tree.total_steps(), 1);
        assert_eq!(tree.invocation_count(), 2);
        assert_eq!(tree.runs_of(TaskId(1)).count(), 1);
        assert!(tree.nodes[1].is_empty());
        assert!(!tree.root().is_empty());
    }
}
