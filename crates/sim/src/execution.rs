//! Randomized concrete execution of artifact systems.

use crate::trace::{Step, TaskTrace, TreeOfRuns};
use has_data::{eval_condition, DatabaseInstance, Valuation, Value};
use has_model::{
    ArtifactSchema, ArtifactSystem, Atom, Condition, ServiceRef, TaskId, Term, VarId, VarSort,
};
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// Configuration of the randomized executor.
#[derive(Clone, Debug)]
pub struct ExecutionConfig {
    /// Maximum number of global steps to execute.
    pub max_steps: usize,
    /// Number of random valuation samples tried when solving a
    /// post-condition.
    pub post_samples: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ExecutionConfig {
    fn default() -> Self {
        ExecutionConfig {
            max_steps: 200,
            post_samples: 400,
            seed: 1,
        }
    }
}

/// The kind of step the executor fired (for reporting).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepKind {
    /// An internal service of some task.
    Internal,
    /// A child task was opened.
    Open,
    /// A child task returned.
    Close,
}

/// A live task instance during execution.
#[derive(Clone, Debug)]
pub struct TaskInstance {
    /// The task.
    pub task: TaskId,
    /// Current valuation of the task's variables.
    pub valuation: Valuation,
    /// Contents of the artifact relation.
    pub set: Vec<Vec<Value>>,
    /// Children opened in the current segment (task ids).
    pub segment_children: BTreeSet<TaskId>,
    /// Currently active children: (task, node index in the tree).
    pub active_children: Vec<(TaskId, usize)>,
    /// Index of this instance's trace node in the tree.
    pub node: usize,
}

/// Randomized executor producing trees of local runs.
pub struct Executor<'a> {
    system: &'a ArtifactSystem,
    db: &'a DatabaseInstance,
    config: ExecutionConfig,
    rng: StdRng,
}

impl<'a> Executor<'a> {
    /// Creates an executor over a concrete database.
    pub fn new(system: &'a ArtifactSystem, db: &'a DatabaseInstance, config: ExecutionConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        Executor {
            system,
            db,
            config,
            rng,
        }
    }

    /// Sets up the tree's root node and the root task instance (shared
    /// between the randomized executor and the scripted replayer).
    pub(crate) fn init_root(&mut self, tree: &mut TreeOfRuns) -> TaskInstance {
        let schema = &self.system.schema;
        let root = schema.root;
        tree.nodes.push(TaskTrace {
            task: root,
            steps: Vec::new(),
            returned: false,
        });
        let mut root_instance = TaskInstance {
            task: root,
            valuation: Valuation::new(),
            set: Vec::new(),
            segment_children: BTreeSet::new(),
            active_children: Vec::new(),
            node: 0,
        };
        // The root's input variables receive arbitrary values subject to Π.
        let input_vars = schema.task(root).input_vars.clone();
        if let Some(v) =
            self.solve_condition(&Valuation::new(), &input_vars, &self.system.precondition.clone())
        {
            root_instance.valuation = v;
        }
        tree.nodes[0].steps.push(Step {
            service: ServiceRef::Opening(root),
            valuation: root_instance.valuation.clone(),
            child: None,
        });
        root_instance
    }

    /// Runs one randomized execution and returns the recorded tree of local
    /// runs.
    pub fn run(&mut self) -> TreeOfRuns {
        let mut tree = TreeOfRuns::default();
        let root_instance = self.init_root(&mut tree);

        // The stack of active instances: the root plus any transitively open
        // children. Steps pick a random active instance and a random enabled
        // move.
        let mut instances: Vec<TaskInstance> = vec![root_instance];
        for _ in 0..self.config.max_steps {
            if instances.is_empty() {
                break;
            }
            let idx = self.rng.random_range(0..instances.len());
            if !self.step_instance(idx, &mut instances, &mut tree) {
                // No move enabled for that instance; try another a few times,
                // giving up if nothing is enabled anywhere.
                let any = (0..instances.len())
                    .any(|i| self.step_instance(i, &mut instances, &mut tree));
                if !any {
                    break;
                }
            }
        }
        tree
    }

    /// Attempts one step of the given instance. Returns `true` if a step was
    /// taken.
    fn step_instance(
        &mut self,
        idx: usize,
        instances: &mut Vec<TaskInstance>,
        tree: &mut TreeOfRuns,
    ) -> bool {
        let schema = &self.system.schema;
        let task_id = instances[idx].task;
        let task = schema.task(task_id);

        // Candidate moves in random order: internal services, child
        // openings, child closings.
        #[derive(Clone, Copy)]
        enum Move {
            Internal(usize),
            Open(TaskId),
            Close(usize), // index into active_children
        }
        let mut moves: Vec<Move> = Vec::new();
        if instances[idx].active_children.is_empty() {
            for i in 0..task.internal_services.len() {
                moves.push(Move::Internal(i));
            }
        }
        for &child in &task.children {
            if !instances[idx].segment_children.contains(&child) {
                moves.push(Move::Open(child));
            }
        }
        for i in 0..instances[idx].active_children.len() {
            moves.push(Move::Close(i));
        }
        //

        while !moves.is_empty() {
            let pick = *moves.choose(&mut self.rng).expect("non-empty");
            let taken = match pick {
                Move::Internal(i) => self.fire_internal(idx, i, instances, tree),
                Move::Open(child) => self.fire_open(idx, child, instances, tree),
                Move::Close(ci) => self.fire_close(idx, ci, instances, tree),
            };
            if taken {
                return true;
            }
            moves.retain(|m| !matches!((m, &pick),
                (Move::Internal(a), Move::Internal(b)) if a == b));
            match pick {
                Move::Internal(_) => {}
                Move::Open(c) => moves.retain(|m| !matches!(m, Move::Open(x) if *x == c)),
                Move::Close(ci) => moves.retain(|m| !matches!(m, Move::Close(x) if *x == ci)),
            }
        }
        false
    }

    pub(crate) fn fire_internal(
        &mut self,
        idx: usize,
        service_idx: usize,
        instances: &mut [TaskInstance],
        tree: &mut TreeOfRuns,
    ) -> bool {
        let schema = &self.system.schema;
        let task_id = instances[idx].task;
        let task = schema.task(task_id);
        let service = &task.internal_services[service_idx];
        if !eval_condition(schema, self.db, &instances[idx].valuation, &service.pre) {
            return false;
        }
        // Build the next valuation: inputs preserved, everything else
        // re-sampled subject to the post-condition.
        let free: Vec<VarId> = task
            .variables
            .iter()
            .copied()
            .filter(|v| !task.input_vars.contains(v))
            .collect();
        let base = instances[idx].valuation.project(&task.input_vars);
        let Some(mut next) = self.solve_condition(&base, &free, &service.post) else {
            return false;
        };
        // Artifact relation updates.
        if let Some(ar) = &task.artifact_relation {
            let current_tuple: Vec<Value> = ar
                .tuple
                .iter()
                .map(|v| instances[idx].valuation.get(schema, *v))
                .collect();
            if service.delta.retrieves() {
                let mut pool = instances[idx].set.clone();
                if service.delta.inserts() {
                    pool.push(current_tuple.clone());
                }
                if pool.is_empty() {
                    return false;
                }
                let chosen = pool.choose(&mut self.rng).expect("non-empty pool").clone();
                if service.delta.inserts() {
                    instances[idx].set.push(current_tuple);
                }
                instances[idx].set.retain(|t| *t != chosen);
                for (var, value) in ar.tuple.iter().zip(&chosen) {
                    next.set(*var, *value);
                }
            } else if service.delta.inserts() {
                instances[idx].set.push(current_tuple);
            }
        }
        instances[idx].valuation = next.clone();
        instances[idx].segment_children.clear();
        let node = instances[idx].node;
        tree.nodes[node].steps.push(Step {
            service: ServiceRef::Internal(task_id, service_idx),
            valuation: next,
            child: None,
        });
        true
    }

    pub(crate) fn fire_open(
        &mut self,
        idx: usize,
        child: TaskId,
        instances: &mut Vec<TaskInstance>,
        tree: &mut TreeOfRuns,
    ) -> bool {
        let schema = &self.system.schema;
        let child_task = schema.task(child);
        if !eval_condition(
            schema,
            self.db,
            &instances[idx].valuation,
            &child_task.opening.pre,
        ) {
            return false;
        }
        // Child initial valuation: inputs from the parent, everything else
        // at the sort default.
        let mut valuation = Valuation::new();
        for (cv, pv) in &child_task.opening.input_map {
            valuation.set(*cv, instances[idx].valuation.get(schema, *pv));
        }
        let node = tree.nodes.len();
        tree.nodes.push(TaskTrace {
            task: child,
            steps: vec![Step {
                service: ServiceRef::Opening(child),
                valuation: valuation.clone(),
                child: None,
            }],
            returned: false,
        });
        let parent_node = instances[idx].node;
        tree.nodes[parent_node].steps.push(Step {
            service: ServiceRef::Opening(child),
            valuation: instances[idx].valuation.clone(),
            child: Some(node),
        });
        instances[idx].segment_children.insert(child);
        instances[idx].active_children.push((child, node));
        instances.push(TaskInstance {
            task: child,
            valuation,
            set: Vec::new(),
            segment_children: BTreeSet::new(),
            active_children: Vec::new(),
            node,
        });
        true
    }

    pub(crate) fn fire_close(
        &mut self,
        idx: usize,
        child_pos: usize,
        instances: &mut Vec<TaskInstance>,
        tree: &mut TreeOfRuns,
    ) -> bool {
        let schema = &self.system.schema;
        let (child_id, child_node) = instances[idx].active_children[child_pos];
        // Find the live instance of the child.
        let Some(child_idx) = instances
            .iter()
            .position(|i| i.node == child_node)
        else {
            return false;
        };
        // The child itself must have no active children and satisfy its
        // closing condition.
        if !instances[child_idx].active_children.is_empty() {
            return false;
        }
        let child_task = schema.task(child_id);
        if !eval_condition(
            schema,
            self.db,
            &instances[child_idx].valuation,
            &child_task.closing.pre,
        ) {
            return false;
        }
        // Apply the output mapping to the parent.
        let child_val = instances[child_idx].valuation.clone();
        for (pv, cv) in &child_task.closing.output_map {
            let overwrite = match schema.variable(*pv).sort {
                VarSort::Numeric => true,
                VarSort::Id => instances[idx].valuation.get(schema, *pv).is_null(),
            };
            if overwrite {
                instances[idx]
                    .valuation
                    .set(*pv, child_val.get(schema, *cv));
            }
        }
        tree.nodes[child_node].returned = true;
        tree.nodes[child_node].steps.push(Step {
            service: ServiceRef::Closing(child_id),
            valuation: child_val,
            child: None,
        });
        let parent_node = instances[idx].node;
        tree.nodes[parent_node].steps.push(Step {
            service: ServiceRef::Closing(child_id),
            valuation: instances[idx].valuation.clone(),
            child: None,
        });
        instances[idx].active_children.remove(child_pos);
        instances.remove(child_idx);
        true
    }

    /// Samples a valuation of `free_vars` extending `base` that satisfies the
    /// condition on the concrete database, or `None` after the configured
    /// number of attempts.
    ///
    /// Blind joint sampling has vanishing success probability on wide
    /// conjunctions (five independently pinned variables already put one
    /// sample below 1e-4), so every other attempt is *hinted*: variables
    /// pinned by a positive conjunct are proposed at their pinned value.
    /// Hints only shape the proposal distribution — acceptance is still
    /// decided by `eval_condition`, so unsatisfiable hints cost nothing and
    /// the un-hinted attempts keep exploring the full space.
    pub(crate) fn solve_condition(
        &mut self,
        base: &Valuation,
        free_vars: &[VarId],
        condition: &Condition,
    ) -> Option<Valuation> {
        let schema = &self.system.schema;
        let mut atoms = Vec::new();
        positive_conjuncts(condition, &mut atoms);
        // Candidate value pools.
        let ids: Vec<Value> = self
            .db
            .active_domain()
            .into_iter()
            .filter(|v| v.as_id().is_some())
            .collect();
        let mut numerics: Vec<Value> = self
            .db
            .active_domain()
            .into_iter()
            .filter(|v| v.as_num().is_some())
            .collect();
        numerics.extend((0..6).map(Value::num));
        for attempt in 0..self.config.post_samples {
            let hints = if attempt % 2 == 0 && !atoms.is_empty() {
                condition_hints(&mut self.rng, self.db, schema, base, free_vars, &atoms)
            } else {
                BTreeMap::new()
            };
            let mut candidate = base.clone();
            for &v in free_vars {
                let value = if let Some(hinted) = hints.get(&v) {
                    *hinted
                } else {
                    match schema.variable(v).sort {
                        VarSort::Id => {
                            if self.rng.random_bool(0.3) || ids.is_empty() {
                                Value::Null
                            } else {
                                *ids.choose(&mut self.rng).expect("non-empty")
                            }
                        }
                        VarSort::Numeric => *numerics.choose(&mut self.rng).expect("non-empty"),
                    }
                };
                candidate.set(v, value);
            }
            if eval_condition(schema, self.db, &candidate, condition) {
                return Some(candidate);
            }
        }
        None
    }
}

/// Collects the positive atomic conjuncts of a condition: the `Atom` leaves
/// reachable through `And` nodes only. `Not`/`Or` subtrees are skipped —
/// their atoms are not implied by the condition, so they must not pin
/// proposal values.
fn positive_conjuncts<'c>(condition: &'c Condition, out: &mut Vec<&'c Atom>) {
    match condition {
        Condition::And(parts) => {
            for part in parts {
                positive_conjuncts(part, out);
            }
        }
        Condition::Atom(atom) => out.push(atom),
        _ => {}
    }
}

/// Derives per-variable proposal values from positive conjuncts: `v = null`
/// and `v = c` pin `v` directly, a positive relation atom pins its variable
/// arguments to a randomly chosen row of that relation, and `v = w`
/// equalities propagate known bindings (from hints or from `base` for
/// non-free variables) through short chains.
fn condition_hints(
    rng: &mut StdRng,
    db: &DatabaseInstance,
    schema: &ArtifactSchema,
    base: &Valuation,
    free_vars: &[VarId],
    atoms: &[&Atom],
) -> BTreeMap<VarId, Value> {
    let mut hints: BTreeMap<VarId, Value> = BTreeMap::new();
    for atom in atoms {
        if let Atom::Eq(a, b) = atom {
            match (a, b) {
                (Term::Var(v), Term::Null) | (Term::Null, Term::Var(v)) => {
                    hints.insert(*v, Value::Null);
                }
                (Term::Var(v), Term::Const(c)) | (Term::Const(c), Term::Var(v)) => {
                    hints.insert(*v, Value::Num(*c));
                }
                _ => {}
            }
        }
    }
    for atom in atoms {
        if let Atom::Relation { relation, args } = atom {
            let n = db.cardinality(*relation);
            if n == 0 {
                continue;
            }
            let pick = rng.random_range(0..n);
            if let Some(row) = db.rows(*relation).nth(pick) {
                for (term, value) in args.iter().zip(row.iter()) {
                    if let Term::Var(v) = term {
                        hints.entry(*v).or_insert(*value);
                    }
                }
            }
        }
    }
    for _ in 0..2 {
        for atom in atoms {
            if let Atom::Eq(Term::Var(a), Term::Var(b)) = atom {
                let known = |v: VarId, hints: &BTreeMap<VarId, Value>| {
                    hints
                        .get(&v)
                        .copied()
                        .or_else(|| (!free_vars.contains(&v)).then(|| base.get(schema, v)))
                };
                match (known(*a, &hints), known(*b, &hints)) {
                    (Some(x), None) => {
                        hints.insert(*b, x);
                    }
                    (None, Some(x)) => {
                        hints.insert(*a, x);
                    }
                    _ => {}
                }
            }
        }
    }
    hints
}

#[cfg(test)]
mod tests {
    use super::*;
    use has_data::{DatabaseGenerator, GeneratorConfig};
    use has_workloads::orders::order_fulfilment;
    use has_workloads::travel::{travel_booking, TravelVariant};

    #[test]
    fn executes_the_order_system_without_panicking() {
        let o = order_fulfilment();
        let mut generator = DatabaseGenerator::new(GeneratorConfig::default());
        let db = generator.generate(&o.system.schema.database);
        let mut exec = Executor::new(&o.system, &db, ExecutionConfig::default());
        let tree = exec.run();
        assert!(tree.total_steps() > 1);
        assert_eq!(tree.root().task, o.root);
    }

    #[test]
    fn executes_the_travel_system_and_spawns_children() {
        let t = travel_booking(TravelVariant::Buggy);
        let mut generator = DatabaseGenerator::new(GeneratorConfig::default());
        let db = generator.generate(&t.system.schema.database);
        let mut exec = Executor::new(
            &t.system,
            &db,
            ExecutionConfig {
                max_steps: 400,
                seed: 3,
                ..ExecutionConfig::default()
            },
        );
        let tree = exec.run();
        assert!(tree.invocation_count() >= 1);
        // Different seeds give different executions (with very high
        // probability on this system).
        let mut exec2 = Executor::new(
            &t.system,
            &db,
            ExecutionConfig {
                max_steps: 400,
                seed: 4,
                ..ExecutionConfig::default()
            },
        );
        let tree2 = exec2.run();
        assert!(tree.total_steps() > 0 && tree2.total_steps() > 0);
    }

    #[test]
    fn executions_are_reproducible_per_seed() {
        let o = order_fulfilment();
        let mut generator = DatabaseGenerator::new(GeneratorConfig::default());
        let db = generator.generate(&o.system.schema.database);
        let run = |seed| {
            let mut exec = Executor::new(
                &o.system,
                &db,
                ExecutionConfig {
                    seed,
                    ..ExecutionConfig::default()
                },
            );
            exec.run().total_steps()
        };
        assert_eq!(run(7), run(7));
    }
}
