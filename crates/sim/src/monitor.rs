//! Runtime monitoring: evaluating HLTL-FO on recorded trees of local runs.
//!
//! The monitor implements the satisfaction relation of Section 3 directly on
//! the finite traces produced by the executor, using the finite-trace LTL
//! semantics of Appendix B.2. It is an *under*-approximation of the
//! verification problem (a single execution on a single database), which is
//! exactly what makes it useful as an oracle: a violation observed by the
//! monitor is a concrete counterexample that the symbolic verifier must also
//! report.

use crate::trace::{TaskTrace, TreeOfRuns};
use has_data::{eval_condition, DatabaseInstance};
use has_ltl::hltl::{HltlProp, PropId};
use has_ltl::HltlFormula;
use has_model::{ArtifactSystem, ServiceRef};

/// Evaluates an HLTL-FO property on a recorded tree of runs over a concrete
/// database. Returns `true` if the recorded (finite) behaviour satisfies the
/// property.
pub fn monitor_property(
    system: &ArtifactSystem,
    db: &DatabaseInstance,
    tree: &TreeOfRuns,
    property: &HltlFormula,
) -> bool {
    eval_on_run(system, db, tree, tree.root(), property)
}

fn eval_on_run(
    system: &ArtifactSystem,
    db: &DatabaseInstance,
    tree: &TreeOfRuns,
    run: &TaskTrace,
    formula: &HltlFormula,
) -> bool {
    let len = run.steps.len().max(1);
    let holds = |j: usize, p: &PropId| -> bool {
        let Some(step) = run.steps.get(j) else {
            return false;
        };
        match &formula.props[p.0] {
            HltlProp::Condition(c) => eval_condition(&system.schema, db, &step.valuation, c),
            HltlProp::Service(s) => step.service == *s,
            HltlProp::Child(child, sub) => {
                if step.service != ServiceRef::Opening(*child) {
                    return false;
                }
                let Some(node) = step.child else { return false };
                eval_on_run(system, db, tree, &tree.nodes[node], sub)
            }
        }
    };
    formula.ltl.eval_finite(len, &holds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::execution::{ExecutionConfig, Executor};
    use has_data::{DatabaseGenerator, GeneratorConfig};
    use has_ltl::hltl::HltlBuilder;
    use has_model::Condition;
    use has_workloads::orders::{never_enqueue_property, order_fulfilment, ship_after_quote_property};

    fn run_orders(seed: u64) -> (has_workloads::orders::OrdersSystem, DatabaseInstance, TreeOfRuns) {
        let o = order_fulfilment();
        let mut generator = DatabaseGenerator::new(GeneratorConfig::default());
        let db = generator.generate(&o.system.schema.database);
        let mut exec = Executor::new(
            &o.system,
            &db,
            ExecutionConfig {
                max_steps: 300,
                seed,
                ..ExecutionConfig::default()
            },
        );
        let tree = exec.run();
        (o, db, tree)
    }

    #[test]
    fn safety_property_holds_on_executions() {
        for seed in 0..5 {
            let (o, db, tree) = run_orders(seed);
            let property = ship_after_quote_property(&o);
            assert!(
                monitor_property(&o.system, &db, &tree, &property),
                "ship-after-quote violated on seed {seed}"
            );
        }
    }

    #[test]
    fn trivially_true_and_false_conditions() {
        let (o, db, tree) = run_orders(11);
        let mut hb = HltlBuilder::new(o.root);
        let t = hb.condition(Condition::True);
        let always_true = hb.finish(t.globally());
        assert!(monitor_property(&o.system, &db, &tree, &always_true));

        let mut hb = HltlBuilder::new(o.root);
        let f = hb.condition(Condition::False);
        let eventually_false = hb.finish(f.eventually());
        assert!(!monitor_property(&o.system, &db, &tree, &eventually_false));
    }

    #[test]
    fn some_execution_violates_never_enqueue() {
        // The backlog property is false in general; a long enough random
        // execution should enqueue at least once for some seed.
        let violated = (0..10).any(|seed| {
            let (o, db, tree) = run_orders(seed);
            let property = never_enqueue_property(&o);
            !monitor_property(&o.system, &db, &tree, &property)
        });
        assert!(violated, "no execution ever used the backlog");
    }
}
