//! Concrete operational semantics for Hierarchical Artifact Systems.
//!
//! While the verifier (`has-core`) explores *symbolic* runs, this crate
//! executes artifact systems on concrete databases, implementing the
//! semantics of Section 2 and Appendix B.1:
//!
//! * [`execution::TaskInstance`] — a task's valuation and artifact-relation
//!   contents;
//! * [`execution::Executor`] — builds trees of local runs by repeatedly
//!   firing enabled steps (internal services, child openings/closings) with
//!   randomized choices, on a concrete [`has_data::DatabaseInstance`];
//! * [`trace`] — flattens a tree of local runs into the per-task traces used
//!   by the runtime monitor;
//! * [`monitor`] — evaluates HLTL-FO formulas on the (finite prefixes of)
//!   recorded runs, serving as an independent oracle for the verifier on
//!   small instances: a concrete violation found by simulation implies the
//!   verifier must report a violation;
//! * [`mod@replay`] — *scripted* execution: follows a prescribed sequence of
//!   moves per task instance under the same firing rules, which is how
//!   symbolic counterexample witnesses are re-executed and checked against
//!   the monitor (`has-corpus` drives this).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod execution;
pub mod monitor;
pub mod replay;
pub mod trace;

pub use execution::{ExecutionConfig, Executor, StepKind, TaskInstance};
pub use monitor::monitor_property;
pub use replay::{replay, replay_with_retries, ReplayError, RunScript, ScriptMove};
pub use trace::{TaskTrace, TreeOfRuns};
