//! An order-fulfilment workload: a second realistic business process in the
//! style of the paper's examples (quote, reserve stock, invoice, refund),
//! exercising an artifact relation (the order backlog) and a two-level
//! hierarchy.

use has_arith::Rational;
use has_ltl::hltl::HltlBuilder;
use has_ltl::HltlFormula;
use has_model::{
    ArtifactSystem, Condition, ServiceRef, SetUpdate, SystemBuilder, TaskId, Term, VarId,
};

/// Handles to the order-fulfilment system.
#[derive(Clone, Debug)]
pub struct OrdersSystem {
    /// The artifact system.
    pub system: ArtifactSystem,
    /// The root task (`ProcessOrders`).
    pub root: TaskId,
    /// The quoting subtask.
    pub quote: TaskId,
    /// The shipping subtask.
    pub ship: TaskId,
    /// Root `state` variable.
    pub state: VarId,
    /// Root `item` variable.
    pub item: VarId,
}

/// Order states.
pub mod state {
    /// No active order.
    pub const IDLE: i64 = 0;
    /// A quote has been produced.
    pub const QUOTED: i64 = 1;
    /// The order has been shipped.
    pub const SHIPPED: i64 = 2;
}

/// Builds the order-fulfilment system.
///
/// The root task manages a backlog of orders in its artifact relation; the
/// `Quote` subtask selects a catalog item and price; the `Ship` subtask marks
/// the order shipped, but only a quoted order may ship.
pub fn order_fulfilment() -> OrdersSystem {
    let mut b = SystemBuilder::new("order-fulfilment");
    b.relation("ITEMS", &["price"], &[]);
    let items = b.relation_id("ITEMS").unwrap();

    let root = b.root_task("ProcessOrders");
    let item = b.id_var(root, "item");
    let state_var = b.num_var(root, "state");
    let price = b.num_var(root, "price");
    b.artifact_relation(root, "BACKLOG", &[item]);

    let idle = || Condition::eq_const(state_var, Rational::from_int(state::IDLE));
    let quoted = || Condition::eq_const(state_var, Rational::from_int(state::QUOTED));

    b.internal_service(
        root,
        "EnqueueOrder",
        Condition::not_null(item),
        Condition::is_null(item).and(Condition::eq_const(
            state_var,
            Rational::from_int(state::IDLE),
        )),
        SetUpdate::Insert,
    );
    b.internal_service(
        root,
        "DequeueOrder",
        idle(),
        Condition::eq_const(state_var, Rational::from_int(state::IDLE)),
        SetUpdate::Retrieve,
    );

    // Quote subtask: picks an item and its catalog price.
    let quote = b.child_task(root, "Quote");
    let q_item = b.id_var(quote, "q_item");
    let q_price = b.num_var(quote, "q_price");
    let q_state = b.num_var(quote, "q_state");
    b.open_when(quote, idle());
    b.internal_service(
        quote,
        "PriceItem",
        Condition::True,
        Condition::relation(items, vec![Term::Var(q_item), Term::Var(q_price)])
            .and(Condition::eq_const(
                q_state,
                Rational::from_int(state::QUOTED),
            )),
        SetUpdate::None,
    );
    b.close_when(quote, Condition::not_null(q_item));
    b.map_output(quote, item, q_item);
    b.map_output(quote, price, q_price);
    b.map_output(quote, state_var, q_state);

    // Ship subtask: only a quoted order may ship.
    let ship = b.child_task(root, "Ship");
    let s_item = b.id_var(ship, "s_item");
    let s_state = b.num_var(ship, "s_state");
    b.open_when(ship, quoted().and(Condition::not_null(item)));
    b.map_input(ship, s_item, item);
    b.internal_service(
        ship,
        "Dispatch",
        Condition::not_null(s_item),
        Condition::eq_const(s_state, Rational::from_int(state::SHIPPED)),
        SetUpdate::None,
    );
    b.close_when(
        ship,
        Condition::eq_const(s_state, Rational::from_int(state::SHIPPED)),
    );
    b.map_output(ship, state_var, s_state);

    let system = b.build().expect("order fulfilment system is well-formed");
    OrdersSystem {
        system,
        root,
        quote,
        ship,
        state: state_var,
        item,
    }
}

/// "An order is only shipped after it has been quoted": globally, opening the
/// `Ship` subtask implies the root state is `QUOTED`.
pub fn ship_after_quote_property(o: &OrdersSystem) -> HltlFormula {
    let mut hb = HltlBuilder::new(o.root);
    let open_ship = hb.service(ServiceRef::Opening(o.ship));
    let quoted = hb.condition(Condition::eq_const(
        o.state,
        Rational::from_int(state::QUOTED),
    ));
    hb.finish(open_ship.implies(quoted).globally())
}

/// A deliberately false property: "the backlog is never used", i.e. the
/// `EnqueueOrder` service never fires.
pub fn never_enqueue_property(o: &OrdersSystem) -> HltlFormula {
    let mut hb = HltlBuilder::new(o.root);
    let enqueue = hb.service(ServiceRef::Internal(o.root, 0));
    hb.finish(enqueue.not().globally())
}

#[cfg(test)]
mod tests {
    use super::*;
    use has_model::validate;

    #[test]
    fn system_builds_and_validates() {
        let o = order_fulfilment();
        assert!(validate(&o.system).is_ok());
        assert_eq!(o.system.schema.task_count(), 3);
        assert!(o.system.schema.uses_artifact_relations());
        assert!(!o.system.schema.uses_arithmetic());
    }

    #[test]
    fn properties_are_well_formed() {
        let o = order_fulfilment();
        assert!(ship_after_quote_property(&o).validate(&o.system).is_ok());
        assert!(never_enqueue_property(&o).validate(&o.system).is_ok());
    }
}
