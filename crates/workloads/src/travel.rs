//! The paper's running example (Appendix A): a travel-booking process.
//!
//! Six tasks mirror Figure 1:
//!
//! ```text
//! ManageTrips
//! ├── AddFlight
//! ├── AddHotel ── AlsoBookHotel
//! ├── BookInitialTrip
//! └── Cancel
//! ```
//!
//! The customer assembles a trip (flight and/or hotel), may store and
//! retrieve candidate trips in the `TRIPS` artifact relation, books the trip,
//! may add a hotel after paying for the flight (receiving a discount when the
//! hotel is compatible with the flight), and may cancel.
//!
//! Two variants are provided. In [`TravelVariant::Buggy`], `Cancel` may be
//! opened while `AddHotel` is still running — exactly the concurrency the
//! paper points out — so the flight can be cancelled without the discount
//! penalty even though a discounted hotel is being added. In
//! [`TravelVariant::Fixed`], `Cancel` requires the hotel reservation (if any)
//! to be visible in the parent before it can open, restoring the policy of
//! Appendix A.2.

use has_arith::{LinExpr, LinearConstraint, Rational};
use has_ltl::hltl::HltlBuilder;
use has_ltl::HltlFormula;
use has_model::{
    ArtifactSystem, Condition, ServiceRef, SetUpdate, SystemBuilder, Term, VarId,
};

/// Status constants used by the specification (the paper's string statuses
/// mapped to numeric codes, as Appendix A suggests).
pub mod status {
    use has_arith::Rational;
    /// Trip not yet paid.
    pub const UNPAID: i64 = 0;
    /// Trip paid.
    pub const PAID: i64 = 1;
    /// Payment failed.
    pub const FAILED: i64 = 2;
    /// The flight was cancelled.
    pub const FLIGHT_CANCELED: i64 = 3;

    /// The constant as a rational.
    pub fn r(c: i64) -> Rational {
        Rational::from_int(c)
    }
}

/// Refund modes written by `Cancel::CancelFlight`.
pub mod refund {
    /// Refund reduced by the lost discount (the policy-compliant outcome when
    /// a discounted hotel is kept).
    pub const PENALIZED: i64 = 1;
    /// Full refund.
    pub const FULL: i64 = 2;
}

/// Which variant of the specification to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TravelVariant {
    /// The specification as written in Appendix A: `AddHotel` and `Cancel`
    /// may run concurrently after a successful payment.
    Buggy,
    /// The corrected specification: `Cancel` only opens once the hotel
    /// reservation (if any) is recorded in the parent.
    Fixed,
}

/// Handles to the interesting parts of the travel system, for building
/// properties and driving the simulator.
#[derive(Clone, Debug)]
pub struct TravelSystem {
    /// The artifact system itself.
    pub system: ArtifactSystem,
    /// Task ids.
    pub manage_trips: has_model::TaskId,
    /// `AddFlight`.
    pub add_flight: has_model::TaskId,
    /// `AddHotel`.
    pub add_hotel: has_model::TaskId,
    /// `AlsoBookHotel` (child of `AddHotel`).
    pub also_book_hotel: has_model::TaskId,
    /// `BookInitialTrip`.
    pub book_initial_trip: has_model::TaskId,
    /// `Cancel`.
    pub cancel: has_model::TaskId,
    /// Index of the `CancelFlight` internal service within `Cancel`.
    pub cancel_flight_service: usize,
    /// `AddHotel`'s `hotel_price` variable (for the Discounted test).
    pub a_hotel_price: VarId,
    /// `AddHotel`'s `discount_price` variable.
    pub a_discount: VarId,
    /// `Cancel`'s `refund_mode` variable (for the Penalized test).
    pub c_refund_mode: VarId,
}

/// Builds the travel-booking artifact system.
pub fn travel_booking(variant: TravelVariant) -> TravelSystem {
    let mut b = SystemBuilder::new("travel-booking");

    // Database schema (Appendix A.1).
    b.relation("HOTELS", &["unit_price", "discount_price"], &[]);
    b.relation(
        "FLIGHTS",
        &["price"],
        &[("comp_hotel_id", "HOTELS")],
    );
    let hotels = b.relation_id("HOTELS").unwrap();
    let flights = b.relation_id("FLIGHTS").unwrap();

    // ------------------------------------------------------------------
    // ManageTrips (root)
    // ------------------------------------------------------------------
    let manage = b.root_task("ManageTrips");
    let flight_id = b.id_var(manage, "flight_id");
    let hotel_id = b.id_var(manage, "hotel_id");
    let m_status = b.num_var(manage, "status");
    let m_amount = b.num_var(manage, "amount_paid");
    let m_hotel_paid = b.num_var(manage, "hotel_price_paid");
    b.artifact_relation(manage, "TRIPS", &[flight_id, hotel_id]);

    let unpaid = || Condition::eq_const(m_status, status::r(status::UNPAID));
    let paid = || Condition::eq_const(m_status, status::r(status::PAID));

    b.internal_service(
        manage,
        "StoreTrip",
        unpaid().and(Condition::not_null(flight_id).or(Condition::not_null(hotel_id))),
        Condition::is_null(flight_id)
            .and(Condition::is_null(hotel_id))
            .and(Condition::eq_const(m_status, status::r(status::UNPAID)))
            .and(Condition::eq_const(m_amount, Rational::ZERO))
            .and(Condition::eq_const(m_hotel_paid, Rational::ZERO)),
        SetUpdate::Insert,
    );
    b.internal_service(
        manage,
        "RetrieveTrip",
        unpaid(),
        Condition::eq_const(m_status, status::r(status::UNPAID))
            .and(Condition::eq_const(m_amount, Rational::ZERO))
            .and(Condition::eq_const(m_hotel_paid, Rational::ZERO)),
        SetUpdate::Retrieve,
    );

    // ------------------------------------------------------------------
    // AddFlight
    // ------------------------------------------------------------------
    let add_flight = b.child_task(manage, "AddFlight");
    let f_fid = b.id_var(add_flight, "fid");
    let f_price = b.num_var(add_flight, "fprice");
    let f_comp = b.id_var(add_flight, "fcomp");
    b.open_when(
        add_flight,
        Condition::is_null(flight_id).and(unpaid()),
    );
    b.internal_service(
        add_flight,
        "ChooseFlight",
        Condition::True,
        Condition::relation(
            flights,
            vec![Term::Var(f_fid), Term::Var(f_price), Term::Var(f_comp)],
        ),
        SetUpdate::None,
    );
    b.close_when(add_flight, Condition::not_null(f_fid));
    b.map_output(add_flight, flight_id, f_fid);

    // ------------------------------------------------------------------
    // AddHotel (with child AlsoBookHotel)
    // ------------------------------------------------------------------
    let add_hotel = b.child_task(manage, "AddHotel");
    let a_flight = b.id_var(add_hotel, "a_flight_id");
    let a_status = b.num_var(add_hotel, "a_status");
    let a_amount = b.num_var(add_hotel, "a_amount_paid");
    let a_hotel = b.id_var(add_hotel, "a_hotel_id");
    let a_unit = b.num_var(add_hotel, "a_unit_price");
    let a_discount = b.num_var(add_hotel, "a_discount_price");
    let a_hotel_price = b.num_var(add_hotel, "a_hotel_price");
    let a_new_amount = b.num_var(add_hotel, "a_new_amount_paid");
    let a_fprice = b.num_var(add_hotel, "a_flight_price");
    let a_comp = b.id_var(add_hotel, "a_comp_hotel");
    b.open_when(
        add_hotel,
        Condition::is_null(hotel_id).and(unpaid().or(paid())),
    );
    b.map_input(add_hotel, a_flight, flight_id);
    b.map_input(add_hotel, a_status, m_status);
    b.map_input(add_hotel, a_amount, m_amount);

    // ChooseHotel: pick a hotel; the price is the discount price iff the
    // chosen hotel is the one compatible with the already chosen flight.
    let choose_hotel_pre = Condition::is_null(a_hotel); // choose once
    let compatible = Condition::relation(
        flights,
        vec![Term::Var(a_flight), Term::Var(a_fprice), Term::Var(a_comp)],
    );
    let choose_hotel_post = Condition::relation(
        hotels,
        vec![Term::Var(a_hotel), Term::Var(a_unit), Term::Var(a_discount)],
    )
    .and(
        Condition::is_null(a_flight)
            .implies(Condition::var_eq(a_hotel_price, a_unit)),
    )
    .and(Condition::not_null(a_flight).implies(
        compatible.and(
            Condition::var_eq(a_comp, a_hotel)
                .implies(Condition::var_eq(a_hotel_price, a_discount))
                .and(
                    Condition::var_eq(a_comp, a_hotel)
                        .negate()
                        .implies(Condition::var_eq(a_hotel_price, a_unit)),
                ),
        ),
    ))
    .and(Condition::eq_const(a_new_amount, Rational::ZERO));
    b.internal_service(
        add_hotel,
        "ChooseHotel",
        choose_hotel_pre,
        choose_hotel_post,
        SetUpdate::None,
    );

    // AlsoBookHotel: pays the newly added hotel when the trip was already
    // paid for.
    let also_book = b.child_task(add_hotel, "AlsoBookHotel");
    let b_hotel_price = b.num_var(also_book, "b_hotel_price");
    let b_amount = b.num_var(also_book, "b_amount_paid");
    let b_paid = b.num_var(also_book, "b_hotel_amount_paid");
    let b_new = b.num_var(also_book, "b_new_amount_paid");
    b.open_when(
        also_book,
        Condition::not_null(a_hotel)
            .and(Condition::eq_const(a_status, status::r(status::PAID))),
    );
    b.map_input(also_book, b_hotel_price, a_hotel_price);
    b.map_input(also_book, b_amount, a_amount);
    // Pay: receives a hotel payment; the new total is the old total plus the
    // payment (an arithmetic constraint). The payment may fail and be
    // retried any number of times.
    let pay_post = Condition::arith(LinearConstraint::eq(
        LinExpr::var(b_new),
        LinExpr::var(b_amount) + LinExpr::var(b_paid),
    ));
    b.internal_service(also_book, "Pay", Condition::True, pay_post, SetUpdate::None);
    b.close_when(also_book, Condition::var_eq(b_paid, b_hotel_price));
    b.map_output(also_book, a_new_amount, b_new);

    // AddHotel closes either before payment (unpaid trip) or after the extra
    // hotel payment went through.
    b.close_when(
        add_hotel,
        Condition::not_null(a_hotel).and(
            Condition::eq_const(a_status, status::r(status::UNPAID)).or(
                Condition::eq_const(a_status, status::r(status::PAID))
                    .and(Condition::var_eq(a_new_amount, a_hotel_price).or(
                        // simplified accounting: the new total differs from the
                        // old one by the hotel price (kept as an arithmetic
                        // atom for the arithmetic benchmarks)
                        Condition::arith(LinearConstraint::eq(
                            LinExpr::var(a_new_amount),
                            LinExpr::var(a_amount) + LinExpr::var(a_hotel_price),
                        )),
                    )),
            ),
        ),
    );
    b.map_output(add_hotel, hotel_id, a_hotel);
    b.map_output(add_hotel, m_hotel_paid, a_hotel_price);

    // ------------------------------------------------------------------
    // BookInitialTrip
    // ------------------------------------------------------------------
    let book = b.child_task(manage, "BookInitialTrip");
    let k_flight = b.id_var(book, "k_flight_id");
    let k_hotel = b.id_var(book, "k_hotel_id");
    let k_status = b.num_var(book, "k_status");
    let k_amount = b.num_var(book, "k_amount_paid");
    let k_tprice = b.num_var(book, "k_ticket_price");
    let k_hprice = b.num_var(book, "k_hotel_price");
    let k_unit = b.num_var(book, "k_unit_price");
    let k_disc = b.num_var(book, "k_discount_price");
    let k_comp = b.id_var(book, "k_comp_hotel");
    b.open_when(
        book,
        unpaid().and(Condition::not_null(flight_id).or(Condition::not_null(hotel_id))),
    );
    b.map_input(book, k_flight, flight_id);
    b.map_input(book, k_hotel, hotel_id);
    let pay_post = Condition::is_null(k_flight)
        .implies(Condition::eq_const(k_tprice, Rational::ZERO))
        .and(Condition::not_null(k_flight).implies(Condition::relation(
            flights,
            vec![Term::Var(k_flight), Term::Var(k_tprice), Term::Var(k_comp)],
        )))
        .and(
            Condition::is_null(k_hotel)
                .implies(Condition::eq_const(k_hprice, Rational::ZERO)),
        )
        .and(Condition::not_null(k_hotel).implies(
            Condition::relation(
                hotels,
                vec![Term::Var(k_hotel), Term::Var(k_unit), Term::Var(k_disc)],
            )
            .and(
                Condition::var_eq(k_hotel, k_comp)
                    .implies(Condition::var_eq(k_hprice, k_disc)),
            )
            .and(
                Condition::var_eq(k_hotel, k_comp)
                    .negate()
                    .implies(Condition::var_eq(k_hprice, k_unit)),
            ),
        ))
        .and(
            Condition::arith(LinearConstraint::eq(
                LinExpr::var(k_amount),
                LinExpr::var(k_tprice) + LinExpr::var(k_hprice),
            ))
            .implies(Condition::eq_const(k_status, status::r(status::PAID))),
        )
        .and(
            Condition::eq_const(k_status, status::r(status::PAID))
                .or(Condition::eq_const(k_status, status::r(status::FAILED))),
        );
    b.internal_service(book, "Pay", Condition::True, pay_post, SetUpdate::None);
    b.close_when(
        book,
        Condition::eq_const(k_status, status::r(status::PAID))
            .or(Condition::eq_const(k_status, status::r(status::FAILED))),
    );
    b.map_output(book, m_status, k_status);
    b.map_output(book, m_amount, k_amount);

    // ------------------------------------------------------------------
    // Cancel
    // ------------------------------------------------------------------
    let cancel = b.child_task(manage, "Cancel");
    let c_flight = b.id_var(cancel, "c_flight_id");
    let c_hotel = b.id_var(cancel, "c_hotel_id");
    let c_hpaid = b.num_var(cancel, "c_hotel_price_paid");
    let c_refund_mode = b.num_var(cancel, "c_refund_mode");
    let c_status = b.num_var(cancel, "c_status");
    let c_tprice = b.num_var(cancel, "c_ticket_price");
    let c_unit = b.num_var(cancel, "c_unit_price");
    let c_disc = b.num_var(cancel, "c_discount_price");
    let c_comp = b.id_var(cancel, "c_comp_hotel");
    let cancel_open = match variant {
        TravelVariant::Buggy => paid(),
        // Fixed: the cancellation flow only opens when the hotel reservation
        // (added by AddHotel) is visible in the parent, so it cannot race a
        // concurrent AddHotel that is still choosing the discounted hotel.
        TravelVariant::Fixed => paid().and(Condition::not_null(hotel_id)),
    };
    b.open_when(cancel, cancel_open);
    b.map_input(cancel, c_flight, flight_id);
    b.map_input(cancel, c_hotel, hotel_id);
    b.map_input(cancel, c_hpaid, m_hotel_paid);

    let discounted_now = Condition::not_null(c_hotel).and(Condition::var_eq(c_hpaid, c_disc));
    let cancel_flight_post = Condition::relation(
        flights,
        vec![Term::Var(c_flight), Term::Var(c_tprice), Term::Var(c_comp)],
    )
    .and(Condition::not_null(c_hotel).implies(Condition::relation(
        hotels,
        vec![Term::Var(c_hotel), Term::Var(c_unit), Term::Var(c_disc)],
    )))
    .and(
        discounted_now
            .clone()
            .implies(Condition::eq_const(c_refund_mode, Rational::from_int(refund::PENALIZED))),
    )
    .and(
        discounted_now
            .negate()
            .implies(Condition::eq_const(c_refund_mode, Rational::from_int(refund::FULL))),
    )
    .and(Condition::eq_const(
        c_status,
        status::r(status::FLIGHT_CANCELED),
    ));
    b.internal_service(
        cancel,
        "CancelFlight",
        Condition::not_null(c_flight).and(Condition::eq_const(c_status, Rational::ZERO)),
        cancel_flight_post,
        SetUpdate::None,
    );
    b.close_when(cancel, Condition::True);
    b.map_output(cancel, m_status, c_status);

    let system = b.build().expect("travel booking system is well-formed");
    let cancel_flight_service = 0; // first (and only) internal service of Cancel
    TravelSystem {
        system,
        manage_trips: manage,
        add_flight,
        add_hotel,
        also_book_hotel: also_book,
        book_initial_trip: book,
        cancel,
        cancel_flight_service,
        a_hotel_price,
        a_discount,
        c_refund_mode,
    }
}

/// The HLTL-FO property of Appendix A.2: *if a discounted hotel reservation
/// is added (and paid for through `AlsoBookHotel`), then whenever `Cancel`
/// runs, cancelling the flight must apply the discount penalty.*
///
/// `[ F [F(Discounted ∧ X σ^o_AlsoBookHotel)]_AddHotel →
///     G(σ^o_Cancel → [G(CancelFlight → Penalized)]_Cancel) ]_ManageTrips`
pub fn travel_property(t: &TravelSystem) -> HltlFormula {
    // ψ2, attached to AddHotel.
    let mut ah = HltlBuilder::new(t.add_hotel);
    let discounted = ah.condition(Condition::var_eq(t.a_hotel_price, t.a_discount));
    let open_also_book = ah.service(ServiceRef::Opening(t.also_book_hotel));
    let psi2 = ah.finish(discounted.and(open_also_book.next()).eventually());

    // ψ3, attached to Cancel.
    let mut ca = HltlBuilder::new(t.cancel);
    let cancel_flight = ca.service(ServiceRef::Internal(t.cancel, t.cancel_flight_service));
    let penalized = ca.condition(Condition::eq_const(
        t.c_refund_mode,
        Rational::from_int(refund::PENALIZED),
    ));
    let psi3 = ca.finish(cancel_flight.implies(penalized).globally());

    // The top-level formula, attached to ManageTrips.
    let mut mt = HltlBuilder::new(t.manage_trips);
    let add_hotel_ok = mt.child(t.add_hotel, psi2);
    let open_cancel = mt.service(ServiceRef::Opening(t.cancel));
    let cancel_ok = mt.child(t.cancel, psi3);
    mt.finish(
        add_hotel_ok
            .eventually()
            .implies(open_cancel.implies(cancel_ok).globally()),
    )
}

/// A simple liveness property for the counterexample-reading walkthrough
/// (EXP-W1 in EXPERIMENTS.md and the README): *every run of `ManageTrips`
/// eventually reaches `PAID` status*, `[F (status = PAID)]_ManageTrips`.
///
/// Violated by both variants — a run can keep adding flights and hotels (or
/// cycling the `TRIPS` artifact relation) without ever opening
/// `BookInitialTrip` — so it reliably produces a rendered witness tree under
/// the bounded budgets the examples use. The Appendix A.2 policy
/// ([`travel_property`]) is the paper-faithful property; its violation on
/// the buggy variant is found within the default search budgets once
/// `max_merge_pairs` is raised to 12 — the branching depth the misbehaving
/// `Cancel` configuration needs (`tests/a2_violation.rs`, EXP-S1) — while
/// under the deliberately tight example caps it still reads `HOLDS
/// (bounded search)`.
pub fn travel_liveness_property(t: &TravelSystem) -> HltlFormula {
    let status_var = t
        .system
        .schema
        .var_by_name(t.manage_trips, "status")
        .expect("ManageTrips has a status variable");
    let mut hb = HltlBuilder::new(t.manage_trips);
    let paid = hb.condition(Condition::eq_const(status_var, status::r(status::PAID)));
    hb.finish(paid.eventually())
}

#[cfg(test)]
mod tests {
    use super::*;
    use has_model::validate;

    #[test]
    fn both_variants_build_and_validate() {
        for variant in [TravelVariant::Buggy, TravelVariant::Fixed] {
            let t = travel_booking(variant);
            assert!(validate(&t.system).is_ok());
            assert_eq!(t.system.schema.task_count(), 6);
            assert_eq!(t.system.schema.depth(), 3);
            assert!(t.system.schema.uses_artifact_relations());
            assert!(t.system.schema.uses_arithmetic());
            assert_eq!(
                t.system.schema.schema_class(),
                has_model::SchemaClass::Acyclic
            );
        }
    }

    #[test]
    fn variants_differ_only_in_cancel_guard() {
        let buggy = travel_booking(TravelVariant::Buggy);
        let fixed = travel_booking(TravelVariant::Fixed);
        let bt = buggy.system.task(buggy.cancel);
        let ft = fixed.system.task(fixed.cancel);
        assert_ne!(bt.opening.pre, ft.opening.pre);
        assert_eq!(bt.internal_services, ft.internal_services);
    }

    #[test]
    fn property_is_well_formed_for_both_variants() {
        for variant in [TravelVariant::Buggy, TravelVariant::Fixed] {
            let t = travel_booking(variant);
            let p = travel_property(&t);
            assert!(p.validate(&t.system).is_ok());
            assert_eq!(p.nesting_depth(), 2);
            assert_eq!(p.tasks().len(), 3);
        }
    }

    #[test]
    fn artifact_relation_is_the_trips_set() {
        let t = travel_booking(TravelVariant::Buggy);
        let manage = t.system.task(t.manage_trips);
        let trips = manage.artifact_relation.as_ref().unwrap();
        assert_eq!(trips.name, "TRIPS");
        assert_eq!(trips.tuple.len(), 2);
    }
}
