//! Reusable Hierarchical Artifact System workloads.
//!
//! * [`travel`] — the paper's running example (Appendix A): a travel-booking
//!   process with flight/hotel selection, payment, late hotel addition and
//!   cancellation, in a *buggy* variant (the discount/cancellation policy of
//!   A.2 can be violated under concurrency) and a *fixed* variant (mutual
//!   exclusion between the late-add and cancel subtasks), plus the HLTL-FO
//!   property of Appendix A.2.
//! * [`orders`] — an order-fulfilment process in the same style (quote,
//!   reserve stock, invoice, refund) used as a second realistic workload.
//! * [`counters`] — the counter-machine gadget of Theorem 11 / Figure 2,
//!   used by experiment EXP-F2.
//! * [`generator`] — parametric families of systems and properties varying
//!   the knobs of Tables 1 and 2: schema class (acyclic / linearly-cyclic /
//!   cyclic), hierarchy depth and width, artifact relations, and arithmetic.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod counters;
pub mod generator;
pub mod orders;
pub mod travel;

pub use generator::{GeneratedSystem, GeneratorParams, Plant, PlantedSystem};
pub use travel::{travel_booking, travel_property, TravelVariant};
