//! The counter-machine gadget of Theorem 11 / Figure 2.
//!
//! The paper's undecidability proof for full LTL over services builds a HAS
//! whose root has `d` counter subtasks `C₁ … C_d`, each holding an artifact
//! relation whose cardinality encodes a counter, plus a state subtask `P₀`.
//! Cross-task LTL can synchronize the counters into a reset-VASS simulation;
//! HLTL-FO cannot (it is interleaving-invariant), which is exactly why the
//! paper adopts it.
//!
//! The gadget is reproduced here for experiment EXP-F2: it is a legal HAS
//! (HLTL-FO properties about it are verifiable), and the *cross-task* LTL
//! formula that the reduction needs is not expressible as an HLTL-FO formula
//! — attempting to state it forces a formula over a single task's observable
//! services, which the type system of [`has_ltl::hltl`] rejects.

use has_arith::Rational;
use has_ltl::hltl::HltlBuilder;
use has_ltl::HltlFormula;
use has_model::{ArtifactSystem, Condition, ServiceRef, SetUpdate, SystemBuilder, TaskId};

/// The gadget system together with its task handles.
#[derive(Clone, Debug)]
pub struct CounterGadget {
    /// The artifact system.
    pub system: ArtifactSystem,
    /// Root task.
    pub root: TaskId,
    /// The state-holding subtask `P0`.
    pub p0: TaskId,
    /// The counter subtasks `C1..Cd`.
    pub counters: Vec<TaskId>,
}

/// Builds the gadget with `d` counter subtasks.
pub fn counter_gadget(d: usize) -> CounterGadget {
    let mut b = SystemBuilder::new("counter-gadget");
    b.relation("R", &[], &[]);
    let r = b.relation_id("R").unwrap();

    let root = b.root_task("T1");
    // The root itself carries no data.
    let _anchor = b.num_var(root, "anchor");

    // P0 holds the simulated control state of the counter machine.
    let p0 = b.child_task(root, "P0");
    let s = b.num_var(p0, "s");
    b.open_when(p0, Condition::True);
    b.internal_service(
        p0,
        "SetState",
        Condition::True,
        Condition::eq_const(s, Rational::from_int(1))
            .or(Condition::eq_const(s, Rational::from_int(2))),
        SetUpdate::None,
    );
    b.close_when(p0, Condition::True);

    let mut counters = Vec::new();
    for i in 0..d {
        let ci = b.child_task(root, &format!("C{}", i + 1));
        let x = b.id_var(ci, &format!("x{}", i + 1));
        b.artifact_relation(ci, &format!("S{}", i + 1), &[x]);
        b.open_when(ci, Condition::True);
        // Increment: insert the current element; the post binds the element
        // to an arbitrary R-tuple so successive inserts can be distinct.
        b.internal_service(
            ci,
            "Inc",
            Condition::True,
            Condition::relation(r, vec![has_model::Term::Var(x)]),
            SetUpdate::Insert,
        );
        // Decrement: retrieve some element.
        b.internal_service(
            ci,
            "Dec",
            Condition::True,
            Condition::True,
            SetUpdate::Retrieve,
        );
        b.close_when(ci, Condition::True);
        counters.push(ci);
    }

    let system = b.build().expect("counter gadget is well-formed");
    CounterGadget {
        system,
        root,
        p0,
        counters,
    }
}

/// An HLTL-FO property over the gadget: *counter 1 can always keep making
/// progress* — within the run of `C1`, globally, after an increment an
/// eventual decrement follows. This is a legal (per-task) property, in
/// contrast to the cross-task synchronization that the undecidability
/// reduction needs and that HLTL-FO deliberately cannot express.
pub fn counter_liveness_property(g: &CounterGadget) -> HltlFormula {
    let c1 = g.counters[0];
    let mut cb = HltlBuilder::new(c1);
    let inc = cb.service(ServiceRef::Internal(c1, 0));
    let dec = cb.service(ServiceRef::Internal(c1, 1));
    let psi = cb.finish(inc.implies(dec.eventually()).globally());

    let mut rb = HltlBuilder::new(g.root);
    let open_c1 = rb.service(ServiceRef::Opening(c1));
    let sub = rb.child(c1, psi);
    rb.finish(open_c1.implies(sub).globally())
}

#[cfg(test)]
mod tests {
    use super::*;
    use has_model::validate;

    #[test]
    fn gadget_scales_with_d() {
        for d in [1, 2, 4] {
            let g = counter_gadget(d);
            assert!(validate(&g.system).is_ok());
            assert_eq!(g.counters.len(), d);
            assert_eq!(g.system.schema.task_count(), d + 2);
            assert!(g.system.schema.uses_artifact_relations());
        }
    }

    #[test]
    fn liveness_property_is_well_formed() {
        let g = counter_gadget(2);
        let p = counter_liveness_property(&g);
        assert!(p.validate(&g.system).is_ok());
    }
}
