//! Parametric HAS families for the complexity experiments (Tables 1 and 2).
//!
//! [`GeneratorParams`] exposes exactly the knobs the paper's complexity
//! analysis identifies:
//!
//! * the **schema class** — acyclic, linearly-cyclic, or cyclic foreign keys
//!   (the columns of Tables 1 and 2);
//! * whether tasks carry **artifact relations** (the rows);
//! * whether conditions carry **arithmetic constraints** (Table 1 vs 2);
//! * the **hierarchy depth** `h` and branching width, and the number of
//!   variables per task (the size parameter `N`).
//!
//! [`generate`](GeneratorParams::generate) produces a well-formed system plus
//! a property whose verification exercises the whole pipeline (a nested
//! guarantee about every child invocation plus a root-level safety clause).

use has_arith::{LinExpr, LinearConstraint, Rational};
use has_ltl::hltl::HltlBuilder;
use has_ltl::HltlFormula;
use has_model::{
    ArtifactSystem, Condition, SchemaClass, ServiceRef, SetUpdate, SystemBuilder, TaskId, Term,
};

/// Parameters of a generated verification instance.
#[derive(Clone, Debug)]
pub struct GeneratorParams {
    /// Foreign-key shape of the database schema.
    pub schema_class: SchemaClass,
    /// Depth of the task hierarchy (1 = a single root task).
    pub depth: usize,
    /// Number of children per non-leaf task.
    pub width: usize,
    /// Number of extra numeric variables per task.
    pub numeric_vars: usize,
    /// Whether tasks carry artifact relations (with insert/retrieve
    /// services).
    pub artifact_relations: bool,
    /// Whether conditions include linear arithmetic constraints.
    pub arithmetic: bool,
}

impl Default for GeneratorParams {
    fn default() -> Self {
        GeneratorParams {
            schema_class: SchemaClass::Acyclic,
            depth: 2,
            width: 1,
            numeric_vars: 1,
            artifact_relations: false,
            arithmetic: false,
        }
    }
}

/// A generated instance: the system, the property, and a label for reports.
#[derive(Clone, Debug)]
pub struct GeneratedSystem {
    /// The artifact system.
    pub system: ArtifactSystem,
    /// The property to verify.
    pub property: HltlFormula,
    /// Human-readable label (used in benchmark output).
    pub label: String,
}

impl GeneratorParams {
    /// The `depth ≫ width` stress family: a single chain of `depth` tasks
    /// (width 1, no artifact relations or arithmetic, acyclic schema).
    ///
    /// This shape is the scheduling worst case for a level-synchronized
    /// engine — every hierarchy level holds exactly one task, so level
    /// barriers serialize the whole run — which is what makes it the
    /// reference instance for the readiness-scheduler experiments (EXP-P1's
    /// deep-narrow row) and the deep-narrow determinism regression test.
    pub fn deep_narrow(depth: usize) -> GeneratorParams {
        GeneratorParams {
            schema_class: SchemaClass::Acyclic,
            depth,
            width: 1,
            numeric_vars: 1,
            artifact_relations: false,
            arithmetic: false,
        }
    }

    /// A short label describing the parameter point.
    pub fn label(&self) -> String {
        format!(
            "{}/{}ar/{}arith/d{}w{}v{}",
            self.schema_class,
            if self.artifact_relations { "+" } else { "-" },
            if self.arithmetic { "+" } else { "-" },
            self.depth,
            self.width,
            self.numeric_vars
        )
    }

    /// Generates the instance.
    pub fn generate(&self) -> GeneratedSystem {
        let mut b = SystemBuilder::new("generated");

        // Database schema per class.
        match self.schema_class {
            SchemaClass::Acyclic => {
                b.relation("DIM", &["weight"], &[]);
                b.relation("FACT", &["measure"], &[("dim", "DIM")]);
            }
            SchemaClass::LinearlyCyclic => {
                b.relation("DIM", &["weight"], &[]);
                b.relation("FACT", &["measure"], &[("dim", "DIM"), ("next", "FACT")]);
            }
            SchemaClass::Cyclic => {
                b.relation("DIM", &["weight"], &[("back", "FACT")]);
                b.relation("FACT", &["measure"], &[("dim", "DIM"), ("next", "FACT")]);
            }
        }
        let fact = b.relation_id("FACT").unwrap();
        let fact_arity = 2 + match self.schema_class {
            SchemaClass::Acyclic => 1,
            SchemaClass::LinearlyCyclic | SchemaClass::Cyclic => 2,
        };

        // Build a complete tree of tasks of the requested depth/width,
        // remembering each task's parent index in the creation order.
        let root = b.root_task("T0");
        let mut all_tasks: Vec<TaskId> = vec![root];
        let mut parent_of: Vec<Option<usize>> = vec![None];
        let mut frontier: Vec<usize> = vec![0];
        for level in 1..self.depth {
            let mut next = Vec::new();
            for &pi in &frontier {
                for w in 0..self.width {
                    let child = b.child_task(all_tasks[pi], &format!("T{level}_{pi}_{w}"));
                    all_tasks.push(child);
                    parent_of.push(Some(pi));
                    next.push(all_tasks.len() - 1);
                }
            }
            frontier = next;
        }

        // Populate every task with variables and services.
        struct TaskVars {
            item: has_model::VarId,
            dim: has_model::VarId,
            status: has_model::VarId,
            nums: Vec<has_model::VarId>,
        }
        let mut vars: Vec<TaskVars> = Vec::new();
        for (i, &task) in all_tasks.iter().enumerate() {
            let item = b.id_var(task, &format!("item{i}"));
            let dim = b.id_var(task, &format!("dim{i}"));
            let status = b.num_var(task, &format!("status{i}"));
            let nums: Vec<_> = (0..self.numeric_vars)
                .map(|k| b.num_var(task, &format!("n{i}_{k}")))
                .collect();
            vars.push(TaskVars {
                item,
                dim,
                status,
                nums,
            });
        }

        for (i, &task) in all_tasks.iter().enumerate() {
            let tv = &vars[i];
            // A "work" service binding the item to a FACT tuple and setting
            // the status flag.
            let mut args = vec![Term::Var(tv.item)];
            args.push(Term::Var(tv.nums.first().copied().unwrap_or(tv.status)));
            args.push(Term::Var(tv.dim));
            if fact_arity == 4 {
                args.push(Term::Var(tv.item)); // self-referencing `next`
            }
            let mut post = Condition::relation(fact, args)
                .and(Condition::eq_const(tv.status, Rational::from_int(1)));
            if self.arithmetic {
                // A linear constraint chaining the numeric variables.
                for pair in tv.nums.windows(2) {
                    post = post.and(Condition::arith(LinearConstraint::ge(
                        LinExpr::var(pair[1]),
                        LinExpr::var(pair[0]) + LinExpr::constant(Rational::ONE),
                    )));
                }
                post = post.and(Condition::arith(LinearConstraint::ge(
                    LinExpr::var(tv.nums.first().copied().unwrap_or(tv.status)),
                    LinExpr::zero(),
                )));
            }
            b.internal_service(task, "Work", Condition::True, post, SetUpdate::None);
            let _ = task;
            // A reset service so runs can loop forever.
            b.internal_service(
                task,
                "Reset",
                Condition::True,
                Condition::is_null(tv.item).and(Condition::eq_const(tv.status, Rational::ZERO)),
                SetUpdate::None,
            );
            if self.artifact_relations {
                b.artifact_relation(task, &format!("SET{i}"), &[tv.item, tv.dim]);
                b.internal_service(
                    task,
                    "Stash",
                    Condition::not_null(tv.item),
                    Condition::is_null(tv.item),
                    SetUpdate::Insert,
                );
                b.internal_service(
                    task,
                    "Unstash",
                    Condition::True,
                    Condition::True,
                    SetUpdate::Retrieve,
                );
            }
        }

        // Wire parent/child openings, inputs and outputs.
        for (i, &task) in all_tasks.iter().enumerate() {
            let Some(pi) = parent_of[i] else { continue };
            let parent_item = vars[pi].item;
            let parent_status = vars[pi].status;
            let child_item = vars[i].item;
            let child_status = vars[i].status;
            b.open_when(
                task,
                Condition::eq_const(parent_status, Rational::from_int(1)),
            );
            b.map_input(task, child_item, parent_item);
            // Each child returns its status into a fresh parent variable to
            // respect restriction 3 (no overwrite of parent inputs).
            // The returned variable also gives the property something to say.
            let ret = b.num_var(all_tasks[pi], &format!("ret_from_{i}"));
            b.map_output(task, ret, child_status);
            b.close_when(
                task,
                Condition::eq_const(child_status, Rational::from_int(1)),
            );
        }

        let system = b.build().expect("generated system is well-formed");

        // Property: every invoked child eventually finishes its work (status
        // flag set), and the root never reaches status 1 without having done
        // work — a mixed liveness/safety property with one level of nesting.
        let root_vars = &vars[0];
        let property = {
            let root_task = system.root();
            let mut rb = HltlBuilder::new(root_task);
            let worked = rb.condition(Condition::eq_const(
                root_vars.status,
                Rational::from_int(1),
            ));
            let work_service = rb.service(ServiceRef::Internal(root_task, 0));
            let mut formula = worked.implies(work_service.or(has_ltl::Ltl::True)).globally();
            // One nested obligation per direct child of the root.
            for (i, &task) in all_tasks.iter().enumerate() {
                if system.task(task).parent == Some(root_task) {
                    let mut cb = HltlBuilder::new(task);
                    let done = cb.condition(Condition::eq_const(
                        vars[i].status,
                        Rational::from_int(1),
                    ));
                    let psi = cb.finish(done.eventually());
                    let sub = rb.child(task, psi);
                    let open = rb.service(ServiceRef::Opening(task));
                    formula = formula.and(open.implies(sub).globally());
                }
            }
            rb.finish(formula)
        };

        GeneratedSystem {
            system,
            property,
            label: self.label(),
        }
    }

}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_schema_classes_generate_valid_systems() {
        for class in [
            SchemaClass::Acyclic,
            SchemaClass::LinearlyCyclic,
            SchemaClass::Cyclic,
        ] {
            for artifact in [false, true] {
                for arith in [false, true] {
                    let params = GeneratorParams {
                        schema_class: class,
                        artifact_relations: artifact,
                        arithmetic: arith,
                        ..GeneratorParams::default()
                    };
                    let g = params.generate();
                    assert_eq!(g.system.schema.schema_class(), class);
                    assert_eq!(g.system.schema.uses_artifact_relations(), artifact);
                    assert_eq!(g.system.schema.uses_arithmetic(), arith);
                    assert!(g.property.validate(&g.system).is_ok(), "{}", g.label);
                }
            }
        }
    }

    #[test]
    fn depth_and_width_control_the_hierarchy() {
        let params = GeneratorParams {
            depth: 3,
            width: 2,
            ..GeneratorParams::default()
        };
        let g = params.generate();
        assert_eq!(g.system.schema.depth(), 3);
        assert_eq!(g.system.schema.task_count(), 1 + 2 + 4);
    }

    #[test]
    fn deep_narrow_builds_a_chain() {
        let g = GeneratorParams::deep_narrow(6).generate();
        assert_eq!(g.system.schema.depth(), 6);
        // One task per level: a pure chain.
        assert_eq!(g.system.schema.task_count(), 6);
        assert!(g.property.validate(&g.system).is_ok(), "{}", g.label);
    }

    #[test]
    fn labels_are_distinct_per_parameter_point() {
        let a = GeneratorParams::default().label();
        let b = GeneratorParams {
            arithmetic: true,
            ..GeneratorParams::default()
        }
        .label();
        assert_ne!(a, b);
    }
}
