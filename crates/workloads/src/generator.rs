//! Parametric HAS families for the complexity experiments (Tables 1 and 2).
//!
//! [`GeneratorParams`] exposes exactly the knobs the paper's complexity
//! analysis identifies:
//!
//! * the **schema class** — acyclic, linearly-cyclic, or cyclic foreign keys
//!   (the columns of Tables 1 and 2);
//! * whether tasks carry **artifact relations** (the rows);
//! * whether conditions carry **arithmetic constraints** (Table 1 vs 2);
//! * the **hierarchy depth** `h` and branching width, and the number of
//!   variables per task (the size parameter `N`).
//!
//! [`generate`](GeneratorParams::generate) produces a well-formed system plus
//! a property whose verification exercises the whole pipeline (a nested
//! guarantee about every child invocation plus a root-level safety clause).
//!
//! [`generate_planted`](GeneratorParams::generate_planted) produces the same
//! base system extended with a [`Plant`]: a construction that makes the
//! instance *clean by construction* or plants exactly one violation of a
//! known kind (lasso / blocking / returning) with a known originating task.
//! The ground-truth corpus (`has-corpus`) scores the verifier against these
//! certificates; DESIGN.md §5.10 spells out why each plant is sound.

use has_arith::{LinExpr, LinearConstraint, Rational};
use has_ltl::hltl::{HltlBuilder, PropId};
use has_ltl::{HltlFormula, Ltl};
use has_model::{
    ArtifactSystem, Condition, SchemaClass, ServiceRef, SetUpdate, SystemBuilder, TaskId, Term,
    VarId,
};

/// Parameters of a generated verification instance.
#[derive(Clone, Debug)]
pub struct GeneratorParams {
    /// Foreign-key shape of the database schema.
    pub schema_class: SchemaClass,
    /// Depth of the task hierarchy (1 = a single root task).
    pub depth: usize,
    /// Number of children per non-leaf task.
    pub width: usize,
    /// Number of extra numeric variables per task.
    pub numeric_vars: usize,
    /// Whether tasks carry artifact relations (with insert/retrieve
    /// services).
    pub artifact_relations: bool,
    /// Whether conditions include linear arithmetic constraints.
    pub arithmetic: bool,
}

impl Default for GeneratorParams {
    fn default() -> Self {
        GeneratorParams {
            schema_class: SchemaClass::Acyclic,
            depth: 2,
            width: 1,
            numeric_vars: 1,
            artifact_relations: false,
            arithmetic: false,
        }
    }
}

/// A generated instance: the system, the property, and a label for reports.
#[derive(Clone, Debug)]
pub struct GeneratedSystem {
    /// The artifact system.
    pub system: ArtifactSystem,
    /// The property to verify.
    pub property: HltlFormula,
    /// Human-readable label (used in benchmark output).
    pub label: String,
}

impl GeneratorParams {
    /// The `depth ≫ width` stress family: a single chain of `depth` tasks
    /// (width 1, no artifact relations or arithmetic, acyclic schema).
    ///
    /// This shape is the scheduling worst case for a level-synchronized
    /// engine — every hierarchy level holds exactly one task, so level
    /// barriers serialize the whole run — which is what makes it the
    /// reference instance for the readiness-scheduler experiments (EXP-P1's
    /// deep-narrow row) and the deep-narrow determinism regression test.
    pub fn deep_narrow(depth: usize) -> GeneratorParams {
        GeneratorParams {
            schema_class: SchemaClass::Acyclic,
            depth,
            width: 1,
            numeric_vars: 1,
            artifact_relations: false,
            arithmetic: false,
        }
    }

    /// A short label describing the parameter point.
    pub fn label(&self) -> String {
        format!(
            "{}/{}ar/{}arith/d{}w{}v{}",
            self.schema_class,
            if self.artifact_relations { "+" } else { "-" },
            if self.arithmetic { "+" } else { "-" },
            self.depth,
            self.width,
            self.numeric_vars
        )
    }

    /// Generates the instance.
    pub fn generate(&self) -> GeneratedSystem {
        let Base {
            b,
            tasks: all_tasks,
            parent_of: _,
            vars,
        } = self.base();

        let system = b.build().expect("generated system is well-formed");

        // Property: every invoked child eventually finishes its work (status
        // flag set), and the root never reaches status 1 without having done
        // work — a mixed liveness/safety property with one level of nesting.
        let root_vars = &vars[0];
        let property = {
            let root_task = system.root();
            let mut rb = HltlBuilder::new(root_task);
            let worked = rb.condition(Condition::eq_const(
                root_vars.status,
                Rational::from_int(1),
            ));
            let work_service = rb.service(ServiceRef::Internal(root_task, 0));
            let mut formula = worked.implies(work_service.or(Ltl::True)).globally();
            // One nested obligation per direct child of the root.
            for (i, &task) in all_tasks.iter().enumerate() {
                if system.task(task).parent == Some(root_task) {
                    let mut cb = HltlBuilder::new(task);
                    let done = cb.condition(Condition::eq_const(
                        vars[i].status,
                        Rational::from_int(1),
                    ));
                    let psi = cb.finish(done.eventually());
                    let sub = rb.child(task, psi);
                    let open = rb.service(ServiceRef::Opening(task));
                    formula = formula.and(open.implies(sub).globally());
                }
            }
            rb.finish(formula)
        };

        GeneratedSystem {
            system,
            property,
            label: self.label(),
        }
    }

    /// Builds the base system shared by [`generate`](GeneratorParams::generate)
    /// and the planting constructions: schema, task tree, per-task variables
    /// and services, and parent/child wiring — everything up to (but not
    /// including) `SystemBuilder::build` and the property.
    fn base(&self) -> Base {
        let mut b = SystemBuilder::new("generated");

        // Database schema per class.
        match self.schema_class {
            SchemaClass::Acyclic => {
                b.relation("DIM", &["weight"], &[]);
                b.relation("FACT", &["measure"], &[("dim", "DIM")]);
            }
            SchemaClass::LinearlyCyclic => {
                b.relation("DIM", &["weight"], &[]);
                b.relation("FACT", &["measure"], &[("dim", "DIM"), ("next", "FACT")]);
            }
            SchemaClass::Cyclic => {
                b.relation("DIM", &["weight"], &[("back", "FACT")]);
                b.relation("FACT", &["measure"], &[("dim", "DIM"), ("next", "FACT")]);
            }
        }
        let fact = b.relation_id("FACT").unwrap();
        let fact_arity = 2 + match self.schema_class {
            SchemaClass::Acyclic => 1,
            SchemaClass::LinearlyCyclic | SchemaClass::Cyclic => 2,
        };

        // Build a complete tree of tasks of the requested depth/width,
        // remembering each task's parent index in the creation order.
        let root = b.root_task("T0");
        let mut all_tasks: Vec<TaskId> = vec![root];
        let mut parent_of: Vec<Option<usize>> = vec![None];
        let mut frontier: Vec<usize> = vec![0];
        for level in 1..self.depth {
            let mut next = Vec::new();
            for &pi in &frontier {
                for w in 0..self.width {
                    let child = b.child_task(all_tasks[pi], &format!("T{level}_{pi}_{w}"));
                    all_tasks.push(child);
                    parent_of.push(Some(pi));
                    next.push(all_tasks.len() - 1);
                }
            }
            frontier = next;
        }

        // Populate every task with variables and services.
        let mut vars: Vec<TaskVars> = Vec::new();
        for (i, &task) in all_tasks.iter().enumerate() {
            let item = b.id_var(task, &format!("item{i}"));
            let dim = b.id_var(task, &format!("dim{i}"));
            let status = b.num_var(task, &format!("status{i}"));
            let nums: Vec<_> = (0..self.numeric_vars)
                .map(|k| b.num_var(task, &format!("n{i}_{k}")))
                .collect();
            vars.push(TaskVars {
                item,
                dim,
                status,
                nums,
            });
        }

        for (i, &task) in all_tasks.iter().enumerate() {
            let tv = &vars[i];
            // A "work" service binding the item to a FACT tuple and setting
            // the status flag.
            let mut args = vec![Term::Var(tv.item)];
            args.push(Term::Var(tv.nums.first().copied().unwrap_or(tv.status)));
            args.push(Term::Var(tv.dim));
            if fact_arity == 4 {
                args.push(Term::Var(tv.item)); // self-referencing `next`
            }
            let mut post = Condition::relation(fact, args)
                .and(Condition::eq_const(tv.status, Rational::from_int(1)));
            if self.arithmetic {
                // A linear constraint chaining the numeric variables.
                for pair in tv.nums.windows(2) {
                    post = post.and(Condition::arith(LinearConstraint::ge(
                        LinExpr::var(pair[1]),
                        LinExpr::var(pair[0]) + LinExpr::constant(Rational::ONE),
                    )));
                }
                post = post.and(Condition::arith(LinearConstraint::ge(
                    LinExpr::var(tv.nums.first().copied().unwrap_or(tv.status)),
                    LinExpr::zero(),
                )));
            }
            b.internal_service(task, "Work", Condition::True, post, SetUpdate::None);
            let _ = task;
            // A reset service so runs can loop forever.
            b.internal_service(
                task,
                "Reset",
                Condition::True,
                Condition::is_null(tv.item).and(Condition::eq_const(tv.status, Rational::ZERO)),
                SetUpdate::None,
            );
            if self.artifact_relations {
                b.artifact_relation(task, &format!("SET{i}"), &[tv.item, tv.dim]);
                b.internal_service(
                    task,
                    "Stash",
                    Condition::not_null(tv.item),
                    Condition::is_null(tv.item),
                    SetUpdate::Insert,
                );
                b.internal_service(
                    task,
                    "Unstash",
                    Condition::True,
                    Condition::True,
                    SetUpdate::Retrieve,
                );
            }
        }

        // Wire parent/child openings, inputs and outputs.
        for (i, &task) in all_tasks.iter().enumerate() {
            let Some(pi) = parent_of[i] else { continue };
            let parent_item = vars[pi].item;
            let parent_status = vars[pi].status;
            let child_item = vars[i].item;
            let child_status = vars[i].status;
            b.open_when(
                task,
                Condition::eq_const(parent_status, Rational::from_int(1)),
            );
            b.map_input(task, child_item, parent_item);
            // Each child returns its status into a fresh parent variable to
            // respect restriction 3 (no overwrite of parent inputs).
            // The returned variable also gives the property something to say.
            let ret = b.num_var(all_tasks[pi], &format!("ret_from_{i}"));
            b.map_output(task, ret, child_status);
            b.close_when(
                task,
                Condition::eq_const(child_status, Rational::from_int(1)),
            );
        }

        Base {
            b,
            tasks: all_tasks,
            parent_of,
            vars,
        }
    }

    /// Generates the base instance extended with the given [`Plant`]: the
    /// property (and for [`Plant::Blocking`] / [`Plant::Returning`] one extra
    /// root child) is constructed so that the instance is clean by
    /// construction, or violated in exactly the planted way.
    pub fn generate_planted(&self, plant: Plant) -> PlantedSystem {
        let Base {
            mut b,
            tasks,
            parent_of,
            vars,
        } = self.base();

        // Structural plants append fresh material *after* the base
        // construction so the base task/variable identities are unchanged.
        let planted_child: Option<(TaskId, VarId)> = match plant {
            Plant::Blocking => {
                // A root child that provably never returns: its only service
                // keeps `sflag` at 0 while the closing condition demands 1.
                let stuck = b.child_task(tasks[0], "Stuck");
                let sflag = b.num_var(stuck, "sflag");
                b.internal_service(
                    stuck,
                    "Spin",
                    Condition::True,
                    Condition::eq_const(sflag, Rational::ZERO),
                    SetUpdate::None,
                );
                b.open_when(stuck, Condition::True);
                b.close_when(stuck, Condition::eq_const(sflag, Rational::from_int(1)));
                Some((stuck, sflag))
            }
            Plant::Returning => {
                // A serviceless, childless root child: its only runs return
                // immediately, with `pflag` still at its sort default 0 — so
                // every returned call violates `F pflag=1`.
                let probe = b.child_task(tasks[0], "Probe");
                let pflag = b.num_var(probe, "pflag");
                b.open_when(probe, Condition::True);
                b.close_when(probe, Condition::True);
                Some((probe, pflag))
            }
            _ => None,
        };

        let system = b.build().expect("planted system is well-formed");
        let root_task = system.root();
        // Direct *base* children of the root (the planted child excluded):
        // the escape disjuncts `∨ F open(c)` range over exactly these, so
        // violating runs are pinned to never invoke the base hierarchy.
        let base_children: Vec<(usize, TaskId)> = tasks
            .iter()
            .copied()
            .enumerate()
            .filter(|&(i, _)| parent_of[i] == Some(0))
            .collect();

        let mut rb = HltlBuilder::new(root_task);
        let core: Ltl<PropId> = match plant {
            Plant::CleanTautology => {
                // `G (worked → worked)`: structurally non-trivial, true on
                // every run of every system.
                let worked = rb.condition(Condition::eq_const(
                    vars[0].status,
                    Rational::from_int(1),
                ));
                worked.clone().implies(worked).globally()
            }
            Plant::CleanDichotomy => {
                // `F worked ∨ G ¬worked`: a liveness-shaped semantic
                // tautology (either the flag is eventually set, or it never
                // is) exercising `F`/`G`/negation in the Büchi product.
                let worked = rb.condition(Condition::eq_const(
                    vars[0].status,
                    Rational::from_int(1),
                ));
                worked.clone().eventually().or(worked.not().globally())
            }
            Plant::CleanNested => {
                // `G (open c → [G (done → done)]_c)` per direct child: the
                // child sub-formula is a tautology, so every chosen child
                // tuple satisfies it and the implication always holds. With
                // no children this degenerates to the root tautology.
                let mut formula: Option<Ltl<PropId>> = None;
                for &(i, child) in &base_children {
                    let mut cb = HltlBuilder::new(child);
                    let done = cb.condition(Condition::eq_const(
                        vars[i].status,
                        Rational::from_int(1),
                    ));
                    let psi = cb.finish(done.clone().implies(done).globally());
                    let sub = rb.child(child, psi);
                    let open = rb.service(ServiceRef::Opening(child));
                    let clause = open.implies(sub).globally();
                    formula = Some(match formula {
                        Some(f) => f.and(clause),
                        None => clause,
                    });
                }
                formula.unwrap_or_else(|| {
                    let worked = rb.condition(Condition::eq_const(
                        vars[0].status,
                        Rational::from_int(1),
                    ));
                    worked.clone().implies(worked).globally()
                })
            }
            Plant::Lasso => {
                // `F status=7` is unsatisfiable (the base services only ever
                // set the status flag to 0 or 1), so violating runs must
                // falsify every escape disjunct too: they loop at the root
                // forever without opening any child — a lasso at the root.
                rb.condition(Condition::eq_const(
                    vars[0].status,
                    Rational::from_int(7),
                ))
                .eventually()
            }
            Plant::Blocking => {
                // Violating runs must open `Stuck` (falsifying `G ¬open`)
                // and never open a base child; once `Stuck` is open the root
                // can never move again, so every such run blocks on it.
                let (stuck, _) = planted_child.expect("blocking plants a child");
                rb.service(ServiceRef::Opening(stuck)).not().globally()
            }
            Plant::Returning => {
                // Violating runs must open `Probe` choosing a child tuple
                // whose β falsifies `F pflag=1` — and *every* run of the
                // serviceless `Probe` falsifies it, so the violation is
                // carried by a returned call originating in `Probe`.
                let (probe, pflag) = planted_child.expect("returning plants a child");
                let mut cb = HltlBuilder::new(probe);
                let set = cb.condition(Condition::eq_const(pflag, Rational::from_int(1)));
                let psi = cb.finish(set.eventually());
                let sub = rb.child(probe, psi);
                rb.service(ServiceRef::Opening(probe)).implies(sub).globally()
            }
        };

        // Escape disjuncts: a run satisfying `F open(c)` for a base child
        // `c` satisfies the property, so violating runs never enter the base
        // hierarchy — which is what pins the violation's kind and origin to
        // the planted construction alone.
        let mut formula = core;
        for &(_, child) in &base_children {
            formula = formula.or(rb.service(ServiceRef::Opening(child)).eventually());
        }
        let property = rb.finish(formula);

        let (origin, origin_name) = match planted_child {
            Some((task, _)) => (task, system.task(task).name.clone()),
            None => (root_task, system.task(root_task).name.clone()),
        };
        PlantedSystem {
            system,
            property,
            label: format!("{}+{}", self.label(), plant.slug()),
            plant,
            origin,
            origin_name,
        }
    }
}

/// Intermediate result of the base construction: the builder (still open for
/// planting extensions), the tasks in creation order, each task's parent
/// index, and each task's variables.
struct Base {
    b: SystemBuilder,
    tasks: Vec<TaskId>,
    parent_of: Vec<Option<usize>>,
    vars: Vec<TaskVars>,
}

/// The variables the base construction gives every task.
struct TaskVars {
    item: VarId,
    dim: VarId,
    status: VarId,
    nums: Vec<VarId>,
}

/// A planting construction: what [`GeneratorParams::generate_planted`] adds
/// to the base instance, and therefore what a verifier run on the result
/// must report. The three violation plants realize the three path kinds of
/// the paper's Lemma 21.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Plant {
    /// Clean by construction: the property is a structural tautology
    /// (`G (p → p)`), true on every run regardless of exploration caps.
    CleanTautology,
    /// Clean by construction: the liveness dichotomy `F p ∨ G ¬p`, a
    /// semantic tautology exercising `F`/`G` and negation.
    CleanDichotomy,
    /// Clean by construction: a nested child obligation whose sub-formula is
    /// a tautology, exercising the `[ψ]_child` machinery.
    CleanNested,
    /// Violating runs loop at the root forever (an unsatisfiable `F` goal
    /// with escape disjuncts for every child opening).
    Lasso,
    /// A fresh root child `Stuck` can never return; violating runs open it
    /// and block on it forever.
    Blocking,
    /// A fresh serviceless root child `Probe` returns immediately with its
    /// flag unset, violating its sub-formula `F pflag=1` on every returned
    /// call.
    Returning,
}

impl Plant {
    /// Whether this plant seeds a violation (`false` = clean by
    /// construction).
    pub fn is_violation(&self) -> bool {
        matches!(self, Plant::Lasso | Plant::Blocking | Plant::Returning)
    }

    /// Short label suffix (`clean-taut`, `lasso`, …).
    pub fn slug(&self) -> &'static str {
        match self {
            Plant::CleanTautology => "clean-taut",
            Plant::CleanDichotomy => "clean-dich",
            Plant::CleanNested => "clean-nest",
            Plant::Lasso => "lasso",
            Plant::Blocking => "blocking",
            Plant::Returning => "returning",
        }
    }
}

impl std::fmt::Display for Plant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.slug())
    }
}

/// A generated instance carrying a planted certificate: the system, the
/// property, and the task the planted violation originates in (the root for
/// [`Plant::Lasso`] and the clean plants).
#[derive(Clone, Debug)]
pub struct PlantedSystem {
    /// The artifact system (base construction plus the planted child, if
    /// any).
    pub system: ArtifactSystem,
    /// The property to verify.
    pub property: HltlFormula,
    /// Human-readable label (base parameters plus the plant slug).
    pub label: String,
    /// The plant this instance carries.
    pub plant: Plant,
    /// The task a witness-mode violation must originate in.
    pub origin: TaskId,
    /// That task's name.
    pub origin_name: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_schema_classes_generate_valid_systems() {
        for class in [
            SchemaClass::Acyclic,
            SchemaClass::LinearlyCyclic,
            SchemaClass::Cyclic,
        ] {
            for artifact in [false, true] {
                for arith in [false, true] {
                    let params = GeneratorParams {
                        schema_class: class,
                        artifact_relations: artifact,
                        arithmetic: arith,
                        ..GeneratorParams::default()
                    };
                    let g = params.generate();
                    assert_eq!(g.system.schema.schema_class(), class);
                    assert_eq!(g.system.schema.uses_artifact_relations(), artifact);
                    assert_eq!(g.system.schema.uses_arithmetic(), arith);
                    assert!(g.property.validate(&g.system).is_ok(), "{}", g.label);
                }
            }
        }
    }

    #[test]
    fn depth_and_width_control_the_hierarchy() {
        let params = GeneratorParams {
            depth: 3,
            width: 2,
            ..GeneratorParams::default()
        };
        let g = params.generate();
        assert_eq!(g.system.schema.depth(), 3);
        assert_eq!(g.system.schema.task_count(), 1 + 2 + 4);
    }

    #[test]
    fn deep_narrow_builds_a_chain() {
        let g = GeneratorParams::deep_narrow(6).generate();
        assert_eq!(g.system.schema.depth(), 6);
        // One task per level: a pure chain.
        assert_eq!(g.system.schema.task_count(), 6);
        assert!(g.property.validate(&g.system).is_ok(), "{}", g.label);
    }

    #[test]
    fn labels_are_distinct_per_parameter_point() {
        let a = GeneratorParams::default().label();
        let b = GeneratorParams {
            arithmetic: true,
            ..GeneratorParams::default()
        }
        .label();
        assert_ne!(a, b);
    }
}
