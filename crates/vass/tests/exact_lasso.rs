//! Tests of the exact lasso decision procedure: the EXP-F3 regression that
//! motivated it, cap-bug regressions, and property-based cross-checks against
//! the explicit [`BoundedExplorer`] ground truth.

use has_vass::{BoundedExplorer, CoverabilityGraph, Vass};
use proptest::prelude::*;
use std::time::Instant;

/// The EXP-F3 gadget: state 0 pumps each of `d` counters, state 1 drains
/// them (see `crates/bench/benches/vass_dimension.rs`).
fn pump_drain(d: usize) -> Vass {
    let mut v = Vass::new(2, d);
    for i in 0..d {
        let mut up = vec![0i64; d];
        up[i] = 1;
        v.add_action(0, up, 0);
        let mut down = vec![0i64; d];
        down[i] = -1;
        v.add_action(1, down, 1);
    }
    v.add_action(0, vec![0; d], 1);
    v
}

/// Regression for the EXP-F3 blowup: the old depth-first cycle search ran
/// for many minutes on the `d = 5` instance; the exact procedure must answer
/// both lasso queries near-instantly (this is a tier-1 test, so the bound is
/// generous enough for debug builds and loaded CI machines).
#[test]
fn exp_f3_pump_drain_5_is_fast() {
    let v = pump_drain(5);
    let start = Instant::now();
    // State 0 pumps forever: repeatedly reachable.
    assert!(v.state_repeated_reachable(0, 0));
    // State 1 only drains: every cycle through it is strictly negative.
    assert!(!v.state_repeated_reachable(0, 1));
    let elapsed = start.elapsed();
    assert!(
        elapsed.as_secs() < 5,
        "EXP-F3 d=5 lasso queries took {elapsed:?}; the exponential blowup is back"
    );
}

/// The old implementation capped the searched cycle length (callers passed
/// `Some(32)`), silently missing longer lassos. The only cycle through state
/// 0 here has length 100.
#[test]
fn lassos_longer_than_the_old_cap_are_found() {
    let n = 100;
    let mut v = Vass::new(n, 1);
    for s in 0..n {
        v.add_action(s, vec![0], (s + 1) % n);
    }
    assert!(v.state_repeated_reachable(0, 0));
    let graph = CoverabilityGraph::build(&v, 0);
    assert!(graph.nonneg_cycle_through(&v, n - 1));
}

/// A lasso that must traverse a pumping loop many times before paying a
/// large debt: the witnessing closed walk is much longer than the number of
/// graph nodes, which defeated the old default bound of `2 · |nodes|`.
#[test]
fn heavily_amortized_lassos_are_found() {
    // 0 → 1 costs 1000 of counter 0; a self-loop at 1 earns 1 per turn;
    // 1 → 0 closes the cycle. Counter 0 starts pumpable at state 0.
    let mut v = Vass::new(2, 1);
    v.add_action(0, vec![1], 0); // pump
    v.add_action(0, vec![-1000], 1);
    v.add_action(1, vec![1], 1);
    v.add_action(1, vec![0], 0);
    assert!(v.state_repeated_reachable(0, 0));
    assert!(v.state_repeated_reachable(0, 1));
}

fn arb_vass(states: usize, dim: usize) -> impl Strategy<Value = Vass> {
    let action = (
        0..states,
        proptest::collection::vec(-2i64..=2, dim),
        0..states,
    );
    proptest::collection::vec(action, 1..10).prop_map(move |actions| {
        let mut v = Vass::new(states, dim);
        for (from, delta, to) in actions {
            v.add_action(from, delta, to);
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Completeness against ground truth: every capped lasso the explicit
    /// explorer finds is a genuine lasso, so the exact procedure must
    /// confirm it.
    #[test]
    fn explorer_lassos_are_confirmed(vass in arb_vass(4, 3)) {
        let explorer = BoundedExplorer::new(5, 20_000);
        for target in 0..4 {
            if explorer.has_lasso(&vass, 0, target) {
                prop_assert!(
                    vass.state_repeated_reachable(0, target),
                    "explorer found a lasso at {target} that the exact procedure missed"
                );
            }
        }
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    /// Soundness against an independent bounded witness search: whenever the
    /// exact procedure claims a lasso, a closed walk with componentwise
    /// non-negative effect must exist in the coverability graph. The witness
    /// search is the pre-rewrite exponential DFS, so it runs with fewer
    /// cases and under a step budget; instances where it exhausts the budget
    /// without a verdict are skipped (they cannot falsify the claim either
    /// way).
    #[test]
    fn claimed_lassos_have_walk_witnesses(vass in arb_vass(3, 2)) {
        let graph = CoverabilityGraph::build(&vass, 0);
        for target in 0..3 {
            if graph.nonneg_cycle_through(&vass, target) {
                prop_assert!(
                    walk_witness_exists(&vass, &graph, target, 28, 60_000) != Some(false),
                    "exact procedure claims a lasso at {target} with no short witness"
                );
            }
        }
    }
}

/// Reference search: a closed walk through a node with state `target` whose
/// accumulated delta is componentwise non-negative, up to `max_len` steps,
/// with dominance pruning (the pre-rewrite algorithm, kept here as a test
/// oracle only). Returns `Some(found)` on an exhaustive answer within the
/// step budget, `None` when the budget runs out first.
fn walk_witness_exists(
    vass: &Vass,
    graph: &CoverabilityGraph,
    target: usize,
    max_len: usize,
    mut budget: usize,
) -> Option<bool> {
    let nodes: Vec<_> = graph.nodes().collect();
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nodes.len()];
    for (from, action_idx, to) in graph.edges() {
        adj[from].push((action_idx, to));
    }
    for start in 0..nodes.len() {
        if nodes[start].state != target {
            continue;
        }
        let mut stack = vec![(start, vec![0i64; vass.dim], 0usize)];
        let mut seen: Vec<Vec<(Vec<i64>, usize)>> = vec![Vec::new(); nodes.len()];
        while let Some((node, acc, depth)) = stack.pop() {
            match budget.checked_sub(1) {
                Some(b) => budget = b,
                None => return None,
            }
            if depth > 0 && node == start && acc.iter().all(|d| *d >= 0) {
                return Some(true);
            }
            if depth >= max_len {
                continue;
            }
            let dominated = seen[node]
                .iter()
                .any(|(prev, pd)| *pd <= depth && prev.iter().zip(&acc).all(|(p, a)| p >= a));
            if dominated && depth > 0 {
                continue;
            }
            seen[node].push((acc.clone(), depth));
            for &(action_idx, next) in &adj[node] {
                let delta = &vass.actions[action_idx].delta;
                let next_acc: Vec<i64> = acc.iter().zip(delta).map(|(a, d)| a + d).collect();
                stack.push((next, next_acc, depth + 1));
            }
        }
    }
    Some(false)
}
