//! Representation-equivalence property suite for the dense coverability
//! core.
//!
//! The arena/interner-backed [`CoverabilityGraph`] replaced an ordered-map
//! construction (`BTreeMap<(state, Marking), usize>` canonicalization,
//! per-candidate ancestor-chain walks). The refactor's contract is that the
//! dense representation is *observationally identical*, not merely
//! equivalent up to reordering: node ids are assigned in the same worklist
//! discovery order, edges are recorded in the same order, and the witness
//! paths derived from the parent chains are the same action sequences —
//! byte-for-byte determinism is what DESIGN.md §5.6 promises downstream.
//!
//! The reference model below is a faithful reimplementation of the former
//! map-based construction (including the acceleration's nearest-ancestor
//! pumping order and the cap-at-intern-time semantics). The properties
//! compare, on random small VASS:
//!
//! * the full node sequence `(state, marking, parent, via_action)`;
//! * the full edge list `(from, action, to)`;
//! * the coverability answers of every control state, and the chosen
//!   reachability witness paths;
//! * the capped variants (`build_capped`, `build_to_state`).

use has_vass::{CoverabilityGraph, Marking, Vass, OMEGA};
use proptest::prelude::*;
use std::collections::{BTreeMap, VecDeque};

// ---------------------------------------------------------------------
// Reference model: the former BTreeMap-backed Karp–Miller construction.
// ---------------------------------------------------------------------

#[derive(Clone, Debug, PartialEq, Eq)]
struct RefNode {
    state: usize,
    marking: Marking,
    parent: Option<usize>,
    via_action: Option<usize>,
}

struct RefGraph {
    nodes: Vec<RefNode>,
    edges: Vec<(usize, usize, usize)>,
    index: BTreeMap<(usize, Marking), usize>,
}

fn add(marking: &Marking, delta: &[i64]) -> Option<Marking> {
    let mut out = Vec::with_capacity(marking.len());
    for (m, d) in marking.iter().zip(delta) {
        if *m == OMEGA {
            out.push(OMEGA);
        } else {
            let v = (*m as i128) + (*d as i128);
            if v < 0 {
                return None;
            }
            out.push(v as u64);
        }
    }
    Some(out)
}

fn leq(a: &Marking, b: &Marking) -> bool {
    a.iter().zip(b).all(|(x, y)| *x <= *y)
}

impl RefGraph {
    fn build(vass: &Vass, init: usize, max_nodes: usize, stop_at: Option<usize>) -> Self {
        let mut graph = RefGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            index: BTreeMap::new(),
        };
        if max_nodes == 0 {
            return graph;
        }
        let actions_by_state = vass.adjacency();
        let root_marking = vec![0u64; vass.dim];
        let root = graph
            .intern(init, root_marking, None, None, max_nodes)
            .expect("first intern under non-zero cap");
        if stop_at == Some(init) {
            return graph;
        }
        let mut worklist = VecDeque::from([root]);
        let mut expanded = vec![false; 1];

        while let Some(node_id) = worklist.pop_front() {
            if expanded[node_id] {
                continue;
            }
            expanded[node_id] = true;
            let (state, marking) = {
                let n = &graph.nodes[node_id];
                (n.state, n.marking.clone())
            };
            for &action_idx in &actions_by_state[state] {
                let action = &vass.actions[action_idx];
                let Some(mut next) = add(&marking, &action.delta) else {
                    continue;
                };
                // ω-acceleration over the parent chain, nearest ancestor
                // first, pumping into the progressively updated `next`.
                let mut ancestor = Some(node_id);
                while let Some(a) = ancestor {
                    let anc = &graph.nodes[a];
                    if anc.state == action.to && leq(&anc.marking, &next) && anc.marking != next
                    {
                        for (av, nv) in anc.marking.iter().zip(next.iter_mut()) {
                            if *av < *nv {
                                *nv = OMEGA;
                            }
                        }
                    }
                    ancestor = anc.parent;
                }
                let existed = graph.index.contains_key(&(action.to, next.clone()));
                let Some(target) =
                    graph.intern(action.to, next, Some(node_id), Some(action_idx), max_nodes)
                else {
                    continue;
                };
                graph.edges.push((node_id, action_idx, target));
                if !existed {
                    expanded.push(false);
                    worklist.push_back(target);
                    if stop_at == Some(action.to) {
                        return graph;
                    }
                }
            }
        }
        graph
    }

    fn intern(
        &mut self,
        state: usize,
        marking: Marking,
        parent: Option<usize>,
        via_action: Option<usize>,
        max_nodes: usize,
    ) -> Option<usize> {
        if let Some(&id) = self.index.get(&(state, marking.clone())) {
            return Some(id);
        }
        if self.nodes.len() >= max_nodes {
            return None;
        }
        let id = self.nodes.len();
        self.nodes.push(RefNode {
            state,
            marking: marking.clone(),
            parent,
            via_action,
        });
        self.index.insert((state, marking), id);
        Some(id)
    }

    fn path_to_state(&self, target: usize) -> Option<Vec<usize>> {
        let node = self.nodes.iter().position(|n| n.state == target)?;
        let mut path = Vec::new();
        let mut current = node;
        while let Some(parent) = self.nodes[current].parent {
            path.push(self.nodes[current].via_action.expect("non-root has via"));
            current = parent;
        }
        path.reverse();
        Some(path)
    }
}

// ---------------------------------------------------------------------
// Comparison helpers
// ---------------------------------------------------------------------

fn assert_same(reference: &RefGraph, dense: &CoverabilityGraph) {
    assert_eq!(reference.nodes.len(), dense.node_count(), "node counts");
    for (id, (r, d)) in reference.nodes.iter().zip(dense.nodes()).enumerate() {
        assert_eq!(r.state, d.state, "state of node {id}");
        assert_eq!(&r.marking[..], d.marking, "marking of node {id}");
        assert_eq!(r.parent, d.parent, "parent of node {id}");
        assert_eq!(r.via_action, d.via_action, "via_action of node {id}");
    }
    let dense_edges: Vec<(usize, usize, usize)> = dense.edges().collect();
    assert_eq!(reference.edges, dense_edges, "edge lists");
}

fn arb_vass(states: usize, dim: usize) -> impl Strategy<Value = Vass> {
    let action = (
        0..states,
        proptest::collection::vec(-2i64..=2, dim),
        0..states,
    );
    proptest::collection::vec(action, 1..10).prop_map(move |actions| {
        let mut v = Vass::new(states, dim);
        for (from, delta, to) in actions {
            v.add_action(from, delta, to);
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(250))]

    #[test]
    fn full_graphs_are_identical(vass in arb_vass(4, 2)) {
        let reference = RefGraph::build(&vass, 0, usize::MAX, None);
        let dense = CoverabilityGraph::build(&vass, 0);
        assert_same(&reference, &dense);
    }

    #[test]
    fn capped_graphs_are_identical(vass in arb_vass(4, 2), cap in 0usize..12) {
        let reference = RefGraph::build(&vass, 0, cap, None);
        let dense = CoverabilityGraph::build_capped(&vass, 0, cap);
        assert_same(&reference, &dense);
    }

    #[test]
    fn target_stopped_graphs_are_identical(vass in arb_vass(4, 2), target in 0usize..4) {
        let reference = RefGraph::build(&vass, 0, usize::MAX, Some(target));
        let dense = CoverabilityGraph::build_to_state(&vass, 0, target);
        assert_same(&reference, &dense);
    }

    #[test]
    fn coverability_answers_and_witnesses_agree(vass in arb_vass(4, 2)) {
        let reference = RefGraph::build(&vass, 0, usize::MAX, None);
        let dense = CoverabilityGraph::build(&vass, 0);
        for state in 0..4 {
            let ref_path = reference.path_to_state(state);
            let dense_path = dense.path_to_state(state);
            prop_assert_eq!(
                ref_path.is_some(),
                dense_path.is_some(),
                "coverability of state {}", state
            );
            // Not just *a* witness: the same chosen witness, action for
            // action (both pick the first node in discovery order and walk
            // the same parent chain).
            prop_assert_eq!(ref_path, dense_path, "witness path to state {}", state);
        }
    }
}
