//! Equivalence property suite for the shared incremental Karp–Miller arena
//! (DESIGN.md §5.12).
//!
//! [`SharedCoverability`] answers the same coverability and lasso
//! sub-queries as a from-scratch [`CoverabilityGraph`] per query, while
//! reusing interned nodes, stored successor spans, and ω-accelerations
//! across the queries of one arena, and pruning via the per-control-state
//! antichain. Pruning and reuse change the traversal, not the answers; the
//! properties below pin that on random small VASS (the
//! `prop_dense_equiv.rs` generator), always driving *sequences* of queries
//! through one arena so cross-query reuse is actually exercised:
//!
//! * the coverable control-state set of every query equals the
//!   from-scratch build's, regardless of what ran before it on the arena;
//! * the lasso tiers bracket the from-scratch decision — a real-edge
//!   non-negative cycle is sound evidence, the absence of one over the
//!   jump-augmented graph is a sound refutation — and the full tiered
//!   decision (with from-scratch fallback in the ambiguous gap) agrees
//!   exactly;
//! * materialized pump-cycle witnesses are well-formed closed walks
//!   through a target state with componentwise non-negative summed effect;
//! * overlay witness paths chain control states from the root;
//! * capped runs under-approximate, and identical query sequences on
//!   fresh arenas are byte-identical (`Debug` render) — the determinism
//!   contract sharing must uphold.

use has_vass::{CoverabilityGraph, SharedCoverability, SharedRun, Vass};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn arb_vass(states: usize, dim: usize) -> impl Strategy<Value = Vass> {
    let action = (
        0..states,
        proptest::collection::vec(-2i64..=2, dim),
        0..states,
    );
    proptest::collection::vec(action, 1..10).prop_map(move |actions| {
        let mut v = Vass::new(states, dim);
        for (from, delta, to) in actions {
            v.add_action(from, delta, to);
        }
        v
    })
}

fn shared_states(run: &SharedRun) -> BTreeSet<usize> {
    run.states().collect()
}

fn reference_states(vass: &Vass, init: usize) -> BTreeSet<usize> {
    CoverabilityGraph::build(vass, init)
        .nodes()
        .map(|n| n.state)
        .collect()
}

/// The verifier's four-tier lasso decision over a shared run: sound
/// real-edge evidence, complete jump-augmented refutation, from-scratch
/// rebuild in the gap.
fn tiered_lasso(vass: &Vass, init: usize, run: &SharedRun, target: usize) -> bool {
    let pred = |s: usize| s == target;
    if run.nonneg_cycle_through_pred(vass, &pred) {
        return true;
    }
    if !run.augmented_nonneg_cycle_through_pred(vass, &pred) {
        return false;
    }
    CoverabilityGraph::build(vass, init).nonneg_cycle_through_pred(vass, &pred)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn coverable_state_sets_match_from_scratch(vass in arb_vass(4, 2)) {
        let mut arena = SharedCoverability::new(&vass);
        // Every state as init, twice over: the second round replays
        // stored spans over a warm arena.
        for init in [0usize, 1, 2, 3, 0, 1, 2, 3] {
            let run = arena.query(&vass, init, usize::MAX, &[]);
            prop_assert!(!run.capped);
            prop_assert_eq!(
                shared_states(&run),
                reference_states(&vass, init),
                "coverable set from init {}", init
            );
        }
    }

    #[test]
    fn lasso_tiers_bracket_and_decide(vass in arb_vass(4, 2)) {
        let mut arena = SharedCoverability::new(&vass);
        for init in [0usize, 1, 2, 3] {
            let run = arena.query(&vass, init, usize::MAX, &[]);
            let reference = CoverabilityGraph::build(&vass, init);
            for target in 0..4usize {
                let expect = reference.nonneg_cycle_through_pred(&vass, &|s| s == target);
                let sound = run.nonneg_cycle_through_pred(&vass, &|s| s == target);
                let complete =
                    run.augmented_nonneg_cycle_through_pred(&vass, &|s| s == target);
                prop_assert!(!sound || expect, "real-edge cycle must be sound");
                prop_assert!(complete || !expect, "augmented graph must be complete");
                prop_assert_eq!(
                    tiered_lasso(&vass, init, &run, target),
                    expect,
                    "tiered decision from init {} target {}", init, target
                );
            }
        }
    }

    #[test]
    fn materialized_cycles_are_wellformed(vass in arb_vass(4, 2)) {
        let mut arena = SharedCoverability::new(&vass);
        for init in [0usize, 1, 2, 3] {
            let run = arena.query(&vass, init, usize::MAX, &[]);
            for target in 0..4usize {
                let search =
                    run.nonneg_cycle_search_through_pred(&vass, &|s| s == target, 4_096);
                if let has_vass::CycleSearch::Witness(walk) = search {
                    prop_assert!(!walk.is_empty());
                    let (start, _, _) = walk[0];
                    prop_assert_eq!(run.state(start), target, "walk starts at a target");
                    let mut total = vec![0i64; vass.dim];
                    let mut at = start;
                    for &(from, action, to) in &walk {
                        prop_assert_eq!(from, at, "consecutive edges chain");
                        prop_assert_eq!(vass.actions[action].from, run.state(from));
                        prop_assert_eq!(vass.actions[action].to, run.state(to));
                        for (t, d) in total.iter_mut().zip(&vass.actions[action].delta) {
                            *t += d;
                        }
                        at = to;
                    }
                    prop_assert_eq!(at, start, "walk is closed");
                    prop_assert!(total.iter().all(|&d| d >= 0), "summed effect nonneg");
                }
            }
        }
    }

    #[test]
    fn witness_paths_chain_control_states(vass in arb_vass(4, 2)) {
        let mut arena = SharedCoverability::new(&vass);
        for init in [0usize, 1, 2, 3, 2, 1] {
            let run = arena.query(&vass, init, usize::MAX, &[]);
            for vidx in 0..run.node_count() {
                let mut state = init;
                for a in run.path_to_node(vidx) {
                    prop_assert_eq!(vass.actions[a].from, state);
                    state = vass.actions[a].to;
                }
                prop_assert_eq!(state, run.state(vidx), "path ends at the node");
            }
        }
    }

    #[test]
    fn capped_runs_underapproximate(vass in arb_vass(4, 2), cap in 0usize..12) {
        let mut arena = SharedCoverability::new(&vass);
        // Warm the arena first so the capped query replays stored spans.
        let _ = arena.query(&vass, 0, usize::MAX, &[]);
        let run = arena.query(&vass, 1, cap, &[]);
        prop_assert!(run.node_count() <= cap);
        let reference = reference_states(&vass, 1);
        prop_assert!(shared_states(&run).is_subset(&reference));
    }

    #[test]
    fn identical_query_sequences_are_byte_identical(vass in arb_vass(4, 2)) {
        let mut a = SharedCoverability::new(&vass);
        let mut b = SharedCoverability::new(&vass);
        for init in [0usize, 3, 1, 2, 0, 3] {
            let ra = a.query(&vass, init, usize::MAX, &[]);
            let rb = b.query(&vass, init, usize::MAX, &[]);
            prop_assert_eq!(format!("{ra:?}"), format!("{rb:?}"));
        }
    }
}
