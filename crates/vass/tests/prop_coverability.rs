//! Property-based cross-validation of the Karp–Miller procedures against the
//! explicit bounded explorer on random small VASS.
//!
//! The bounded explorer is exact *within its counter cap*, so:
//! * every control state it reaches must be declared reachable by the
//!   Karp–Miller procedure (completeness of coverability);
//! * every capped lasso it finds must be confirmed by the repeated
//!   reachability procedure (completeness of lasso detection);
//! * conversely, if Karp–Miller declares a state unreachable the explorer
//!   must not reach it (soundness).

use has_vass::{BoundedExplorer, Vass};
use proptest::prelude::*;

fn arb_vass(states: usize, dim: usize) -> impl Strategy<Value = Vass> {
    let action = (
        0..states,
        proptest::collection::vec(-2i64..=2, dim),
        0..states,
    );
    proptest::collection::vec(action, 1..8).prop_map(move |actions| {
        let mut v = Vass::new(states, dim);
        for (from, delta, to) in actions {
            v.add_action(from, delta, to);
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn karp_miller_covers_bounded_reachability(vass in arb_vass(4, 2)) {
        let explorer = BoundedExplorer::new(6, 20_000);
        let reachable = explorer.reachable_states(&vass, 0);
        for state in reachable {
            prop_assert!(
                vass.state_reachable(0, state),
                "explorer reached state {state} but Karp–Miller says unreachable"
            );
        }
    }

    #[test]
    fn unreachable_states_are_never_explored(vass in arb_vass(4, 2)) {
        let explorer = BoundedExplorer::new(6, 20_000);
        let reachable = explorer.reachable_states(&vass, 0);
        for state in 0..4 {
            if !vass.state_reachable(0, state) {
                prop_assert!(!reachable.contains(&state));
            }
        }
    }

    #[test]
    fn capped_lassos_are_confirmed(vass in arb_vass(3, 2)) {
        let explorer = BoundedExplorer::new(5, 20_000);
        for target in 0..3 {
            if explorer.has_lasso(&vass, 0, target) {
                prop_assert!(
                    vass.state_repeated_reachable(0, target),
                    "explorer found a capped lasso at {target} that Karp–Miller missed"
                );
            }
        }
    }
}
