//! Explicit-state exploration with counter caps.
//!
//! [`BoundedExplorer`] enumerates the exact configuration space of a VASS up
//! to a per-counter cap. It is *not* a decision procedure (counters may need
//! to exceed any fixed cap), but it serves two purposes:
//!
//! * a ground-truth oracle for property tests of the Karp–Miller procedures
//!   (any configuration it reaches is genuinely reachable, and for capped
//!   systems it is exhaustive);
//! * witness replay: reconstructing a concrete run for a counterexample
//!   reported by the symbolic verifier.

use crate::vass::Vass;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Explicit-state explorer with a per-counter cap.
#[derive(Clone, Debug)]
pub struct BoundedExplorer {
    cap: u64,
    max_configurations: usize,
}

impl Default for BoundedExplorer {
    fn default() -> Self {
        BoundedExplorer {
            cap: 16,
            max_configurations: 200_000,
        }
    }
}

impl BoundedExplorer {
    /// Creates an explorer with the given counter cap and configuration
    /// budget.
    pub fn new(cap: u64, max_configurations: usize) -> Self {
        BoundedExplorer {
            cap,
            max_configurations,
        }
    }

    /// All configurations reachable from `(init, 0̄)` without any counter
    /// exceeding the cap, up to the configuration budget.
    pub fn reachable_configurations(
        &self,
        vass: &Vass,
        init: usize,
    ) -> BTreeSet<(usize, Vec<u64>)> {
        let adjacency = vass.adjacency();
        let mut seen = BTreeSet::new();
        let start = (init, vec![0u64; vass.dim]);
        let mut queue = VecDeque::from([start.clone()]);
        seen.insert(start);
        while let Some((state, counters)) = queue.pop_front() {
            if seen.len() >= self.max_configurations {
                break;
            }
            for action in adjacency[state].iter().map(|&i| &vass.actions[i]) {
                let mut next = counters.clone();
                let mut ok = true;
                for (c, d) in next.iter_mut().zip(&action.delta) {
                    let v = *c as i128 + *d as i128;
                    if v < 0 || v > self.cap as i128 {
                        ok = false;
                        break;
                    }
                    *c = v as u64;
                }
                if !ok {
                    continue;
                }
                let config = (action.to, next);
                if seen.insert(config.clone()) {
                    queue.push_back(config);
                }
            }
        }
        seen
    }

    /// Control states reachable within the cap.
    pub fn reachable_states(&self, vass: &Vass, init: usize) -> BTreeSet<usize> {
        self.reachable_configurations(vass, init)
            .into_iter()
            .map(|(s, _)| s)
            .collect()
    }

    /// Checks for a capped lasso: a reachable configuration with control
    /// state `target` from which the same control state is reached again
    /// with componentwise no-smaller counters (all within the cap).
    pub fn has_lasso(&self, vass: &Vass, init: usize, target: usize) -> bool {
        let configs = self.reachable_configurations(vass, init);
        // Group configurations per control state for the second search.
        let mut by_state: BTreeMap<usize, Vec<Vec<u64>>> = BTreeMap::new();
        for (s, c) in &configs {
            by_state.entry(*s).or_default().push(c.clone());
        }
        let Some(candidates) = by_state.get(&target) else {
            return false;
        };
        let adjacency = vass.adjacency();
        for base in candidates {
            // Forward search from (target, base), at least one step.
            let mut seen = BTreeSet::new();
            let mut queue = VecDeque::from([(target, base.clone(), 0usize)]);
            while let Some((state, counters, steps)) = queue.pop_front() {
                if steps > 0 && state == target && counters.iter().zip(base).all(|(a, b)| a >= b) {
                    return true;
                }
                if seen.len() >= self.max_configurations {
                    break;
                }
                for action in adjacency[state].iter().map(|&i| &vass.actions[i]) {
                    let mut next = counters.clone();
                    let mut ok = true;
                    for (c, d) in next.iter_mut().zip(&action.delta) {
                        let v = *c as i128 + *d as i128;
                        if v < 0 || v > self.cap as i128 {
                            ok = false;
                            break;
                        }
                        *c = v as u64;
                    }
                    if !ok {
                        continue;
                    }
                    if seen.insert((action.to, next.clone())) {
                        queue.push_back((action.to, next, steps + 1));
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capped_exploration_is_exact_for_small_systems() {
        let mut v = Vass::new(2, 1);
        v.add_action(0, vec![1], 0);
        v.add_action(0, vec![-1], 1);
        let explorer = BoundedExplorer::new(3, 1000);
        let configs = explorer.reachable_configurations(&v, 0);
        // counters 0..=3 in state 0, 0..=2 in state 1.
        assert_eq!(configs.len(), 4 + 3);
        assert_eq!(explorer.reachable_states(&v, 0).len(), 2);
    }

    #[test]
    fn lasso_detection_matches_intuition() {
        let mut v = Vass::new(2, 1);
        v.add_action(0, vec![1], 0);
        v.add_action(0, vec![0], 1);
        v.add_action(1, vec![-1], 1);
        let explorer = BoundedExplorer::default();
        assert!(explorer.has_lasso(&v, 0, 0));
        assert!(!explorer.has_lasso(&v, 0, 1));
    }

    #[test]
    fn budget_limits_exploration() {
        let mut v = Vass::new(1, 2);
        v.add_action(0, vec![1, 0], 0);
        v.add_action(0, vec![0, 1], 0);
        let explorer = BoundedExplorer::new(1_000, 50);
        let configs = explorer.reachable_configurations(&v, 0);
        assert!(configs.len() <= 51);
    }
}
