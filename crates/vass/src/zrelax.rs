//! Static pre-solver relaxations over raw VASS (DESIGN.md §5.11).
//!
//! Every Lemma 21 query the verifier issues — coverability of a control-state
//! set, or a lasso through an accepting state — pays for a Karp–Miller graph
//! even when a cheap *necessary condition* already refutes it. This module is
//! the decision substrate of the `has-analysis` pre-solver: each function is
//! a sound refutation filter over the raw VASS (control states + action
//! deltas), run before any graph is built.
//!
//! * [`control_reachable`] — plain graph reachability with counters ignored:
//!   the cheapest over-approximation, and the restriction the LP filters
//!   build on.
//! * [`z_cover_feasible`] — the **state equation / Parikh-image
//!   Z-relaxation**: an exact rational LP over action multiplicities
//!   ([`has_arith::FlowLp`]) with flow balance from the initial state to a
//!   super-sink behind the target set, and componentwise non-negative total
//!   counter effect. A real covering run fires each action a non-negative
//!   integer number of times satisfying exactly these constraints, so
//!   infeasibility certifies "no target is coverable". Integrality and the
//!   non-negativity of *intermediate* counter values are relaxed away.
//! * [`z_lasso_feasible`] — the circulation form of the same relaxation: a
//!   pump cycle of any lasso is a flow-conserving circulation with
//!   componentwise non-negative total effect and at least one unit of flow
//!   leaving an accepting state. Infeasibility certifies "no lasso".
//! * [`counter_dfa_refutes`] — a per-dimension **counter-abstraction DFA**:
//!   each projected dimension is normalized by the gcd of its deltas and
//!   tracked exactly up to a small truncation bound `k` (with a saturating
//!   "≥ k" top level), in product with the control skeleton. The abstraction
//!   keeps exactly the ordering fact the LP relaxation discards — a counter
//!   may never go negative *along* the run — so it refutes targets the state
//!   equation cannot.
//! * [`certified_bounded_dims`] — per-dimension boundedness certificates: a
//!   dimension with no control-reachable circulation of componentwise
//!   non-negative effect and strictly positive effect on it can never be
//!   ω-accelerated, which
//!   [`CoverabilityGraph::build_capped_with_bounds`](crate::CoverabilityGraph::build_capped_with_bounds)
//!   exploits to skip acceleration work.
//!
//! Soundness is one-directional throughout: a refutation is definitive, a
//! feasible relaxation says nothing. The pre-solver therefore only ever
//! *removes* work whose answer is already known, which is what preserves the
//! verifier's determinism contract (byte-identical verdicts with the
//! pre-solver on and off — DESIGN.md §5.11).

use crate::vass::Vass;
use has_arith::{FlowLp, LpCmp, LpProblem, Rational};

/// Hard ceiling on `control_states × abstraction_levels` for one
/// [`counter_dfa_refutes`] product; dimensions whose product would exceed it
/// are skipped (returning "no refutation" is always sound).
const DFA_PRODUCT_CAP: usize = 1 << 18;

/// Work ceiling for one exact-rational simplex solve, measured structurally
/// as `rows² × columns` (pivot count scales with the rows, each pivot costs
/// `rows × columns` rational operations). Programs above the ceiling are not
/// solved — the filter reports "no refutation", which is always sound. The
/// ceiling keeps one solve in the low hundreds of milliseconds, so the
/// pre-solver can never cost more than the capped Karp–Miller build it
/// would skip; without it the 300-plus-state VASS of the artifact-relation
/// workloads spend tens of seconds per query in the LP. Structural, not
/// timed: the gate depends only on the program's shape, so pre-solver
/// verdicts stay deterministic across runs and thread counts.
const LP_WORK_CAP: usize = 4_000_000;

/// `rows² × cols`, saturating: the structural simplex-work estimate gated by
/// [`LP_WORK_CAP`].
fn lp_work(rows: usize, cols: usize) -> usize {
    rows.saturating_mul(rows).saturating_mul(cols)
}

/// Control states reachable from `init` when counters are ignored (every
/// action is enabled). The cheapest refutation filter — and the restriction
/// applied before every LP below, so unreachable components never inflate
/// the programs.
pub fn control_reachable(vass: &Vass, init: usize) -> Vec<bool> {
    let mut seen = vec![false; vass.states];
    if init >= vass.states {
        return seen;
    }
    let adjacency = vass.action_csr();
    let mut stack = vec![init];
    seen[init] = true;
    while let Some(q) = stack.pop() {
        for &a in adjacency.actions_from(q) {
            let to = vass.actions[a as usize].to;
            if !seen[to] {
                seen[to] = true;
                stack.push(to);
            }
        }
    }
    seen
}

/// Builds the shared flow program over the control-reachable actions:
/// returns the builder plus, per registered edge, its action index.
fn reachable_flow(vass: &Vass, reachable: &[bool], extra_nodes: usize) -> (FlowLp, Vec<usize>) {
    let mut flow = FlowLp::new(vass.states + extra_nodes, vass.dim);
    let mut action_of_edge = Vec::new();
    // Parallel actions with the same endpoints and delta are *identical LP
    // columns*: multiplicity cannot change feasibility, and the generated
    // workloads produce thousands of such duplicates. Deduplicate so the
    // simplex cost scales with the distinct-effect edges only.
    let mut seen = std::collections::HashSet::new();
    for (i, a) in vass.actions.iter().enumerate() {
        if reachable[a.from] && seen.insert((a.from, a.to, &a.delta)) {
            flow.add_edge(a.from, a.to, &a.delta);
            action_of_edge.push(i);
        }
    }
    (flow, action_of_edge)
}

/// Adds `Σ xₑ·δₑ[d] ≥ 0` for every dimension (the total counter effect of
/// the run must leave every counter non-negative from the all-zero start).
fn add_effect_rows(lp: &mut LpProblem, flow: &FlowLp, dim: usize) {
    for d in 0..dim {
        let row = flow.effect_row(d);
        if !row.is_empty() {
            lp.add_constraint(&row, LpCmp::Ge, Rational::ZERO);
        }
    }
}

/// The state-equation Z-relaxation of "is some control state in `targets`
/// coverable from `(init, 0̄)`?". Returns `false` only when the relaxation
/// is infeasible — a sound refutation; `true` says nothing.
///
/// `reachable` must be [`control_reachable`]`(vass, init)` (callers compute
/// it once and share it across filters). The target set is drained through a
/// super-sink node so one LP covers the whole set.
pub fn z_cover_feasible(vass: &Vass, init: usize, targets: &[bool], reachable: &[bool]) -> bool {
    let live: Vec<usize> = (0..vass.states)
        .filter(|&q| targets[q] && reachable[q])
        .collect();
    if live.is_empty() {
        return false;
    }
    let sink = vass.states;
    let (mut flow, _) = reachable_flow(vass, reachable, 1);
    let zero = vec![0i64; vass.dim];
    for &t in &live {
        flow.add_edge(t, sink, &zero);
    }
    if lp_work(vass.states + 1 + vass.dim, flow.num_edges()) > LP_WORK_CAP {
        return true;
    }
    let mut lp = flow.path_problem(init, sink);
    add_effect_rows(&mut lp, &flow, vass.dim);
    lp.is_feasible()
}

/// The circulation Z-relaxation of "is there a lasso through a control state
/// in `accepting`?" — a cycle with componentwise non-negative summed effect
/// through an accepting state (Lemma 21's repeated-reachability condition).
///
/// Any pump cycle of the coverability graph projects to a closed control
/// walk through an accepting control state with the same summed action
/// effect, so the question relaxes to exactly the non-negative-cycle
/// decision [`crate::cycle`] already solves — per-SCC circulation
/// feasibility with support refinement, run here on the *control skeleton*
/// (one node per control state) instead of a built graph. Returns `false`
/// only on a sound refutation: no such control cycle exists, hence no lasso.
pub fn z_lasso_feasible(vass: &Vass, accepting: &[bool], reachable: &[bool]) -> bool {
    // Duplicate (from, to, delta) actions contribute nothing to the cycle
    // decision; dedup as in `reachable_flow`.
    let mut seen = std::collections::HashSet::new();
    let edges: Vec<crate::cycle::DeltaEdge<'_>> = vass
        .actions
        .iter()
        .filter(|a| reachable[a.from] && seen.insert((a.from, a.to, &a.delta)))
        .map(|a| crate::cycle::DeltaEdge {
            from: a.from,
            to: a.to,
            delta: &a.delta,
        })
        .collect();
    if lp_work(vass.states + vass.dim, edges.len()) > LP_WORK_CAP {
        return true;
    }
    crate::cycle::nonneg_cycle_exists(vass.states, vass.dim, &edges, &|q| {
        accepting[q] && reachable[q]
    })
}

/// Per-dimension boundedness certificates: `bounded[d]` is `true` when no
/// circulation over control-reachable actions has componentwise non-negative
/// total effect and strictly positive effect on `d`.
///
/// A dimension that is unbounded from `(init, 0̄)` admits a self-covering run
/// segment (same control state, componentwise no-smaller counters, strictly
/// larger on `d` — Dickson's lemma along an unbounded run), whose action
/// multiplicities are a feasible point of exactly this program. So an
/// infeasible program certifies `d` bounded — and since the Karp–Miller
/// construction ω-accelerates a dimension only if it is genuinely unbounded,
/// a certified dimension is never accelerated
/// ([`CoverabilityGraph::build_capped_with_bounds`](crate::CoverabilityGraph::build_capped_with_bounds)).
pub fn certified_bounded_dims(vass: &Vass, reachable: &[bool]) -> Vec<bool> {
    let (flow, action_of_edge) = reachable_flow(vass, reachable, 0);
    let mut bounded = vec![false; vass.dim];
    if vass.dim == 0 {
        return bounded;
    }
    // One solve per can-grow dimension, so the whole pass is gated at
    // `dim × rows² × cols` — the trivial no-increasing-action certificates
    // below stay free either way.
    let lp_ok = vass
        .dim
        .saturating_mul(lp_work(vass.states + vass.dim, flow.num_edges()))
        <= LP_WORK_CAP;
    let base = if lp_ok {
        let mut base = flow.circulation_problem();
        add_effect_rows(&mut base, &flow, vass.dim);
        Some(base)
    } else {
        None
    };
    for (d, b) in bounded.iter_mut().enumerate() {
        let can_grow = action_of_edge
            .iter()
            .any(|&i| vass.actions[i].delta[d] > 0);
        if !can_grow {
            // No control-reachable action ever increases d: trivially bounded.
            *b = true;
            continue;
        }
        let Some(base) = base.as_ref() else { continue };
        let mut lp = base.clone();
        lp.add_constraint(&flow.effect_row(d), LpCmp::Ge, Rational::ONE);
        *b = !lp.is_feasible();
    }
    bounded
}

/// The gcd-normalized truncation abstraction of one counter dimension: a
/// DFA over the values `{0·g, 1·g, …, (k−1)·g, ≥k·g}` (where `g` is the gcd
/// of the dimension's deltas) in product with the control skeleton. Returns
/// `true` when *no* target control state is reachable in any product — a
/// sound refutation of coverability, since the abstraction over-approximates
/// every real run (the saturating top level absorbs all values `≥ k·g`, and
/// decrements out of it re-enter the tracked range nondeterministically).
///
/// This is the filter that catches *ordering* facts the state equation
/// relaxes away: a run that must spend a counter before any action can
/// replenish it has a non-negative total effect (LP-feasible) yet dies in
/// the abstraction, which forbids going negative at every step.
pub fn counter_dfa_refutes(vass: &Vass, init: usize, targets: &[bool], reachable: &[bool]) -> bool {
    if !(0..vass.states).any(|q| targets[q] && reachable[q]) {
        return true;
    }
    if targets[init] {
        return false;
    }
    let adjacency = vass.action_csr();
    for d in 0..vass.dim {
        let mut g: u64 = 0;
        let mut any_negative = false;
        for a in &vass.actions {
            if !reachable[a.from] || a.delta[d] == 0 {
                continue;
            }
            g = gcd(g, a.delta[d].unsigned_abs());
            any_negative |= a.delta[d] < 0;
        }
        if g == 0 || !any_negative {
            // The dimension never moves, or never decreases: the abstraction
            // never blocks anything the control skeleton allows.
            continue;
        }
        let max_step = vass
            .actions
            .iter()
            .filter(|a| reachable[a.from])
            .map(|a| (a.delta[d].unsigned_abs() / g) as usize)
            .max()
            .unwrap_or(1);
        // Track values exactly up to k units of g; level k is the saturating
        // "≥ k" top. k is a handful of steps deep — enough to catch
        // spend-before-earn orderings — and clamped so the product stays
        // small.
        let k = (max_step * 4).clamp(4, 64);
        if vass.states.saturating_mul(k + 1) > DFA_PRODUCT_CAP || k < max_step {
            continue;
        }
        if dfa_refutes_dim(vass, &adjacency, init, targets, d, g, k) {
            return true;
        }
    }
    false
}

/// Product BFS of the control skeleton with one dimension's truncation DFA.
/// Returns `true` when no `(target, level)` product state is reachable.
fn dfa_refutes_dim(
    vass: &Vass,
    adjacency: &crate::vass::ActionCsr,
    init: usize,
    targets: &[bool],
    d: usize,
    g: u64,
    k: usize,
) -> bool {
    let levels = k + 1; // 0..k exact (in units of g), k = top ("≥ k")
    let mut seen = vec![false; vass.states * levels];
    let mut stack = vec![(init, 0usize)];
    seen[init * levels] = true;
    while let Some((q, lvl)) = stack.pop() {
        for &ai in adjacency.actions_from(q) {
            let action = &vass.actions[ai as usize];
            let u = action.delta[d] / g as i64;
            let mut push = |lvl2: usize, stack: &mut Vec<(usize, usize)>| {
                let slot = action.to * levels + lvl2;
                if !seen[slot] {
                    seen[slot] = true;
                    if targets[action.to] {
                        return true;
                    }
                    stack.push((action.to, lvl2));
                }
                false
            };
            if lvl < k {
                let v = lvl as i64 + u;
                if v < 0 {
                    continue; // the counter would go negative: blocked
                }
                if push(v.min(k as i64) as usize, &mut stack) {
                    return false;
                }
            } else {
                // Top = all values ≥ k: after the step, values ≥ k + u. For
                // u < 0 some of them drop back into the tracked range.
                if push(k, &mut stack) {
                    return false;
                }
                if u < 0 {
                    for lvl2 in (k as i64 + u).max(0)..k as i64 {
                        if push(lvl2 as usize, &mut stack) {
                            return false;
                        }
                    }
                }
            }
        }
    }
    true
}

fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverability::CoverabilityGraph;
    use proptest::prelude::*;

    fn target_set(states: usize, target: usize) -> Vec<bool> {
        let mut t = vec![false; states];
        t[target] = true;
        t
    }

    /// Reaching state 1 requires paying a token that is never produced: the
    /// state equation refutes it (total effect on the counter would be −1).
    #[test]
    fn state_equation_refutes_unpayable_target() {
        let mut v = Vass::new(2, 1);
        v.add_action(0, vec![-1], 1);
        let reachable = control_reachable(&v, 0);
        assert!(reachable[1], "control skeleton alone cannot refute");
        assert!(!z_cover_feasible(&v, 0, &target_set(2, 1), &reachable));
    }

    /// Produce then consume is LP-feasible and genuinely reachable.
    #[test]
    fn state_equation_admits_real_runs() {
        let mut v = Vass::new(3, 1);
        v.add_action(0, vec![1], 1);
        v.add_action(1, vec![-1], 2);
        let reachable = control_reachable(&v, 0);
        assert!(z_cover_feasible(&v, 0, &target_set(3, 2), &reachable));
    }

    /// Spend-before-earn: the total effect balances (LP-feasible) but the
    /// counter must go negative first — only the truncation DFA catches it.
    #[test]
    fn dfa_refutes_spend_before_earn() {
        let mut v = Vass::new(3, 1);
        v.add_action(0, vec![-1], 1); // spend a token we never had
        v.add_action(1, vec![1], 2); // earn it back too late
        let reachable = control_reachable(&v, 0);
        assert!(z_cover_feasible(&v, 0, &target_set(3, 2), &reachable));
        assert!(counter_dfa_refutes(&v, 0, &target_set(3, 2), &reachable));
        // The exact search agrees, of course.
        assert!(!v.state_reachable(0, 2));
    }

    #[test]
    fn dfa_admits_the_producer_consumer() {
        let mut v = Vass::new(3, 1);
        v.add_action(0, vec![1], 0);
        v.add_action(0, vec![0], 1);
        v.add_action(1, vec![-1], 2);
        let reachable = control_reachable(&v, 0);
        assert!(!counter_dfa_refutes(&v, 0, &target_set(3, 2), &reachable));
    }

    /// Only a draining loop exists: no non-negative circulation through the
    /// accepting state, so the lasso relaxation refutes.
    #[test]
    fn circulation_refutes_draining_lasso() {
        let mut v = Vass::new(2, 1);
        v.add_action(0, vec![1], 0);
        v.add_action(0, vec![0], 1);
        v.add_action(1, vec![-1], 1);
        let reachable = control_reachable(&v, 0);
        assert!(z_lasso_feasible(&v, &target_set(2, 0), &reachable));
        assert!(!z_lasso_feasible(&v, &target_set(2, 1), &reachable));
    }

    #[test]
    fn bounded_dims_are_certified() {
        // dim 0 pumps freely; dim 1 only ever drains.
        let mut v = Vass::new(1, 2);
        v.add_action(0, vec![1, 0], 0);
        v.add_action(0, vec![0, -1], 0);
        let reachable = control_reachable(&v, 0);
        assert_eq!(certified_bounded_dims(&v, &reachable), vec![false, true]);
    }

    #[test]
    fn balanced_transfer_cycle_is_certified_bounded() {
        // +1 then −1 on the same dimension: the circulation with positive
        // effect does not exist, so the dimension is certified bounded even
        // though it moves.
        let mut v = Vass::new(2, 1);
        v.add_action(0, vec![1], 1);
        v.add_action(1, vec![-1], 0);
        let reachable = control_reachable(&v, 0);
        assert_eq!(certified_bounded_dims(&v, &reachable), vec![true]);
        // Adding a strictly pumping loop flips the certificate.
        v.add_action(0, vec![1], 0);
        assert_eq!(certified_bounded_dims(&v, &reachable), vec![false]);
    }

    /// A small random VASS for the refutation-soundness property tests.
    fn arb_vass() -> impl Strategy<Value = Vass> {
        (2usize..=5, 1usize..=2).prop_flat_map(|(states, dim)| {
            prop::collection::vec(
                (
                    0..states,
                    prop::collection::vec(-2i64..=2, dim),
                    0..states,
                ),
                1..=8,
            )
            .prop_map(move |actions| {
                let mut v = Vass::new(states, dim);
                for (from, delta, to) in actions {
                    v.add_action(from, delta, to);
                }
                v
            })
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The pre-solver refutations are sound against the exact capped
        /// search: LP- or DFA-refuted ⇒ the Karp–Miller graph contains no
        /// target node, and circulation-refuted ⇒ no non-negative cycle.
        #[test]
        fn refutations_are_sound_against_exact_search(v in arb_vass(), target_seed in 0usize..64) {
            let target = target_seed % v.states;
            let reachable = control_reachable(&v, 0);
            let targets = target_set(v.states, target);
            let graph = CoverabilityGraph::build_capped(&v, 0, 2_000);
            let covered = graph.nodes().any(|n| n.state == target);
            if !z_cover_feasible(&v, 0, &targets, &reachable) {
                prop_assert!(!covered, "state equation refuted a coverable state");
            }
            if counter_dfa_refutes(&v, 0, &targets, &reachable) {
                prop_assert!(!covered, "counter DFA refuted a coverable state");
            }
            if !z_lasso_feasible(&v, &targets, &reachable) {
                prop_assert!(
                    !graph.nonneg_cycle_through(&v, target),
                    "circulation refuted an existing lasso"
                );
            }
        }

        /// Certified-bounded dimensions are never ω-accelerated, and the
        /// bounds-aware builder is byte-identical to the plain one.
        #[test]
        fn certified_bounds_match_the_graph(v in arb_vass()) {
            let reachable = control_reachable(&v, 0);
            let bounded = certified_bounded_dims(&v, &reachable);
            let plain = CoverabilityGraph::build_capped(&v, 0, 2_000);
            for (d, &b) in bounded.iter().enumerate() {
                if b {
                    prop_assert!(
                        plain.nodes().all(|n| n.marking[d] != crate::coverability::OMEGA),
                        "certified-bounded dimension {d} was accelerated"
                    );
                }
            }
            let with_bounds =
                CoverabilityGraph::build_capped_with_bounds(&v, 0, 2_000, &bounded);
            prop_assert_eq!(plain.node_count(), with_bounds.node_count());
            prop_assert_eq!(plain.edge_count(), with_bounds.edge_count());
            for (a, b) in plain.nodes().zip(with_bounds.nodes()) {
                prop_assert_eq!(a.state, b.state);
                prop_assert_eq!(a.marking, b.marking);
            }
        }
    }
}
