//! Shared, incremental Karp–Miller coverability with monotonicity-based
//! subsumption pruning (DESIGN.md §5.12).
//!
//! Every `(T, β, τ_in)` Lemma 21 sub-query runs a coverability search over
//! the *same* per-`(T, β)` VASS — the queries differ only in the initial
//! control state. [`SharedCoverability`] is the arena all those queries
//! extend instead of rebuilding: dense-interned `(state, marking)` nodes
//! (the PR 6 substrate) tagged with the query generation that created them,
//! with each node's *complete* successor list stored once so later queries
//! replay it instead of recomputing deltas and ω-accelerations.
//!
//! On top of the arena, each query maintains a per-control-state
//! **antichain** of its visited markings (componentwise `≤` with
//! [`OMEGA`] as ⊤): a successor covered by an already-visited marking is
//! not traversed (*arrival pruning*), and when a strictly larger marking
//! lands, dominated antichain members are *retro-pruned* — dropped from the
//! antichain and, if not yet expanded, skipped at pop. Both prunings record
//! **jump edges** to the dominating node, so the traversal stays *saturated*:
//! every visited node has, per firable action, an edge (real or jump) to a
//! visited node whose marking dominates the computed successor. Saturation
//! is what keeps the pruned search exact — see the soundness/completeness
//! split on the cycle helpers below and DESIGN.md §5.12.
//!
//! Reuse is sound across start configurations by monotonicity: an
//! ω-acceleration stored in the arena is justified by a pumping sequence
//! from a dominated ancestor, and that sequence is firable from *any*
//! occurrence of the covering marking, regardless of which query's initial
//! state discovered it. A replayed successor may carry *fewer* ω's than a
//! fresh expansion under the current query's ancestor chain would produce —
//! that is an under-approximation of acceleration, which is always sound;
//! completeness is unaffected because stored territory is finite and fresh
//! frontier nodes accelerate against the full overlay ancestor chain.

use crate::coverability::{add_into, hash_key, NONE, OMEGA};
use crate::cycle::{self, CycleSearch, DeltaEdge};
use crate::vass::Vass;
use std::collections::VecDeque;

/// `a` componentwise dominates `b` (`≥` with [`OMEGA`] as ⊤, which plain
/// `u64` comparison already gives since `OMEGA == u64::MAX`).
fn dominates(a: &[u64], b: &[u64]) -> bool {
    a.iter().zip(b).all(|(x, y)| x >= y)
}

/// The marking row of arena node `id` inside a flat row-major arena.
fn row_of(rows: &[u64], dim: usize, id: u32) -> &[u64] {
    &rows[id as usize * dim..][..dim]
}

/// A shared, incremental coverability arena for one VASS: all queries
/// passed through [`SharedCoverability::query`] must target the *same*
/// VASS (same dimension, same action list), differing only in the initial
/// control state. Arena nodes, their interner, and their stored successor
/// lists persist across queries; traversal state is per-query, stamped by
/// a monotone generation counter so no clearing pass is ever needed.
#[derive(Clone, Debug)]
pub struct SharedCoverability {
    dim: usize,
    /// Control state per arena node.
    states: Vec<u32>,
    /// Flat row-major marking arena (see [`crate::CoverabilityGraph`]).
    rows: Vec<u64>,
    /// Cached interner hash per node.
    hashes: Vec<u64>,
    /// The query generation that created each node (`1`-based).
    gen_of: Vec<u32>,
    /// Open-addressing interner over `(state, marking)`: `node id + 1`,
    /// `0` = empty; length is a power of two.
    table: Vec<u32>,
    mask: usize,
    /// Per node: index into `spans` of its stored successor list, or
    /// [`NONE`] when the node has never been *completely* expanded (a
    /// successor dropped at the per-query node cap leaves no span, so a
    /// later, less-capped query recomputes instead of trusting a hole).
    span_of: Vec<u32>,
    /// Stored spans `(start, len)` into `succs`.
    spans: Vec<(u32, u32)>,
    /// Flattened stored successors `(action index, arena node)`.
    succs: Vec<(u32, u32)>,
    /// Current query generation (incremented by every [`Self::query`]).
    generation: u32,
    // ---- per-query traversal scratch, stamped by `generation` ----
    /// Generation that last visited the node.
    visit_gen: Vec<u32>,
    /// Visit index within that generation's [`SharedRun`].
    visit_idx: Vec<u32>,
    /// Overlay parent (arena id) within that generation's traversal.
    ovl_parent: Vec<u32>,
    /// Generation that retro-pruned the node (dominated after visiting).
    pruned_gen: Vec<u32>,
    // ---- per-control-state antichain buckets, stamped ----
    bucket_gen: Vec<u32>,
    buckets: Vec<Vec<u32>>,
    // ---- overlay ancestor index scratch (see coverability.rs) ----
    anc_head: Vec<u32>,
    anc_tail: Vec<u32>,
    anc_stamp: Vec<u64>,
    anc_current: u64,
    anc_entries: Vec<(u32, u32)>,
}

/// One query's traversal over a [`SharedCoverability`] arena: the visited
/// nodes in deterministic BFS-discovery order (the *visit order* — the
/// shared analogue of [`crate::CoverabilityGraph`]'s node order), the
/// overlay spanning tree for witness-path extraction, and the real/jump
/// edge lists the lasso decision tiers consume. Self-contained: it borrows
/// nothing from the arena, so the arena can serve the next query while a
/// caller still scans this run.
#[derive(Clone, Debug)]
pub struct SharedRun {
    /// Arena node id per visit index.
    visited: Vec<u32>,
    /// Control state per visit index.
    states: Vec<u32>,
    /// Overlay parent per visit index ([`NONE`] for the root).
    parent: Vec<u32>,
    /// Incoming action per visit index ([`NONE`] for the root).
    via: Vec<u32>,
    /// Real edges `(from, action, to)` over visit indices: the target's
    /// marking is exactly the (stored or freshly accelerated) successor
    /// marking. Sound evidence for lassos.
    edges: Vec<(u32, u32, u32)>,
    /// Arrival-pruning jump edges `(from, action, to)`: the target
    /// *strictly dominates* the computed successor. Complete-only evidence.
    jumps: Vec<(u32, u32, u32)>,
    /// Retro-pruning ε-jumps `(pruned, dominator)` with zero effect.
    eps_jumps: Vec<(u32, u32)>,
    /// Visited nodes that already existed in the arena (cross-query reuse).
    pub reused: usize,
    /// Successors not traversed because a visited marking covered them,
    /// plus visited nodes retro-pruned by a later, larger marking.
    pub subsumed: usize,
    /// Whether the per-query node cap dropped any successor: the run
    /// under-approximates coverability, exactly like a capped
    /// [`crate::CoverabilityGraph`].
    pub capped: bool,
}

impl SharedCoverability {
    /// An empty arena for coverability queries over `vass`.
    pub fn new(vass: &Vass) -> Self {
        SharedCoverability {
            dim: vass.dim,
            states: Vec::new(),
            rows: Vec::new(),
            hashes: Vec::new(),
            gen_of: Vec::new(),
            table: vec![0; 64],
            mask: 63,
            span_of: Vec::new(),
            spans: Vec::new(),
            succs: Vec::new(),
            generation: 0,
            visit_gen: Vec::new(),
            visit_idx: Vec::new(),
            ovl_parent: Vec::new(),
            pruned_gen: Vec::new(),
            bucket_gen: vec![0; vass.states],
            buckets: vec![Vec::new(); vass.states],
            anc_head: vec![0; vass.states],
            anc_tail: vec![0; vass.states],
            anc_stamp: vec![0; vass.states],
            anc_current: 0,
            anc_entries: Vec::new(),
        }
    }

    /// Total arena nodes interned so far (across all queries).
    pub fn arena_nodes(&self) -> usize {
        self.states.len()
    }

    /// Runs one coverability query from `init` (all counters zero),
    /// visiting at most `max_nodes` nodes. `bounded` carries the
    /// pre-solver's per-dimension boundedness certificates (empty = none):
    /// certified dimensions are excluded from ω-acceleration *for fresh
    /// expansions of this and every later query* — the standing pruning
    /// constraint of DESIGN.md §5.12. Callers must pass certificates
    /// derived from the same VASS for every query of one arena.
    pub fn query(
        &mut self,
        vass: &Vass,
        init: usize,
        max_nodes: usize,
        bounded: &[bool],
    ) -> SharedRun {
        debug_assert_eq!(vass.dim, self.dim, "arena reused across VASS dimensions");
        self.generation = self
            .generation
            .checked_add(1)
            .expect("shared coverability arena: more than u32::MAX queries");
        let gen = self.generation;
        let mut run = SharedRun {
            visited: Vec::new(),
            states: Vec::new(),
            parent: Vec::new(),
            via: Vec::new(),
            edges: Vec::new(),
            jumps: Vec::new(),
            eps_jumps: Vec::new(),
            reused: 0,
            subsumed: 0,
            capped: false,
        };
        if max_nodes == 0 {
            return run;
        }
        let adjacency = vass.action_csr();
        let root_row = vec![0u64; self.dim];
        let (root, _) = self.intern(init as u32, &root_row);
        // Visit the root directly (its antichain bucket is necessarily
        // empty after the lazy clear, so no subsumption check applies).
        self.visit_gen[root as usize] = gen;
        self.visit_idx[root as usize] = 0;
        self.ovl_parent[root as usize] = NONE;
        if self.gen_of[root as usize] != gen {
            run.reused += 1;
        }
        run.visited.push(root);
        run.states.push(init as u32);
        run.parent.push(NONE);
        run.via.push(NONE);
        let s = init;
        self.bucket_gen[s] = gen;
        self.buckets[s].clear();
        self.buckets[s].push(root);

        let mut worklist = VecDeque::from([root]);
        let mut current = vec![0u64; self.dim];
        let mut next = vec![0u64; self.dim];
        let accelerable =
            (0..self.dim).any(|d| !bounded.get(d).copied().unwrap_or(false));

        while let Some(id) = worklist.pop_front() {
            let node = id as usize;
            // Retro-pruned before expansion: its ε-jump to the dominator
            // stands in for the whole subtree (the dominator's markings
            // cover everything this node could reach — monotonicity).
            if self.pruned_gen[node] == gen {
                continue;
            }
            let from_vidx = self.visit_idx[node];
            let span = self.span_of[node];
            if span != NONE {
                // Replay the stored complete successor list: no delta
                // arithmetic, no acceleration, no interning.
                let (start, len) = self.spans[span as usize];
                for k in 0..len {
                    let (action, to) = self.succs[(start + k) as usize];
                    self.visit_or_link(&mut run, from_vidx, id, action, to, max_nodes, &mut worklist);
                }
                continue;
            }
            // Fresh expansion: compute, accelerate against the overlay
            // ancestor chain, intern into the arena — and remember the
            // successor list for every later query if nothing was dropped.
            let state = self.states[node] as usize;
            current.copy_from_slice(row_of(&self.rows, self.dim, id));
            if accelerable {
                self.anc_build(id);
            }
            let mut complete = true;
            let start = self.succs.len();
            for &action_idx in adjacency.actions_from(state) {
                let action = &vass.actions[action_idx as usize];
                if !add_into(&current, &action.delta, &mut next) {
                    continue;
                }
                if accelerable {
                    self.anc_accelerate(action.to as u32, &mut next, bounded);
                }
                // Always interned — even when traversal prunes it below —
                // so the stored span records the node's true successors.
                let (to, _) = self.intern(action.to as u32, &next);
                self.succs.push((action_idx, to));
                if !self.visit_or_link(&mut run, from_vidx, id, action_idx, to, max_nodes, &mut worklist)
                {
                    complete = false;
                }
            }
            if complete {
                let len = (self.succs.len() - start) as u32;
                self.span_of[node] = self.spans.len() as u32;
                self.spans.push((start as u32, len));
            } else {
                self.succs.truncate(start);
            }
        }
        run
    }

    /// Routes one successor `(action, to)` of the node at `from_vidx`:
    /// a real edge when `to` is already visited this query, a jump edge
    /// when an antichain member covers it (arrival pruning), a drop at the
    /// node cap (returns `false`: the expansion is incomplete), or a fresh
    /// visit — which also retro-prunes any antichain members the new
    /// marking strictly dominates.
    #[allow(clippy::too_many_arguments)]
    fn visit_or_link(
        &mut self,
        run: &mut SharedRun,
        from_vidx: u32,
        from_id: u32,
        action: u32,
        to: u32,
        max_nodes: usize,
        worklist: &mut VecDeque<u32>,
    ) -> bool {
        let gen = self.generation;
        let node = to as usize;
        if self.visit_gen[node] == gen {
            // Equal markings intern to the same arena node, so a visited
            // hit is an exact successor: a real edge (even when the target
            // was later retro-pruned — its marking is still exact).
            run.edges.push((from_vidx, action, self.visit_idx[node]));
            return true;
        }
        let s = self.states[node] as usize;
        if self.bucket_gen[s] != gen {
            self.bucket_gen[s] = gen;
            self.buckets[s].clear();
        }
        // Arrival pruning: covered by an antichain member? (Strict
        // domination is implied — an equal marking would be the same
        // arena node, caught by the visited check above.)
        let dim = self.dim;
        let row = &self.rows;
        if let Some(&dom) = self.buckets[s]
            .iter()
            .find(|&&u| dominates(row_of(row, dim, u), row_of(row, dim, to)))
        {
            run.subsumed += 1;
            run.jumps.push((from_vidx, action, self.visit_idx[dom as usize]));
            return true;
        }
        if run.visited.len() >= max_nodes {
            run.capped = true;
            return false;
        }
        // Visit.
        let vidx = run.visited.len() as u32;
        self.visit_gen[node] = gen;
        self.visit_idx[node] = vidx;
        self.ovl_parent[node] = from_id;
        if self.gen_of[node] != gen {
            run.reused += 1;
        }
        run.visited.push(to);
        run.states.push(self.states[node]);
        run.parent.push(from_vidx);
        run.via.push(action);
        run.edges.push((from_vidx, action, vidx));
        // Retro-pruning: antichain members strictly dominated by the
        // newcomer yield to it. Each pruned node gets a zero-effect ε-jump
        // to the dominator (saturation for the completeness tier) and is
        // skipped at pop if not yet expanded.
        let (rows, buckets, pruned_gen, visit_idx) = (
            &self.rows,
            &mut self.buckets[s],
            &mut self.pruned_gen,
            &self.visit_idx,
        );
        buckets.retain(|&u| {
            if dominates(row_of(rows, dim, to), row_of(rows, dim, u)) {
                pruned_gen[u as usize] = gen;
                run.eps_jumps.push((visit_idx[u as usize], vidx));
                run.subsumed += 1;
                false
            } else {
                true
            }
        });
        self.buckets[s].push(to);
        worklist.push_back(to);
        true
    }

    /// Returns the canonical arena node for `(state, row)` and whether it
    /// was newly created. Unlike the from-scratch builder's interner this
    /// one is uncapped — the per-query budget caps *visits*, while arena
    /// nodes persist precisely so later queries can reuse them.
    fn intern(&mut self, state: u32, row: &[u64]) -> (u32, bool) {
        let hash = hash_key(state, row);
        let mut slot = (hash as usize) & self.mask;
        loop {
            let entry = self.table[slot];
            if entry == 0 {
                break;
            }
            let id = (entry - 1) as usize;
            if self.hashes[id] == hash
                && self.states[id] == state
                && row_of(&self.rows, self.dim, entry - 1) == row
            {
                return (entry - 1, false);
            }
            slot = (slot + 1) & self.mask;
        }
        let id = u32::try_from(self.states.len())
            .expect("shared coverability arena overflow: more than u32::MAX nodes");
        self.states.push(state);
        self.rows.extend_from_slice(row);
        self.hashes.push(hash);
        self.gen_of.push(self.generation);
        self.span_of.push(NONE);
        self.visit_gen.push(0);
        self.visit_idx.push(0);
        self.ovl_parent.push(NONE);
        self.pruned_gen.push(0);
        self.table[slot] = id + 1;
        if (self.states.len() + 1) * 8 > self.table.len() * 7 {
            self.grow_table();
        }
        (id, true)
    }

    fn grow_table(&mut self) {
        let new_len = self.table.len() * 2;
        self.mask = new_len - 1;
        self.table.clear();
        self.table.resize(new_len, 0);
        for (id, &hash) in self.hashes.iter().enumerate() {
            let mut slot = (hash as usize) & self.mask;
            while self.table[slot] != 0 {
                slot = (slot + 1) & self.mask;
            }
            self.table[slot] = id as u32 + 1;
        }
    }

    /// Rebuilds the overlay ancestor index for `node` (inclusive): the same
    /// stamped per-control-state chain as the from-scratch builder's
    /// `AncestorIndex`, but walking this query's overlay parents, so the
    /// chain crosses reused arena territory transparently.
    fn anc_build(&mut self, node: u32) {
        self.anc_current += 1;
        self.anc_entries.clear();
        let mut a = node;
        while a != NONE {
            let s = self.states[a as usize] as usize;
            if self.anc_stamp[s] != self.anc_current {
                self.anc_stamp[s] = self.anc_current;
                self.anc_head[s] = 0;
                self.anc_tail[s] = 0;
            }
            let idx = self.anc_entries.len() as u32 + 1;
            self.anc_entries.push((a, 0));
            if self.anc_tail[s] == 0 {
                self.anc_head[s] = idx;
            } else {
                self.anc_entries[(self.anc_tail[s] - 1) as usize].1 = idx;
            }
            self.anc_tail[s] = idx;
            a = self.ovl_parent[a as usize];
        }
    }

    /// ω-accelerates `next` against the indexed overlay ancestors with
    /// control state `state` — semantics identical to the from-scratch
    /// builder's `AncestorIndex::accelerate`, including the
    /// certified-bounded dimension exclusion.
    fn anc_accelerate(&self, state: u32, next: &mut [u64], bounded: &[bool]) {
        let s = state as usize;
        if self.anc_stamp[s] != self.anc_current {
            return;
        }
        let mut e = self.anc_head[s];
        while e != 0 {
            let (node, next_entry) = self.anc_entries[(e - 1) as usize];
            let row = row_of(&self.rows, self.dim, node);
            let mut dominated = true;
            let mut strictly = false;
            for (d, (a, n)) in row.iter().zip(next.iter()).enumerate() {
                if *a > *n {
                    dominated = false;
                    break;
                }
                if *a < *n && !bounded.get(d).copied().unwrap_or(false) {
                    strictly = true;
                }
            }
            if dominated && strictly {
                for (a, n) in row.iter().zip(next.iter_mut()) {
                    if *a < *n {
                        *n = OMEGA;
                    }
                }
            }
            e = next_entry;
        }
    }
}

impl SharedRun {
    /// Nodes visited by this query, in visit order.
    pub fn node_count(&self) -> usize {
        self.visited.len()
    }

    /// Control state of the node at `vidx` (visit order).
    pub fn state(&self, vidx: usize) -> usize {
        self.states[vidx] as usize
    }

    /// Control states in visit order — the shared analogue of iterating a
    /// from-scratch graph's nodes. Every yielded state is genuinely
    /// coverable from this query's initial configuration (pruned nodes were
    /// visited before pruning, and their markings are exact).
    pub fn states(&self) -> impl Iterator<Item = usize> + '_ {
        self.states.iter().map(|&s| s as usize)
    }

    /// The action sequence labelling the overlay tree path from the root to
    /// the node at `vidx`.
    pub fn path_to_node(&self, vidx: usize) -> Vec<usize> {
        let mut actions = Vec::new();
        let mut n = vidx as u32;
        while self.parent[n as usize] != NONE {
            actions.push(self.via[n as usize] as usize);
            n = self.parent[n as usize];
        }
        actions.reverse();
        actions
    }

    /// The real edges as [`DeltaEdge`]s over visit indices.
    fn real_delta_edges<'a>(&self, vass: &'a Vass) -> Vec<DeltaEdge<'a>> {
        self.edges
            .iter()
            .map(|&(from, action, to)| DeltaEdge {
                from: from as usize,
                to: to as usize,
                delta: &vass.actions[action as usize].delta,
            })
            .collect()
    }

    /// **Sound** lasso evidence: does a closed walk with componentwise
    /// non-negative summed effect pass through a predicate state using
    /// *real* edges only? Real edges carry exact successor markings, so a
    /// witness here pumps into an actual infinite run (the classic
    /// Karp–Miller argument); jump edges are excluded because their
    /// targets over-approximate the successor.
    pub fn nonneg_cycle_through_pred(&self, vass: &Vass, target: &dyn Fn(usize) -> bool) -> bool {
        cycle::nonneg_cycle_exists(
            self.node_count(),
            vass.dim,
            &self.real_delta_edges(vass),
            &|node| target(self.states[node] as usize),
        )
    }

    /// [`Self::nonneg_cycle_through_pred`] with the walk materialized as
    /// `(from, action, to)` triples over visit indices (cap semantics as in
    /// [`crate::CoverabilityGraph::nonneg_cycle_search_through_pred`]).
    pub fn nonneg_cycle_search_through_pred(
        &self,
        vass: &Vass,
        target: &dyn Fn(usize) -> bool,
        max_len: usize,
    ) -> CycleSearch<(usize, usize, usize)> {
        cycle::nonneg_cycle_search(
            self.node_count(),
            vass.dim,
            &self.real_delta_edges(vass),
            &|node| target(self.states[node] as usize),
            max_len,
        )
        .map_edges(|i| {
            let (f, a, t) = self.edges[i];
            (f as usize, a as usize, t as usize)
        })
    }

    /// **Complete** lasso evidence: the same decision over real edges
    /// *plus* jump edges (at their action's effect) and retro-pruning
    /// ε-jumps (at zero effect). Any real lasso shadow-maps into this
    /// augmented graph — iterate the real pump cycle, follow the saturated
    /// edge relation, and pigeonhole on (node, cycle position): the
    /// resulting closed walk repeats the cycle's action multiset, whose
    /// summed effect is non-negative. So `false` here **refutes** the
    /// lasso outright; `true` alone proves nothing (a jump target may be
    /// unjustifiably large) — decide `true` via
    /// [`Self::nonneg_cycle_through_pred`] or a from-scratch build.
    pub fn augmented_nonneg_cycle_through_pred(
        &self,
        vass: &Vass,
        target: &dyn Fn(usize) -> bool,
    ) -> bool {
        let zero = vec![0i64; vass.dim];
        let mut edges = self.real_delta_edges(vass);
        edges.extend(self.jumps.iter().map(|&(from, action, to)| DeltaEdge {
            from: from as usize,
            to: to as usize,
            delta: &vass.actions[action as usize].delta,
        }));
        edges.extend(self.eps_jumps.iter().map(|&(from, to)| DeltaEdge {
            from: from as usize,
            to: to as usize,
            delta: &zero,
        }));
        cycle::nonneg_cycle_exists(self.node_count(), vass.dim, &edges, &|node| {
            target(self.states[node] as usize)
        })
    }

    /// The marking of the node at `vidx`, read back from the arena (for
    /// tests and diagnostics; the run itself stores no markings).
    pub fn marking<'a>(&self, arena: &'a SharedCoverability, vidx: usize) -> &'a [u64] {
        row_of(&arena.rows, arena.dim, self.visited[vidx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverability::CoverabilityGraph;
    use crate::vass::Vass;
    use std::collections::BTreeSet;

    fn pump_drain(d: usize) -> Vass {
        let mut v = Vass::new(2, d);
        for i in 0..d {
            let mut up = vec![0i64; d];
            up[i] = 1;
            v.add_action(0, up, 0);
            let mut down = vec![0i64; d];
            down[i] = -1;
            v.add_action(1, down, 1);
        }
        v.add_action(0, vec![0; d], 1);
        v
    }

    fn coverable_states(run: &SharedRun) -> BTreeSet<usize> {
        run.states().collect()
    }

    fn reference_states(vass: &Vass, init: usize) -> BTreeSet<usize> {
        CoverabilityGraph::build(vass, init)
            .nodes()
            .map(|n| n.state)
            .collect()
    }

    #[test]
    fn shared_matches_from_scratch_state_sets() {
        let v = pump_drain(3);
        let mut arena = SharedCoverability::new(&v);
        for init in [0usize, 1, 0, 1] {
            let run = arena.query(&v, init, usize::MAX, &[]);
            assert!(!run.capped);
            assert_eq!(coverable_states(&run), reference_states(&v, init));
        }
    }

    #[test]
    fn second_identical_query_reuses_the_arena() {
        let v = pump_drain(2);
        let mut arena = SharedCoverability::new(&v);
        let first = arena.query(&v, 0, usize::MAX, &[]);
        assert_eq!(first.reused, 0);
        let nodes = arena.arena_nodes();
        let second = arena.query(&v, 0, usize::MAX, &[]);
        assert_eq!(second.reused, second.node_count());
        assert_eq!(arena.arena_nodes(), nodes, "replay interns nothing new");
        assert_eq!(coverable_states(&first), coverable_states(&second));
    }

    #[test]
    fn subsumption_prunes_dominated_markings() {
        // One state pumping one counter: 0 -> 1 -> ω from-scratch; the
        // antichain additionally retro-prunes 0 and 1 once ω lands.
        let mut v = Vass::new(1, 1);
        v.add_action(0, vec![1], 0);
        let mut arena = SharedCoverability::new(&v);
        let run = arena.query(&v, 0, usize::MAX, &[]);
        assert!(run.subsumed > 0);
        assert_eq!(coverable_states(&run), reference_states(&v, 0));
    }

    #[test]
    fn repeat_queries_are_deterministic() {
        let v = pump_drain(3);
        let mut a = SharedCoverability::new(&v);
        let mut b = SharedCoverability::new(&v);
        for init in [0usize, 1, 0] {
            let ra = a.query(&v, init, usize::MAX, &[]);
            let rb = b.query(&v, init, usize::MAX, &[]);
            assert_eq!(format!("{ra:?}"), format!("{rb:?}"));
        }
    }

    #[test]
    fn cap_zero_yields_an_empty_run() {
        let v = pump_drain(1);
        let mut arena = SharedCoverability::new(&v);
        let run = arena.query(&v, 0, 0, &[]);
        assert_eq!(run.node_count(), 0);
        assert!(!run.capped);
    }

    #[test]
    fn capped_run_marks_truncation_and_stores_no_span() {
        let v = pump_drain(3);
        let mut arena = SharedCoverability::new(&v);
        let capped = arena.query(&v, 0, 2, &[]);
        assert!(capped.capped);
        assert!(capped.node_count() <= 2);
        // A later uncapped query must not trust holes left by the cap.
        let full = arena.query(&v, 0, usize::MAX, &[]);
        assert!(!full.capped);
        assert_eq!(coverable_states(&full), reference_states(&v, 0));
    }

    #[test]
    fn real_cycle_decision_matches_reference_on_pump_drain() {
        let v = pump_drain(2);
        let reference = CoverabilityGraph::build(&v, 0);
        let expect = reference.nonneg_cycle_through_pred(&v, &|s| s == 0);
        let mut arena = SharedCoverability::new(&v);
        let run = arena.query(&v, 0, usize::MAX, &[]);
        let sound = run.nonneg_cycle_through_pred(&v, &|s| s == 0);
        let complete = run.augmented_nonneg_cycle_through_pred(&v, &|s| s == 0);
        // The tiers bracket the truth.
        assert!(!sound || expect);
        assert!(complete || !expect);
        assert_eq!(sound, expect, "pump-drain decides on real edges alone");
    }

    #[test]
    fn path_to_node_chains_control_states_from_the_root() {
        let v = pump_drain(2);
        let mut arena = SharedCoverability::new(&v);
        let run = arena.query(&v, 0, usize::MAX, &[]);
        for vidx in 0..run.node_count() {
            let path = run.path_to_node(vidx);
            let mut state = 0usize;
            for a in path {
                assert_eq!(v.actions[a].from, state);
                state = v.actions[a].to;
            }
            assert_eq!(state, run.state(vidx));
        }
    }
}
