//! The VASS model and its decision procedures.

use crate::coverability::CoverabilityGraph;
use std::fmt;

/// An action `(from, δ, to)`: move from control state `from` to `to`, adding
/// `δ` to the counter vector (which must stay non-negative).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Action {
    /// Source control state.
    pub from: usize,
    /// Counter delta.
    pub delta: Vec<i64>,
    /// Target control state.
    pub to: usize,
}

/// A Vector Addition System with States.
#[derive(Clone, Debug, Default)]
pub struct Vass {
    /// Number of control states.
    pub states: usize,
    /// Vector dimension.
    pub dim: usize,
    /// Actions.
    pub actions: Vec<Action>,
}

impl Vass {
    /// Creates a VASS with the given number of control states and dimension.
    pub fn new(states: usize, dim: usize) -> Self {
        Vass {
            states,
            dim,
            actions: Vec::new(),
        }
    }

    /// Adds an action.
    ///
    /// # Panics
    /// Panics if the states are out of range or the delta has the wrong
    /// dimension.
    pub fn add_action(&mut self, from: usize, delta: Vec<i64>, to: usize) {
        assert!(from < self.states && to < self.states, "state out of range");
        assert_eq!(delta.len(), self.dim, "delta dimension mismatch");
        self.actions.push(Action { from, delta, to });
    }

    /// Actions leaving a control state.
    ///
    /// This scans the whole action list; callers that repeatedly expand
    /// states (graph construction, explicit exploration) should precompute
    /// [`Vass::adjacency`] once instead.
    pub fn actions_from(&self, state: usize) -> impl Iterator<Item = (usize, &Action)> {
        self.actions
            .iter()
            .enumerate()
            .filter(move |(_, a)| a.from == state)
    }

    /// Per-state adjacency: `adjacency()[s]` lists the indices of the actions
    /// leaving state `s`, in insertion order. One O(|actions|) pass replaces
    /// the per-expansion scans of [`Vass::actions_from`].
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.states];
        for (i, a) in self.actions.iter().enumerate() {
            adj[a.from].push(i);
        }
        adj
    }

    /// Per-state adjacency in CSR form: two flat arrays instead of one
    /// allocation per state. [`ActionCsr::actions_from`] returns the action
    /// indices leaving a state, in insertion order (the same order as
    /// [`Vass::adjacency`]). This is what the hot graph constructions use;
    /// [`Vass::adjacency`] remains for callers that want owned per-state
    /// lists.
    pub fn action_csr(&self) -> ActionCsr {
        let mut offsets = vec![0u32; self.states + 1];
        for a in &self.actions {
            offsets[a.from + 1] += 1;
        }
        for s in 0..self.states {
            offsets[s + 1] += offsets[s];
        }
        let mut actions = vec![0u32; self.actions.len()];
        let mut cursor = offsets.clone();
        for (i, a) in self.actions.iter().enumerate() {
            actions[cursor[a.from] as usize] = i as u32;
            cursor[a.from] += 1;
        }
        ActionCsr { offsets, actions }
    }

    /// Decides control-state reachability from `(init, 0̄)`: is there a run
    /// reaching some configuration with control state `target`?
    ///
    /// The coverability-graph construction stops as soon as the target is
    /// discovered ([`CoverabilityGraph::build_to_state`]) rather than
    /// building the whole graph.
    pub fn state_reachable(&self, init: usize, target: usize) -> bool {
        if init == target {
            return true;
        }
        let graph = CoverabilityGraph::build_to_state(self, init, target);
        let reachable = graph.nodes().any(|n| n.state == target);
        reachable
    }

    /// Like [`Vass::state_reachable`], but also returns the witnessing action
    /// sequence through the coverability graph (a *pseudo-run*: on
    /// ω-accelerated coordinates, a concrete run may need to repeat pumping
    /// loops; the control-state projection is nevertheless realizable).
    pub fn state_reachable_witness(&self, init: usize, target: usize) -> Option<Vec<usize>> {
        let graph = CoverabilityGraph::build_to_state(self, init, target);
        graph.path_to_state(target)
    }

    /// Decides state repeated reachability from `(init, 0̄)`: is there a run
    /// `(init, 0̄) →* (target, v̄) →⁺ (target, v̄')` with `v̄ ≤ v̄'`
    /// componentwise? (Lemma 21's lasso condition.)
    ///
    /// The decision is exact: it looks for a cycle through a
    /// coverability-graph node with control state `target` whose summed
    /// action delta is componentwise non-negative, decided by circulation
    /// feasibility per strongly connected component (see [`crate::cycle`]).
    /// The `max_cycle_len` parameter of earlier versions is gone — the old
    /// bounded search silently missed lassos longer than its cap.
    pub fn state_repeated_reachable(&self, init: usize, target: usize) -> bool {
        let graph = CoverabilityGraph::build(self, init);
        graph.nonneg_cycle_through(self, target)
    }

    /// Number of actions.
    pub fn action_count(&self) -> usize {
        self.actions.len()
    }
}

/// Compressed-sparse-row action adjacency of a [`Vass`] (see
/// [`Vass::action_csr`]): `offsets` has one entry per state plus a
/// terminator, `actions` holds the action indices grouped by source state.
#[derive(Clone, Debug)]
pub struct ActionCsr {
    offsets: Vec<u32>,
    actions: Vec<u32>,
}

impl ActionCsr {
    /// The indices of the actions leaving `state`, in insertion order.
    pub fn actions_from(&self, state: usize) -> &[u32] {
        &self.actions[self.offsets[state] as usize..self.offsets[state + 1] as usize]
    }
}

impl fmt::Display for Vass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Vass({} states, dim {}, {} actions)",
            self.states,
            self.dim,
            self.actions.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A producer/consumer VASS: state 0 pumps the counter, state 1 drains it.
    fn producer_consumer() -> Vass {
        let mut v = Vass::new(3, 1);
        v.add_action(0, vec![1], 0); // produce
        v.add_action(0, vec![0], 1); // switch
        v.add_action(1, vec![-1], 1); // consume
        v.add_action(1, vec![-1], 2); // finish (requires one token)
        v
    }

    #[test]
    fn reachability_through_counters() {
        let v = producer_consumer();
        assert!(v.state_reachable(0, 1));
        assert!(v.state_reachable(0, 2));
        assert!(!v.state_reachable(1, 0));
        let w = v.state_reachable_witness(0, 2).unwrap();
        assert!(!w.is_empty());
    }

    #[test]
    fn unreachable_when_counter_cannot_be_paid() {
        // Reaching state 1 requires decrementing from zero: impossible.
        let mut v = Vass::new(2, 1);
        v.add_action(0, vec![-1], 1);
        assert!(!v.state_reachable(0, 1));
        assert!(v.state_reachable(0, 0));
    }

    #[test]
    fn repeated_reachability_of_pumping_state() {
        let v = producer_consumer();
        // State 0 loops with +1: repeatedly reachable.
        assert!(v.state_repeated_reachable(0, 0));
        // State 1 loops with -1 only: a cycle exists in the coverability
        // graph (counter is ω) but its effect is negative, so it is *not*
        // repeatedly reachable... unless the counter can be pumped before
        // each visit — which it cannot once in state 1. Expect false.
        assert!(!v.state_repeated_reachable(1, 1));
        // State 2 has no outgoing actions: not repeatedly reachable.
        assert!(!v.state_repeated_reachable(0, 2));
    }

    #[test]
    fn repeated_reachability_with_balanced_cycle() {
        // 0 -> 1 (+1), 1 -> 0 (-1): a balanced cycle through both states.
        let mut v = Vass::new(2, 1);
        v.add_action(0, vec![1], 1);
        v.add_action(1, vec![-1], 0);
        assert!(v.state_repeated_reachable(0, 0));
        assert!(v.state_repeated_reachable(0, 1));
    }

    #[test]
    fn self_loop_without_counters_is_a_lasso() {
        let mut v = Vass::new(1, 0);
        v.add_action(0, vec![], 0);
        assert!(v.state_repeated_reachable(0, 0));
    }

    #[test]
    fn no_actions_means_no_lasso() {
        let v = Vass::new(1, 0);
        assert!(!v.state_repeated_reachable(0, 0));
        assert!(v.state_reachable(0, 0));
    }

    #[test]
    #[should_panic]
    fn wrong_dimension_panics() {
        let mut v = Vass::new(1, 2);
        v.add_action(0, vec![1], 0);
    }
}
