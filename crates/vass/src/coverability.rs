//! Karp–Miller coverability graph with ω-acceleration.
//!
//! The graph stores its nodes in dense arenas (DESIGN.md §5.8): markings
//! live in one flat row-major `Vec<u64>` arena, the `(state, marking) → id`
//! canonicalization is a hand-rolled open-addressing interner whose table
//! holds node ids (so a lookup hit clones nothing and a miss copies the
//! candidate marking exactly once, into the arena), and ω-acceleration
//! consults a per-expansion ancestor index instead of re-walking the full
//! parent chain per successor. Node ids are assigned in BFS-discovery
//! order, which is what makes every downstream iteration deterministic.

use crate::cycle::{self, DeltaEdge};
use crate::dense::FxHasher;
use crate::vass::Vass;
use std::collections::VecDeque;
use std::hash::Hasher;

/// The ω value of a marking coordinate ("arbitrarily large").
pub const OMEGA: u64 = u64::MAX;

/// An extended marking: one value per counter, where [`OMEGA`] means the
/// counter can be pumped above any bound.
pub type Marking = Vec<u64>;

/// Sentinel for "no parent node / no incoming action" in the dense arrays.
pub(crate) const NONE: u32 = u32::MAX;

/// Adds `delta` to `marking` into `out` (ω absorbs). Returns `false` when a
/// non-ω coordinate would go negative.
pub(crate) fn add_into(marking: &[u64], delta: &[i64], out: &mut [u64]) -> bool {
    for ((m, d), o) in marking.iter().zip(delta).zip(out.iter_mut()) {
        if *m == OMEGA {
            *o = OMEGA;
        } else {
            let v = (*m as i128) + (*d as i128);
            if v < 0 {
                return false;
            }
            *o = v as u64;
        }
    }
    true
}

/// A view of one coverability-graph node. The marking borrows the graph's
/// row arena; everything else is copied out of the dense columns.
#[derive(Clone, Copy, Debug)]
pub struct NodeRef<'a> {
    /// Control state.
    pub state: usize,
    /// Extended marking (one row of the arena).
    pub marking: &'a [u64],
    /// Parent node id in the Karp–Miller tree (`None` for the root).
    pub parent: Option<usize>,
    /// The index (into the VASS action list) of the action taken from the
    /// parent.
    pub via_action: Option<usize>,
}

/// The Karp–Miller coverability graph of a VASS from a given initial control
/// state (with all counters initially zero).
///
/// Nodes with identical `(state, marking)` pairs are canonicalized; edges
/// record the underlying VASS action so that cycle effects can be computed
/// exactly.
#[derive(Clone, Debug)]
pub struct CoverabilityGraph {
    dim: usize,
    /// Control state per node.
    states: Vec<u32>,
    /// Flat row-major marking arena: node `i`'s marking is
    /// `rows[i*dim .. (i+1)*dim]`.
    rows: Vec<u64>,
    /// Parent node per node ([`NONE`] for the root).
    parent: Vec<u32>,
    /// Incoming action per node ([`NONE`] for the root).
    via: Vec<u32>,
    /// Cached interner hash per node (so table growth never re-reads rows).
    hashes: Vec<u64>,
    /// Edges `(from_node, action_index, to_node)` in discovery order — the
    /// edge *indices* are part of the determinism contract (cycle witnesses
    /// are reported as indices into this list).
    edges: Vec<(u32, u32, u32)>,
    /// Open-addressing interner table over `(state, marking)`: slots hold
    /// `node id + 1` (`0` = empty); length is a power of two.
    table: Vec<u32>,
    mask: usize,
}

/// Deterministic hash of an interner key (control state + marking row).
pub(crate) fn hash_key(state: u32, row: &[u64]) -> u64 {
    let mut h = FxHasher::default();
    h.write_u32(state);
    for &w in row {
        h.write_u64(w);
    }
    h.finish()
}

/// The per-expansion ancestor index for ω-acceleration: one walk up the
/// parent chain of the node being expanded builds, per control state, the
/// chain of its ancestors with that state (nearest first). Each successor
/// candidate then scans exactly the ancestors sharing its target state —
/// O(1) lookup plus O(width) per *matching* ancestor — instead of
/// re-walking the whole chain per candidate as the previous implementation
/// did. Scratch buffers are stamped, so reuse across expansions is O(chain
/// length), not O(|states|).
struct AncestorIndex {
    /// Per control state: index+1 of the first (nearest) chain entry.
    head: Vec<u32>,
    /// Per control state: index+1 of the last chain entry (for appends).
    tail: Vec<u32>,
    /// Stamp validating `head`/`tail` for the current expansion.
    stamp: Vec<u64>,
    current: u64,
    /// Chain entries `(node id, index+1 of next entry with the same state)`.
    entries: Vec<(u32, u32)>,
}

impl AncestorIndex {
    fn new(num_states: usize) -> Self {
        AncestorIndex {
            head: vec![0; num_states],
            tail: vec![0; num_states],
            stamp: vec![0; num_states],
            current: 0,
            entries: Vec::new(),
        }
    }

    /// Rebuilds the index for the ancestors of `node` (inclusive).
    fn build(&mut self, graph: &CoverabilityGraph, node: u32) {
        self.current += 1;
        self.entries.clear();
        let mut a = node;
        while a != NONE {
            let s = graph.states[a as usize] as usize;
            if self.stamp[s] != self.current {
                self.stamp[s] = self.current;
                self.head[s] = 0;
                self.tail[s] = 0;
            }
            let idx = self.entries.len() as u32 + 1;
            self.entries.push((a, 0));
            if self.tail[s] == 0 {
                self.head[s] = idx;
            } else {
                self.entries[(self.tail[s] - 1) as usize].1 = idx;
            }
            self.tail[s] = idx;
            a = graph.parent[a as usize];
        }
    }

    /// ω-accelerates `next` against the indexed ancestors with control state
    /// `state`: any ancestor whose marking is dominated by (and not equal
    /// to) the current `next` pumps the strictly larger coordinates to ω.
    /// Ancestors apply nearest-first, exactly like the replaced chain walk.
    ///
    /// `bounded` carries per-dimension boundedness certificates (empty =
    /// none): a certified dimension is provably never the strictly larger
    /// coordinate of a domination (see
    /// [`crate::zrelax::certified_bounded_dims`]), so it is excluded from the
    /// `strictly` test — the resulting graph is byte-identical, the
    /// certificate only removes comparison work.
    fn accelerate(
        &self,
        graph: &CoverabilityGraph,
        state: u32,
        next: &mut [u64],
        bounded: &[bool],
    ) {
        let s = state as usize;
        if self.stamp[s] != self.current {
            return;
        }
        let mut e = self.head[s];
        while e != 0 {
            let (node, next_entry) = self.entries[(e - 1) as usize];
            let row = graph.row(node as usize);
            let mut dominated = true;
            let mut strictly = false;
            for (d, (a, n)) in row.iter().zip(next.iter()).enumerate() {
                if *a > *n {
                    dominated = false;
                    break;
                }
                if *a < *n && !bounded.get(d).copied().unwrap_or(false) {
                    strictly = true;
                }
            }
            if dominated && strictly {
                for (d, (a, n)) in row.iter().zip(next.iter_mut()).enumerate() {
                    if *a < *n {
                        debug_assert!(
                            !bounded.get(d).copied().unwrap_or(false),
                            "certified-bounded dimension {d} would be accelerated"
                        );
                        *n = OMEGA;
                    }
                }
            }
            e = next_entry;
        }
    }
}

impl CoverabilityGraph {
    fn empty(dim: usize) -> Self {
        CoverabilityGraph {
            dim,
            states: Vec::new(),
            rows: Vec::new(),
            parent: Vec::new(),
            via: Vec::new(),
            hashes: Vec::new(),
            edges: Vec::new(),
            table: vec![0; 16],
            mask: 15,
        }
    }

    /// Builds the coverability graph of `vass` from `(init, 0̄)`.
    pub fn build(vass: &Vass, init: usize) -> Self {
        Self::build_inner(vass, init, usize::MAX, None, &[])
    }

    /// Like [`CoverabilityGraph::build`], but never creates more than
    /// `max_nodes` nodes (the cap is enforced at interning time, so the
    /// documented bound holds exactly — not merely up to the out-degree of
    /// the node being expanded). A truncated graph under-approximates
    /// reachability (everything it contains is genuinely coverable); callers
    /// that rely on exhaustiveness should pass `usize::MAX`.
    pub fn build_capped(vass: &Vass, init: usize, max_nodes: usize) -> Self {
        Self::build_inner(vass, init, max_nodes, None, &[])
    }

    /// Like [`CoverabilityGraph::build_capped`], with per-dimension
    /// boundedness certificates from the static pre-solver
    /// ([`crate::zrelax::certified_bounded_dims`]): a certified dimension is
    /// provably never ω-accelerated, so the builder skips the acceleration
    /// machinery for it — entirely, when every dimension is certified. The
    /// constructed graph is **byte-identical** to
    /// [`CoverabilityGraph::build_capped`]'s (the determinism contract,
    /// DESIGN.md §5.11); only the work changes.
    pub fn build_capped_with_bounds(
        vass: &Vass,
        init: usize,
        max_nodes: usize,
        bounded_dims: &[bool],
    ) -> Self {
        Self::build_inner(vass, init, max_nodes, None, bounded_dims)
    }

    /// Like [`CoverabilityGraph::build`], but stops as soon as a node with
    /// control state `target` is interned. The resulting graph is partial:
    /// it is only useful for answering "is `target` coverable?" and for
    /// extracting a witness path to `target` ([`Self::path_to_state`]) —
    /// both of which only need the prefix built so far.
    pub fn build_to_state(vass: &Vass, init: usize, target: usize) -> Self {
        Self::build_inner(vass, init, usize::MAX, Some(target), &[])
    }

    fn build_inner(
        vass: &Vass,
        init: usize,
        max_nodes: usize,
        stop_at: Option<usize>,
        bounded: &[bool],
    ) -> Self {
        let mut graph = Self::empty(vass.dim);
        if max_nodes == 0 {
            return graph;
        }
        // Per-state CSR adjacency, computed once: expansion below touches
        // only the actions leaving the popped state instead of scanning the
        // whole action list per node.
        let adjacency = vass.action_csr();
        let root_row = vec![0u64; vass.dim];
        let (root, _) = graph
            .intern(init as u32, &root_row, NONE, NONE, max_nodes)
            .expect("the first intern is always under a non-zero cap");
        if stop_at == Some(init) {
            return graph;
        }
        let mut worklist = VecDeque::from([root]);
        // Sized from the node arena (and re-synced with it at every pop):
        // each node is enqueued exactly once, at interning time, so a pop
        // can never observe an id the arena does not already hold.
        let mut expanded = vec![false; graph.node_count()];
        // Scratch marking buffers, reused across the whole construction.
        let mut current = vec![0u64; vass.dim];
        let mut next = vec![0u64; vass.dim];
        let mut ancestors = AncestorIndex::new(vass.states);
        // With every dimension certified bounded (or no dimensions at all)
        // acceleration can never fire: skip the ancestor index entirely.
        let accelerable =
            (0..vass.dim).any(|d| !bounded.get(d).copied().unwrap_or(false));

        while let Some(node_id) = worklist.pop_front() {
            if expanded.len() < graph.node_count() {
                expanded.resize(graph.node_count(), false);
            }
            let node = node_id as usize;
            if expanded[node] {
                continue;
            }
            expanded[node] = true;
            let state = graph.states[node] as usize;
            current.copy_from_slice(graph.row(node));
            // ω-acceleration: if some ancestor (in the Karp–Miller tree)
            // has the same control state as a successor and a marking
            // strictly dominated by it, the strictly larger coordinates can
            // be pumped. One parent-chain walk per expansion builds the
            // per-state index all successors then consult.
            if accelerable {
                ancestors.build(&graph, node_id);
            }
            for &action_idx in adjacency.actions_from(state) {
                let action = &vass.actions[action_idx as usize];
                if !add_into(&current, &action.delta, &mut next) {
                    continue;
                }
                if accelerable {
                    ancestors.accelerate(&graph, action.to as u32, &mut next, bounded);
                }
                let Some((target, is_new)) =
                    graph.intern(action.to as u32, &next, node_id, action_idx, max_nodes)
                else {
                    // Interning would exceed the node cap: drop the edge and
                    // keep expanding among the existing nodes.
                    continue;
                };
                graph.edges.push((node_id, action_idx, target));
                if is_new {
                    worklist.push_back(target);
                    if stop_at == Some(action.to) {
                        return graph;
                    }
                }
            }
        }
        graph
    }

    /// Returns the canonical node id for `(state, row)` and whether it was
    /// newly created, or `None` when creating it would push the node count
    /// beyond `max_nodes`. One probe sequence serves both the hit and the
    /// miss: a hit touches nothing, a miss copies the row into the arena
    /// exactly once.
    fn intern(
        &mut self,
        state: u32,
        row: &[u64],
        parent: u32,
        via: u32,
        max_nodes: usize,
    ) -> Option<(u32, bool)> {
        debug_assert_eq!(row.len(), self.dim);
        let hash = hash_key(state, row);
        let mut slot = (hash as usize) & self.mask;
        loop {
            let entry = self.table[slot];
            if entry == 0 {
                break;
            }
            let id = (entry - 1) as usize;
            if self.hashes[id] == hash && self.states[id] == state && self.row(id) == row {
                return Some((entry - 1, false));
            }
            slot = (slot + 1) & self.mask;
        }
        if self.states.len() >= max_nodes {
            return None;
        }
        let id = u32::try_from(self.states.len())
            .expect("coverability graph overflow: more than u32::MAX nodes");
        self.states.push(state);
        self.rows.extend_from_slice(row);
        self.parent.push(parent);
        self.via.push(via);
        self.hashes.push(hash);
        self.table[slot] = id + 1;
        if (self.states.len() + 1) * 8 > self.table.len() * 7 {
            self.grow_table();
        }
        Some((id, true))
    }

    fn grow_table(&mut self) {
        let new_len = self.table.len() * 2;
        self.mask = new_len - 1;
        self.table.clear();
        self.table.resize(new_len, 0);
        for (id, &hash) in self.hashes.iter().enumerate() {
            let mut slot = (hash as usize) & self.mask;
            while self.table[slot] != 0 {
                slot = (slot + 1) & self.mask;
            }
            self.table[slot] = id as u32 + 1;
        }
    }

    /// The marking row of a node.
    fn row(&self, id: usize) -> &[u64] {
        &self.rows[id * self.dim..(id + 1) * self.dim]
    }

    /// A view of the node with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn node(&self, id: usize) -> NodeRef<'_> {
        NodeRef {
            state: self.states[id] as usize,
            marking: self.row(id),
            parent: (self.parent[id] != NONE).then(|| self.parent[id] as usize),
            via_action: (self.via[id] != NONE).then(|| self.via[id] as usize),
        }
    }

    /// Iterates over the nodes in id (BFS-discovery) order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeRef<'_>> {
        (0..self.node_count()).map(|id| self.node(id))
    }

    /// Number of nodes (a cost metric reported by the benchmarks).
    pub fn node_count(&self) -> usize {
        self.states.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterates over the edges as `(from_node, action_index, to_node)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        self.edges
            .iter()
            .map(|&(f, a, t)| (f as usize, a as usize, t as usize))
    }

    /// A sequence of VASS action indices leading from the root to some node
    /// with the given control state, if one exists.
    pub fn path_to_state(&self, target: usize) -> Option<Vec<usize>> {
        let node = self.states.iter().position(|&s| s as usize == target)?;
        Some(self.path_to_node(node))
    }

    /// The VASS action sequence from the root to the given node, following
    /// the Karp–Miller tree's parent chain (empty for the root). This is the
    /// run *prefix* a counterexample report renders in front of a blocking
    /// point or pump cycle.
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn path_to_node(&self, node: usize) -> Vec<usize> {
        let mut path = Vec::new();
        let mut current = node;
        while self.parent[current] != NONE {
            debug_assert_ne!(
                self.via[current], NONE,
                "non-root nodes record their incoming action"
            );
            path.push(self.via[current] as usize);
            current = self.parent[current] as usize;
        }
        path.reverse();
        path
    }

    /// Decides whether a cycle (closed walk) through some node with control
    /// state `target` has a componentwise non-negative summed action effect —
    /// the witness for state repeated reachability (Lemma 21's lasso).
    ///
    /// The decision is exact and unbounded: it reduces to circulation
    /// feasibility per strongly connected component, solved by exact rational
    /// linear programming with Kosaraju–Sullivan support refinement for
    /// connectivity (see [`crate::cycle`]). The cycle-length cap of the old
    /// depth-first search — which silently missed lassos longer than the cap —
    /// is gone.
    pub fn nonneg_cycle_through(&self, vass: &Vass, target: usize) -> bool {
        self.nonneg_cycle_through_pred(vass, &|s| s == target)
    }

    /// Like [`CoverabilityGraph::nonneg_cycle_through`], but accepts any
    /// control state satisfying the predicate (used by the verifier, where
    /// "accepting" is a property of the encoded Büchi component).
    pub fn nonneg_cycle_through_pred(&self, vass: &Vass, target: &dyn Fn(usize) -> bool) -> bool {
        cycle::nonneg_cycle_exists(
            self.node_count(),
            vass.dim,
            &self.delta_edges(vass),
            &|node| target(self.states[node] as usize),
        )
    }

    /// Decides [`CoverabilityGraph::nonneg_cycle_through_pred`] and
    /// materializes the pump-cycle witness in one pipeline run
    /// ([`cycle::nonneg_cycle_search`]): on
    /// [`cycle::CycleSearch::Witness`], the walk comes back as
    /// coverability-graph edges `(from_node, action_index, to_node)` in
    /// traversal order, starting (and ending) at a predicate node, with
    /// componentwise non-negative summed action effect — the cycle part of a
    /// lasso counterexample, repeatable forever. The decision itself is
    /// exact regardless of the `max_len` materialization cap.
    pub fn nonneg_cycle_search_through_pred(
        &self,
        vass: &Vass,
        target: &dyn Fn(usize) -> bool,
        max_len: usize,
    ) -> cycle::CycleSearch<(usize, usize, usize)> {
        cycle::nonneg_cycle_search(
            self.node_count(),
            vass.dim,
            &self.delta_edges(vass),
            &|node| target(self.states[node] as usize),
            max_len,
        )
        .map_edges(|i| {
            let (f, a, t) = self.edges[i];
            (f as usize, a as usize, t as usize)
        })
    }

    /// The walk of [`CoverabilityGraph::nonneg_cycle_search_through_pred`],
    /// or `None` when no cycle exists or none could be materialized within
    /// `max_len` traversals.
    pub fn nonneg_cycle_witness_through_pred(
        &self,
        vass: &Vass,
        target: &dyn Fn(usize) -> bool,
        max_len: usize,
    ) -> Option<Vec<(usize, usize, usize)>> {
        match self.nonneg_cycle_search_through_pred(vass, target, max_len) {
            cycle::CycleSearch::Witness(walk) => Some(walk),
            _ => None,
        }
    }

    /// The graph's edges as [`DeltaEdge`]s over coverability nodes, with
    /// each edge *borrowing* its underlying VASS action effect — building
    /// the cycle-search instance copies no delta vectors.
    fn delta_edges<'a>(&self, vass: &'a Vass) -> Vec<DeltaEdge<'a>> {
        self.edges
            .iter()
            .map(|&(from, action, to)| DeltaEdge {
                from: from as usize,
                to: to as usize,
                delta: &vass.actions[action as usize].delta,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceleration_produces_omega() {
        let mut v = Vass::new(1, 1);
        v.add_action(0, vec![1], 0);
        let g = CoverabilityGraph::build(&v, 0);
        assert!(g.nodes().any(|n| n.marking == vec![OMEGA]));
        // The graph is finite despite the unbounded counter.
        assert!(g.node_count() <= 3);
    }

    #[test]
    fn negative_moves_from_zero_are_blocked() {
        let mut v = Vass::new(2, 1);
        v.add_action(0, vec![-1], 1);
        let g = CoverabilityGraph::build(&v, 0);
        assert!(g.nodes().all(|n| n.state != 1));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn path_extraction_reaches_target() {
        let mut v = Vass::new(3, 1);
        v.add_action(0, vec![2], 1);
        v.add_action(1, vec![-1], 2);
        let g = CoverabilityGraph::build(&v, 0);
        let path = g.path_to_state(2).unwrap();
        assert_eq!(path.len(), 2);
        assert!(g.path_to_state(0).unwrap().is_empty());
    }

    #[test]
    fn two_dimensional_markings() {
        // Transfer loop: (+1,-1) needs the second counter, which never has
        // tokens, so only the producing action on dim 0 fires.
        let mut v = Vass::new(1, 2);
        v.add_action(0, vec![1, 0], 0);
        v.add_action(0, vec![1, -1], 0);
        let g = CoverabilityGraph::build(&v, 0);
        assert!(g.nodes().any(|n| n.marking[0] == OMEGA));
        assert!(g.nodes().all(|n| n.marking[1] != OMEGA));
    }

    #[test]
    fn nonneg_cycle_detection_respects_sign() {
        // One node, two self loops: -1 and +1. A non-negative cycle exists
        // (+1, or +1 then -1).
        let mut v = Vass::new(1, 1);
        v.add_action(0, vec![1], 0);
        v.add_action(0, vec![-1], 0);
        let g = CoverabilityGraph::build(&v, 0);
        assert!(g.nonneg_cycle_through(&v, 0));

        // Only a decrementing loop: no non-negative cycle, even though the
        // coverability graph has a cycle at ω.
        let mut v2 = Vass::new(2, 1);
        v2.add_action(0, vec![1], 0);
        v2.add_action(0, vec![0], 1);
        v2.add_action(1, vec![-1], 1);
        let g2 = CoverabilityGraph::build(&v2, 0);
        assert!(g2.nonneg_cycle_through(&v2, 0));
        assert!(!g2.nonneg_cycle_through(&v2, 1));
    }

    #[test]
    fn cycle_witness_and_prefix_reconstruct_a_lasso() {
        // 0 --(+1)--> 1 with a balanced two-edge cycle 1 ⇄ 2: the lasso
        // through state 1 has a one-action prefix and a two-edge pump cycle.
        let mut v = Vass::new(3, 1);
        v.add_action(0, vec![1], 1);
        v.add_action(1, vec![-1], 2);
        v.add_action(2, vec![1], 1);
        let g = CoverabilityGraph::build(&v, 0);
        assert!(g.nonneg_cycle_through(&v, 1));
        let walk = g
            .nonneg_cycle_witness_through_pred(&v, &|s| s == 1, 10_000)
            .expect("lasso exists");
        // Chained and closed over coverability nodes, starting at state 1.
        for (k, &(_, _, to)) in walk.iter().enumerate() {
            assert_eq!(to, walk[(k + 1) % walk.len()].0);
        }
        let (start, _, _) = walk[0];
        assert_eq!(g.node(start).state, 1);
        // The prefix to the cycle's start replays to its control state.
        let prefix = g.path_to_node(start);
        assert_eq!(prefix.len(), 1);
        assert_eq!(v.actions[prefix[0]].to, 1);
        // Summed effect of the cycle is non-negative.
        let sum: i64 = walk.iter().map(|&(_, a, _)| v.actions[a].delta[0]).sum();
        assert!(sum >= 0);
    }

    #[test]
    fn node_cap_is_enforced_exactly() {
        // A fan-out of 8 actions from the root: the old pop-time check let
        // one expansion overshoot the cap by its out-degree; the cap must now
        // hold exactly for every value.
        let mut v = Vass::new(9, 1);
        for to in 1..9 {
            v.add_action(0, vec![1], to);
        }
        for cap in 0..=10usize {
            let g = CoverabilityGraph::build_capped(&v, 0, cap);
            assert!(
                g.node_count() <= cap,
                "cap {cap} overshot: {} nodes",
                g.node_count()
            );
        }
        // Uncapped, the graph has the root plus all eight targets.
        assert_eq!(CoverabilityGraph::build(&v, 0).node_count(), 9);
    }

    #[test]
    fn build_to_state_stops_early() {
        // A chain 0 → 1 → … with a huge branching side-structure after the
        // target: stopping at state 1 must not explore the rest.
        let mut v = Vass::new(12, 2);
        v.add_action(0, vec![1, 0], 1);
        for s in 1..11 {
            v.add_action(s, vec![0, 1], s + 1);
            v.add_action(s, vec![1, 1], s);
        }
        let g = CoverabilityGraph::build_to_state(&v, 0, 1);
        assert!(g.nodes().any(|n| n.state == 1));
        let full = CoverabilityGraph::build(&v, 0);
        assert!(g.node_count() < full.node_count());
        // The partial graph still yields a witness path.
        assert_eq!(g.path_to_state(1).unwrap().len(), 1);
    }

    #[test]
    fn duplicate_targets_are_interned_once_and_expanded_once() {
        // Two distinct actions from the root produce the *same* successor
        // `(state 1, [1])`, and a third path reaches it again via state 2:
        // the node must be interned once, re-queued never, and expanded
        // exactly once — observable as exact node and edge counts (a double
        // expansion would duplicate the out-edges of state 1).
        let mut v = Vass::new(4, 1);
        v.add_action(0, vec![1], 1); // root → (1,[1])
        v.add_action(0, vec![1], 1); // duplicate successor
        v.add_action(0, vec![0], 2); // root → (2,[0])
        v.add_action(2, vec![1], 1); // second path to (1,[1])
        v.add_action(1, vec![0], 3); // the out-edge that must appear once per intern
        let g = CoverabilityGraph::build(&v, 0);
        // Nodes: (0,[0]), (1,[1]), (2,[0]), (3,[1]).
        assert_eq!(g.node_count(), 4);
        // Edges: three into (1,[1]), one into (2,[0]), and exactly ONE copy
        // of (1,[1]) → (3,[1]) — five total. A re-expansion of the
        // re-reached node would push a sixth.
        assert_eq!(g.edge_count(), 5);
        let into_3: Vec<_> = g.edges().filter(|&(_, _, to)| g.node(to).state == 3).collect();
        assert_eq!(into_3.len(), 1);
    }

    #[test]
    fn interner_assigns_bfs_discovery_order() {
        // Ids must follow the BFS worklist order, not any value order: the
        // root is 0 and successors number up in discovery order.
        let mut v = Vass::new(3, 1);
        v.add_action(0, vec![5], 2); // discovered first, large marking
        v.add_action(0, vec![1], 1); // discovered second, small marking
        let g = CoverabilityGraph::build(&v, 0);
        assert_eq!(g.node(0).state, 0);
        assert_eq!(g.node(1).state, 2);
        assert_eq!(g.node(2).state, 1);
        assert_eq!(g.node(1).marking, &[5]);
    }
}
