//! Karp–Miller coverability graph with ω-acceleration.

use crate::vass::Vass;
use std::collections::{BTreeMap, VecDeque};

/// The ω value of a marking coordinate ("arbitrarily large").
pub const OMEGA: u64 = u64::MAX;

/// An extended marking: one value per counter, where [`OMEGA`] means the
/// counter can be pumped above any bound.
pub type Marking = Vec<u64>;

fn add(marking: &Marking, delta: &[i64]) -> Option<Marking> {
    let mut out = Vec::with_capacity(marking.len());
    for (m, d) in marking.iter().zip(delta) {
        if *m == OMEGA {
            out.push(OMEGA);
        } else {
            let v = (*m as i128) + (*d as i128);
            if v < 0 {
                return None;
            }
            out.push(v as u64);
        }
    }
    Some(out)
}

fn leq(a: &Marking, b: &Marking) -> bool {
    a.iter().zip(b).all(|(x, y)| *x <= *y)
}

/// A node of the coverability graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Node {
    /// Control state.
    pub state: usize,
    /// Extended marking.
    pub marking: Marking,
    /// Parent node id in the Karp–Miller tree (`None` for the root).
    pub parent: Option<usize>,
    /// The index (into the VASS action list) of the action taken from the
    /// parent.
    pub via_action: Option<usize>,
}

/// The Karp–Miller coverability graph of a VASS from a given initial control
/// state (with all counters initially zero).
///
/// Nodes with identical `(state, marking)` pairs are canonicalized; edges
/// record the underlying VASS action so that cycle effects can be computed
/// exactly.
#[derive(Clone, Debug)]
pub struct CoverabilityGraph {
    nodes: Vec<Node>,
    /// Edges `(from_node, action_index, to_node)`.
    edges: Vec<(usize, usize, usize)>,
    /// Canonical node per `(state, marking)`.
    index: BTreeMap<(usize, Marking), usize>,
}

impl CoverabilityGraph {
    /// Builds the coverability graph of `vass` from `(init, 0̄)`.
    pub fn build(vass: &Vass, init: usize) -> Self {
        Self::build_capped(vass, init, usize::MAX)
    }

    /// Like [`CoverabilityGraph::build`], but stops expanding once the graph
    /// has `max_nodes` nodes. A truncated graph under-approximates
    /// reachability (everything it contains is genuinely coverable); callers
    /// that rely on exhaustiveness should pass `usize::MAX`.
    pub fn build_capped(vass: &Vass, init: usize, max_nodes: usize) -> Self {
        let mut graph = CoverabilityGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            index: BTreeMap::new(),
        };
        let root_marking = vec![0u64; vass.dim];
        let root = graph.intern(init, root_marking, None, None);
        let mut worklist = VecDeque::from([root]);
        let mut expanded = vec![false; 1];

        while let Some(node_id) = worklist.pop_front() {
            if expanded[node_id] {
                continue;
            }
            if graph.nodes.len() >= max_nodes {
                break;
            }
            expanded[node_id] = true;
            let (state, marking) = {
                let n = &graph.nodes[node_id];
                (n.state, n.marking.clone())
            };
            for (action_idx, action) in vass.actions_from(state) {
                let Some(mut next) = add(&marking, &action.delta) else {
                    continue;
                };
                // ω-acceleration: if some ancestor (in the Karp–Miller tree)
                // has the same control state and a marking strictly dominated
                // by `next`, the strictly larger coordinates can be pumped.
                let mut ancestor = Some(node_id);
                while let Some(a) = ancestor {
                    let anc = &graph.nodes[a];
                    if anc.state == action.to && leq(&anc.marking, &next) && anc.marking != next {
                        for (i, (av, nv)) in anc.marking.iter().zip(next.iter_mut()).enumerate() {
                            let _ = i;
                            if *av < *nv {
                                *nv = OMEGA;
                            }
                        }
                    }
                    ancestor = anc.parent;
                }
                let existed = graph.index.contains_key(&(action.to, next.clone()));
                let target = graph.intern(action.to, next, Some(node_id), Some(action_idx));
                graph.edges.push((node_id, action_idx, target));
                if !existed {
                    expanded.push(false);
                    worklist.push_back(target);
                }
            }
        }
        graph
    }

    fn intern(
        &mut self,
        state: usize,
        marking: Marking,
        parent: Option<usize>,
        via_action: Option<usize>,
    ) -> usize {
        if let Some(&id) = self.index.get(&(state, marking.clone())) {
            return id;
        }
        let id = self.nodes.len();
        self.nodes.push(Node {
            state,
            marking: marking.clone(),
            parent,
            via_action,
        });
        self.index.insert((state, marking), id);
        id
    }

    /// Iterates over the nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// Number of nodes (a cost metric reported by the benchmarks).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// A sequence of VASS action indices leading from the root to some node
    /// with the given control state, if one exists.
    pub fn path_to_state(&self, target: usize) -> Option<Vec<usize>> {
        let node = self.nodes.iter().position(|n| n.state == target)?;
        let mut path = Vec::new();
        let mut current = node;
        while let Some(parent) = self.nodes[current].parent {
            path.push(
                self.nodes[current]
                    .via_action
                    .expect("non-root nodes record their incoming action"),
            );
            current = parent;
        }
        path.reverse();
        Some(path)
    }

    /// Searches for a cycle through some node with control state `target`
    /// whose summed action effect is componentwise non-negative — the
    /// witness for state repeated reachability (Lemma 21's lasso).
    ///
    /// The DFS bounds cycle length by `max_len` (default: `2 · |nodes|`) and
    /// prunes paths whose accumulated effect is dominated by an already-seen
    /// accumulated effect at the same node with no larger depth.
    pub fn nonneg_cycle_through(
        &self,
        vass: &Vass,
        target: usize,
        max_len: Option<usize>,
    ) -> bool {
        self.nonneg_cycle_through_pred(vass, &|s| s == target, max_len)
    }

    /// Like [`CoverabilityGraph::nonneg_cycle_through`], but accepts any
    /// control state satisfying the predicate (used by the verifier, where
    /// "accepting" is a property of the encoded Büchi component).
    pub fn nonneg_cycle_through_pred(
        &self,
        vass: &Vass,
        target: &dyn Fn(usize) -> bool,
        max_len: Option<usize>,
    ) -> bool {
        let max_len = max_len.unwrap_or(2 * self.nodes.len().max(1));
        // Outgoing adjacency with action deltas.
        let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.nodes.len()];
        for &(from, action, to) in &self.edges {
            adj[from].push((action, to));
        }
        for start in 0..self.nodes.len() {
            if !target(self.nodes[start].state) {
                continue;
            }
            // DFS with accumulated deltas and dominance pruning.
            let mut seen: Vec<Vec<(Vec<i64>, usize)>> = vec![Vec::new(); self.nodes.len()];
            let mut stack: Vec<(usize, Vec<i64>, usize)> =
                vec![(start, vec![0i64; vass.dim], 0usize)];
            while let Some((node, acc, depth)) = stack.pop() {
                if depth > 0 && node == start && acc.iter().all(|d| *d >= 0) {
                    return true;
                }
                if depth >= max_len {
                    continue;
                }
                // Dominance pruning.
                let dominated = seen[node]
                    .iter()
                    .any(|(prev, pd)| *pd <= depth && prev.iter().zip(&acc).all(|(p, a)| p >= a));
                if dominated && depth > 0 {
                    continue;
                }
                seen[node].retain(|(prev, pd)| {
                    !(depth <= *pd && acc.iter().zip(prev).all(|(a, p)| a >= p))
                });
                seen[node].push((acc.clone(), depth));
                for &(action_idx, next) in &adj[node] {
                    let delta = &vass.actions[action_idx].delta;
                    let next_acc: Vec<i64> =
                        acc.iter().zip(delta).map(|(a, d)| a + d).collect();
                    stack.push((next, next_acc, depth + 1));
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceleration_produces_omega() {
        let mut v = Vass::new(1, 1);
        v.add_action(0, vec![1], 0);
        let g = CoverabilityGraph::build(&v, 0);
        assert!(g.nodes().any(|n| n.marking == vec![OMEGA]));
        // The graph is finite despite the unbounded counter.
        assert!(g.node_count() <= 3);
    }

    #[test]
    fn negative_moves_from_zero_are_blocked() {
        let mut v = Vass::new(2, 1);
        v.add_action(0, vec![-1], 1);
        let g = CoverabilityGraph::build(&v, 0);
        assert!(g.nodes().all(|n| n.state != 1));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn path_extraction_reaches_target() {
        let mut v = Vass::new(3, 1);
        v.add_action(0, vec![2], 1);
        v.add_action(1, vec![-1], 2);
        let g = CoverabilityGraph::build(&v, 0);
        let path = g.path_to_state(2).unwrap();
        assert_eq!(path.len(), 2);
        assert!(g.path_to_state(0).unwrap().is_empty());
    }

    #[test]
    fn two_dimensional_markings() {
        // Transfer loop: (+1,-1) needs the second counter, which never has
        // tokens, so only the producing action on dim 0 fires.
        let mut v = Vass::new(1, 2);
        v.add_action(0, vec![1, 0], 0);
        v.add_action(0, vec![1, -1], 0);
        let g = CoverabilityGraph::build(&v, 0);
        assert!(g.nodes().any(|n| n.marking[0] == OMEGA));
        assert!(g.nodes().all(|n| n.marking[1] != OMEGA));
    }

    #[test]
    fn nonneg_cycle_detection_respects_sign() {
        // One node, two self loops: -1 and +1. A non-negative cycle exists
        // (+1, or +1 then -1).
        let mut v = Vass::new(1, 1);
        v.add_action(0, vec![1], 0);
        v.add_action(0, vec![-1], 0);
        let g = CoverabilityGraph::build(&v, 0);
        assert!(g.nonneg_cycle_through(&v, 0, None));

        // Only a decrementing loop: no non-negative cycle, even though the
        // coverability graph has a cycle at ω.
        let mut v2 = Vass::new(2, 1);
        v2.add_action(0, vec![1], 0);
        v2.add_action(0, vec![0], 1);
        v2.add_action(1, vec![-1], 1);
        let g2 = CoverabilityGraph::build(&v2, 0);
        assert!(g2.nonneg_cycle_through(&v2, 0, None));
        assert!(!g2.nonneg_cycle_through(&v2, 1, None));
    }
}
