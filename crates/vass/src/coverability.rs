//! Karp–Miller coverability graph with ω-acceleration.

use crate::cycle::{self, DeltaEdge};
use crate::vass::Vass;
use std::collections::{BTreeMap, VecDeque};

/// The ω value of a marking coordinate ("arbitrarily large").
pub const OMEGA: u64 = u64::MAX;

/// An extended marking: one value per counter, where [`OMEGA`] means the
/// counter can be pumped above any bound.
pub type Marking = Vec<u64>;

fn add(marking: &Marking, delta: &[i64]) -> Option<Marking> {
    let mut out = Vec::with_capacity(marking.len());
    for (m, d) in marking.iter().zip(delta) {
        if *m == OMEGA {
            out.push(OMEGA);
        } else {
            let v = (*m as i128) + (*d as i128);
            if v < 0 {
                return None;
            }
            out.push(v as u64);
        }
    }
    Some(out)
}

fn leq(a: &Marking, b: &Marking) -> bool {
    a.iter().zip(b).all(|(x, y)| *x <= *y)
}

/// A node of the coverability graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Node {
    /// Control state.
    pub state: usize,
    /// Extended marking.
    pub marking: Marking,
    /// Parent node id in the Karp–Miller tree (`None` for the root).
    pub parent: Option<usize>,
    /// The index (into the VASS action list) of the action taken from the
    /// parent.
    pub via_action: Option<usize>,
}

/// The Karp–Miller coverability graph of a VASS from a given initial control
/// state (with all counters initially zero).
///
/// Nodes with identical `(state, marking)` pairs are canonicalized; edges
/// record the underlying VASS action so that cycle effects can be computed
/// exactly.
#[derive(Clone, Debug)]
pub struct CoverabilityGraph {
    nodes: Vec<Node>,
    /// Edges `(from_node, action_index, to_node)`.
    edges: Vec<(usize, usize, usize)>,
    /// Canonical node per `(state, marking)`.
    index: BTreeMap<(usize, Marking), usize>,
}

impl CoverabilityGraph {
    /// Builds the coverability graph of `vass` from `(init, 0̄)`.
    pub fn build(vass: &Vass, init: usize) -> Self {
        Self::build_inner(vass, init, usize::MAX, None)
    }

    /// Like [`CoverabilityGraph::build`], but never creates more than
    /// `max_nodes` nodes (the cap is enforced at interning time, so the
    /// documented bound holds exactly — not merely up to the out-degree of
    /// the node being expanded). A truncated graph under-approximates
    /// reachability (everything it contains is genuinely coverable); callers
    /// that rely on exhaustiveness should pass `usize::MAX`.
    pub fn build_capped(vass: &Vass, init: usize, max_nodes: usize) -> Self {
        Self::build_inner(vass, init, max_nodes, None)
    }

    /// Like [`CoverabilityGraph::build`], but stops as soon as a node with
    /// control state `target` is interned. The resulting graph is partial:
    /// it is only useful for answering "is `target` coverable?" and for
    /// extracting a witness path to `target` ([`Self::path_to_state`]) —
    /// both of which only need the prefix built so far.
    pub fn build_to_state(vass: &Vass, init: usize, target: usize) -> Self {
        Self::build_inner(vass, init, usize::MAX, Some(target))
    }

    fn build_inner(
        vass: &Vass,
        init: usize,
        max_nodes: usize,
        stop_at: Option<usize>,
    ) -> Self {
        let mut graph = CoverabilityGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            index: BTreeMap::new(),
        };
        if max_nodes == 0 {
            return graph;
        }
        // Per-state adjacency, computed once: expansion below touches only
        // the actions leaving the popped state instead of scanning the whole
        // action list per node.
        let actions_by_state = vass.adjacency();
        let root_marking = vec![0u64; vass.dim];
        let root = graph
            .intern(init, root_marking, None, None, max_nodes)
            .expect("the first intern is always under a non-zero cap");
        if stop_at == Some(init) {
            return graph;
        }
        let mut worklist = VecDeque::from([root]);
        let mut expanded = vec![false; 1];

        while let Some(node_id) = worklist.pop_front() {
            if expanded[node_id] {
                continue;
            }
            expanded[node_id] = true;
            let (state, marking) = {
                let n = &graph.nodes[node_id];
                (n.state, n.marking.clone())
            };
            for &action_idx in &actions_by_state[state] {
                let action = &vass.actions[action_idx];
                let Some(mut next) = add(&marking, &action.delta) else {
                    continue;
                };
                // ω-acceleration: if some ancestor (in the Karp–Miller tree)
                // has the same control state and a marking strictly dominated
                // by `next`, the strictly larger coordinates can be pumped.
                let mut ancestor = Some(node_id);
                while let Some(a) = ancestor {
                    let anc = &graph.nodes[a];
                    if anc.state == action.to && leq(&anc.marking, &next) && anc.marking != next {
                        for (av, nv) in anc.marking.iter().zip(next.iter_mut()) {
                            if *av < *nv {
                                *nv = OMEGA;
                            }
                        }
                    }
                    ancestor = anc.parent;
                }
                let existed = graph.index.contains_key(&(action.to, next.clone()));
                let Some(target) =
                    graph.intern(action.to, next, Some(node_id), Some(action_idx), max_nodes)
                else {
                    // Interning would exceed the node cap: drop the edge and
                    // keep expanding among the existing nodes.
                    continue;
                };
                graph.edges.push((node_id, action_idx, target));
                if !existed {
                    expanded.push(false);
                    worklist.push_back(target);
                    if stop_at == Some(action.to) {
                        return graph;
                    }
                }
            }
        }
        graph
    }

    /// Returns the canonical node for `(state, marking)`, creating it unless
    /// that would push the node count beyond `max_nodes`.
    fn intern(
        &mut self,
        state: usize,
        marking: Marking,
        parent: Option<usize>,
        via_action: Option<usize>,
        max_nodes: usize,
    ) -> Option<usize> {
        if let Some(&id) = self.index.get(&(state, marking.clone())) {
            return Some(id);
        }
        if self.nodes.len() >= max_nodes {
            return None;
        }
        let id = self.nodes.len();
        self.nodes.push(Node {
            state,
            marking: marking.clone(),
            parent,
            via_action,
        });
        self.index.insert((state, marking), id);
        Some(id)
    }

    /// Iterates over the nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// Number of nodes (a cost metric reported by the benchmarks).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Iterates over the edges as `(from_node, action_index, to_node)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        self.edges.iter().copied()
    }

    /// A sequence of VASS action indices leading from the root to some node
    /// with the given control state, if one exists.
    pub fn path_to_state(&self, target: usize) -> Option<Vec<usize>> {
        let node = self.nodes.iter().position(|n| n.state == target)?;
        Some(self.path_to_node(node))
    }

    /// The VASS action sequence from the root to the given node, following
    /// the Karp–Miller tree's parent chain (empty for the root). This is the
    /// run *prefix* a counterexample report renders in front of a blocking
    /// point or pump cycle.
    ///
    /// # Panics
    /// Panics if `node` is out of range.
    pub fn path_to_node(&self, node: usize) -> Vec<usize> {
        let mut path = Vec::new();
        let mut current = node;
        while let Some(parent) = self.nodes[current].parent {
            path.push(
                self.nodes[current]
                    .via_action
                    .expect("non-root nodes record their incoming action"),
            );
            current = parent;
        }
        path.reverse();
        path
    }

    /// Decides whether a cycle (closed walk) through some node with control
    /// state `target` has a componentwise non-negative summed action effect —
    /// the witness for state repeated reachability (Lemma 21's lasso).
    ///
    /// The decision is exact and unbounded: it reduces to circulation
    /// feasibility per strongly connected component, solved by exact rational
    /// linear programming with Kosaraju–Sullivan support refinement for
    /// connectivity (see [`crate::cycle`]). The cycle-length cap of the old
    /// depth-first search — which silently missed lassos longer than the cap —
    /// is gone.
    pub fn nonneg_cycle_through(&self, vass: &Vass, target: usize) -> bool {
        self.nonneg_cycle_through_pred(vass, &|s| s == target)
    }

    /// Like [`CoverabilityGraph::nonneg_cycle_through`], but accepts any
    /// control state satisfying the predicate (used by the verifier, where
    /// "accepting" is a property of the encoded Büchi component).
    pub fn nonneg_cycle_through_pred(&self, vass: &Vass, target: &dyn Fn(usize) -> bool) -> bool {
        cycle::nonneg_cycle_exists(self.nodes.len(), vass.dim, &self.delta_edges(vass), &|node| {
            target(self.nodes[node].state)
        })
    }

    /// Decides [`CoverabilityGraph::nonneg_cycle_through_pred`] and
    /// materializes the pump-cycle witness in one pipeline run
    /// ([`cycle::nonneg_cycle_search`]): on
    /// [`cycle::CycleSearch::Witness`], the walk comes back as
    /// coverability-graph edges `(from_node, action_index, to_node)` in
    /// traversal order, starting (and ending) at a predicate node, with
    /// componentwise non-negative summed action effect — the cycle part of a
    /// lasso counterexample, repeatable forever. The decision itself is
    /// exact regardless of the `max_len` materialization cap.
    pub fn nonneg_cycle_search_through_pred(
        &self,
        vass: &Vass,
        target: &dyn Fn(usize) -> bool,
        max_len: usize,
    ) -> cycle::CycleSearch<(usize, usize, usize)> {
        cycle::nonneg_cycle_search(
            self.nodes.len(),
            vass.dim,
            &self.delta_edges(vass),
            &|node| target(self.nodes[node].state),
            max_len,
        )
        .map_edges(|i| self.edges[i])
    }

    /// The walk of [`CoverabilityGraph::nonneg_cycle_search_through_pred`],
    /// or `None` when no cycle exists or none could be materialized within
    /// `max_len` traversals.
    pub fn nonneg_cycle_witness_through_pred(
        &self,
        vass: &Vass,
        target: &dyn Fn(usize) -> bool,
        max_len: usize,
    ) -> Option<Vec<(usize, usize, usize)>> {
        match self.nonneg_cycle_search_through_pred(vass, target, max_len) {
            cycle::CycleSearch::Witness(walk) => Some(walk),
            _ => None,
        }
    }

    /// The graph's edges as [`DeltaEdge`]s over coverability nodes, with each
    /// edge carrying its underlying VASS action effect.
    fn delta_edges(&self, vass: &Vass) -> Vec<DeltaEdge> {
        self.edges
            .iter()
            .map(|&(from, action, to)| DeltaEdge {
                from,
                to,
                delta: vass.actions[action].delta.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceleration_produces_omega() {
        let mut v = Vass::new(1, 1);
        v.add_action(0, vec![1], 0);
        let g = CoverabilityGraph::build(&v, 0);
        assert!(g.nodes().any(|n| n.marking == vec![OMEGA]));
        // The graph is finite despite the unbounded counter.
        assert!(g.node_count() <= 3);
    }

    #[test]
    fn negative_moves_from_zero_are_blocked() {
        let mut v = Vass::new(2, 1);
        v.add_action(0, vec![-1], 1);
        let g = CoverabilityGraph::build(&v, 0);
        assert!(g.nodes().all(|n| n.state != 1));
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn path_extraction_reaches_target() {
        let mut v = Vass::new(3, 1);
        v.add_action(0, vec![2], 1);
        v.add_action(1, vec![-1], 2);
        let g = CoverabilityGraph::build(&v, 0);
        let path = g.path_to_state(2).unwrap();
        assert_eq!(path.len(), 2);
        assert!(g.path_to_state(0).unwrap().is_empty());
    }

    #[test]
    fn two_dimensional_markings() {
        // Transfer loop: (+1,-1) needs the second counter, which never has
        // tokens, so only the producing action on dim 0 fires.
        let mut v = Vass::new(1, 2);
        v.add_action(0, vec![1, 0], 0);
        v.add_action(0, vec![1, -1], 0);
        let g = CoverabilityGraph::build(&v, 0);
        assert!(g.nodes().any(|n| n.marking[0] == OMEGA));
        assert!(g.nodes().all(|n| n.marking[1] != OMEGA));
    }

    #[test]
    fn nonneg_cycle_detection_respects_sign() {
        // One node, two self loops: -1 and +1. A non-negative cycle exists
        // (+1, or +1 then -1).
        let mut v = Vass::new(1, 1);
        v.add_action(0, vec![1], 0);
        v.add_action(0, vec![-1], 0);
        let g = CoverabilityGraph::build(&v, 0);
        assert!(g.nonneg_cycle_through(&v, 0));

        // Only a decrementing loop: no non-negative cycle, even though the
        // coverability graph has a cycle at ω.
        let mut v2 = Vass::new(2, 1);
        v2.add_action(0, vec![1], 0);
        v2.add_action(0, vec![0], 1);
        v2.add_action(1, vec![-1], 1);
        let g2 = CoverabilityGraph::build(&v2, 0);
        assert!(g2.nonneg_cycle_through(&v2, 0));
        assert!(!g2.nonneg_cycle_through(&v2, 1));
    }

    #[test]
    fn cycle_witness_and_prefix_reconstruct_a_lasso() {
        // 0 --(+1)--> 1 with a balanced two-edge cycle 1 ⇄ 2: the lasso
        // through state 1 has a one-action prefix and a two-edge pump cycle.
        let mut v = Vass::new(3, 1);
        v.add_action(0, vec![1], 1);
        v.add_action(1, vec![-1], 2);
        v.add_action(2, vec![1], 1);
        let g = CoverabilityGraph::build(&v, 0);
        assert!(g.nonneg_cycle_through(&v, 1));
        let walk = g
            .nonneg_cycle_witness_through_pred(&v, &|s| s == 1, 10_000)
            .expect("lasso exists");
        // Chained and closed over coverability nodes, starting at state 1.
        for (k, &(_, _, to)) in walk.iter().enumerate() {
            assert_eq!(to, walk[(k + 1) % walk.len()].0);
        }
        let (start, _, _) = walk[0];
        assert_eq!(g.nodes[start].state, 1);
        // The prefix to the cycle's start replays to its control state.
        let prefix = g.path_to_node(start);
        assert_eq!(prefix.len(), 1);
        assert_eq!(v.actions[prefix[0]].to, 1);
        // Summed effect of the cycle is non-negative.
        let sum: i64 = walk.iter().map(|&(_, a, _)| v.actions[a].delta[0]).sum();
        assert!(sum >= 0);
    }

    #[test]
    fn node_cap_is_enforced_exactly() {
        // A fan-out of 8 actions from the root: the old pop-time check let
        // one expansion overshoot the cap by its out-degree; the cap must now
        // hold exactly for every value.
        let mut v = Vass::new(9, 1);
        for to in 1..9 {
            v.add_action(0, vec![1], to);
        }
        for cap in 0..=10usize {
            let g = CoverabilityGraph::build_capped(&v, 0, cap);
            assert!(
                g.node_count() <= cap,
                "cap {cap} overshot: {} nodes",
                g.node_count()
            );
        }
        // Uncapped, the graph has the root plus all eight targets.
        assert_eq!(CoverabilityGraph::build(&v, 0).node_count(), 9);
    }

    #[test]
    fn build_to_state_stops_early() {
        // A chain 0 → 1 → … with a huge branching side-structure after the
        // target: stopping at state 1 must not explore the rest.
        let mut v = Vass::new(12, 2);
        v.add_action(0, vec![1, 0], 1);
        for s in 1..11 {
            v.add_action(s, vec![0, 1], s + 1);
            v.add_action(s, vec![1, 1], s);
        }
        let g = CoverabilityGraph::build_to_state(&v, 0, 1);
        assert!(g.nodes().any(|n| n.state == 1));
        let full = CoverabilityGraph::build(&v, 0);
        assert!(g.node_count() < full.node_count());
        // The partial graph still yields a witness path.
        assert_eq!(g.path_to_state(1).unwrap().len(), 1);
    }
}
