//! Exact detection of componentwise non-negative cycles.
//!
//! The repeated-reachability check of Lemma 21 asks whether the coverability
//! graph contains a closed walk through a target node whose summed action
//! effect is componentwise non-negative. The previous implementation searched
//! for such walks by depth-first enumeration with dominance pruning — correct
//! only up to its configured length cap, and exponential in practice (the
//! EXP-F3 `d = 5` instance ran for minutes). This module decides the same
//! question exactly, in polynomial time, via a circulation characterization:
//!
//! **Characterization.** A closed walk through a target node with
//! componentwise non-negative total effect exists iff some edge set `S`
//! inside a single strongly connected component admits rational edge
//! multiplicities `x_e > 0` for `e ∈ S` such that
//!
//! 1. flow is conserved at every node (`Σ in = Σ out`),
//! 2. the summed effect `Σ x_e·δ_e` is componentwise `≥ 0`,
//! 3. some edge leaving a target node carries flow, and
//! 4. `S` is weakly connected.
//!
//! *Soundness:* scale `x` to integers and duplicate each edge `x_e` times;
//! conservation makes the multigraph balanced, so its weakly connected
//! support carries an Eulerian circuit — a single closed walk through the
//! target with effect `Σ x_e·δ_e ≥ 0`. *Completeness:* the edge-usage counts
//! of a witnessing walk satisfy 1–4, and every edge of a closed walk lies in
//! one SCC.
//!
//! Conditions 1–3 are rational linear feasibility, decided by the exact
//! simplex of `has_arith::lp`. Condition 4 is restored in the style of
//! Kosaraju–Sullivan's zero-cycle algorithm: compute the *maximal support*
//! (the set of edges carrying flow in some feasible circulation — a single
//! feasible point realizes all of them at once, since the constraints are
//! closed under addition); if it is weakly connected, accept; otherwise any
//! connected witness lies entirely inside one weak component, so recurse into
//! each component containing a target. Each recursion strictly shrinks the
//! edge set, giving polynomially many LP calls overall.

use has_arith::{LpCmp, LpOutcome, LpProblem, Rational};
use std::collections::BTreeMap;

/// An edge of a cycle-detection instance: `from → to` with counter effect
/// `delta`. The delta is *borrowed* (from the VASS action table, for
/// coverability-graph edges), so building an instance over E edges copies
/// no vectors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeltaEdge<'a> {
    /// Source node.
    pub from: usize,
    /// Target node.
    pub to: usize,
    /// Counter effect of traversing the edge.
    pub delta: &'a [i64],
}

/// Tarjan's strongly-connected-components algorithm (iterative), traversing
/// a CSR adjacency built in two counting passes (no per-node allocations).
///
/// Returns one component id per node (components are numbered in reverse
/// topological order) and the number of components.
pub fn strongly_connected_components(
    num_nodes: usize,
    edges: &[(usize, usize)],
) -> (Vec<usize>, usize) {
    const UNSET: usize = usize::MAX;
    // CSR adjacency: `targets[offsets[v]..offsets[v+1]]` are v's successors,
    // in edge-list order (the counting sort is stable).
    let mut offsets = vec![0u32; num_nodes + 1];
    for &(from, _) in edges {
        offsets[from + 1] += 1;
    }
    for v in 0..num_nodes {
        offsets[v + 1] += offsets[v];
    }
    let mut targets = vec![0u32; edges.len()];
    let mut cursor = offsets.clone();
    for &(from, to) in edges {
        targets[cursor[from] as usize] = to as u32;
        cursor[from] += 1;
    }
    let degree = |v: usize| (offsets[v + 1] - offsets[v]) as usize;
    let mut index = vec![UNSET; num_nodes];
    let mut low = vec![0usize; num_nodes];
    let mut comp = vec![UNSET; num_nodes];
    let mut on_stack = vec![false; num_nodes];
    let mut stack: Vec<usize> = Vec::new();
    let mut call: Vec<(usize, usize)> = Vec::new();
    let mut next_index = 0usize;
    let mut comp_count = 0usize;

    for root in 0..num_nodes {
        if index[root] != UNSET {
            continue;
        }
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        call.push((root, 0));
        while let Some(&(v, child)) = call.last() {
            if child < degree(v) {
                call.last_mut().expect("non-empty call stack").1 += 1;
                let w = targets[offsets[v] as usize + child] as usize;
                if index[w] == UNSET {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    loop {
                        let w = stack.pop().expect("SCC stack holds the root");
                        on_stack[w] = false;
                        comp[w] = comp_count;
                        if w == v {
                            break;
                        }
                    }
                    comp_count += 1;
                }
            }
        }
    }
    (comp, comp_count)
}

/// Decides whether the graph contains a closed walk through a node satisfying
/// `is_target` whose summed `delta` is componentwise non-negative.
pub fn nonneg_cycle_exists(
    num_nodes: usize,
    dim: usize,
    edges: &[DeltaEdge<'_>],
    is_target: &dyn Fn(usize) -> bool,
) -> bool {
    if edges.is_empty() {
        return false;
    }
    if monotone_cycle(num_nodes, edges, is_target).is_some() {
        return true;
    }
    for es in target_components(num_nodes, edges, is_target) {
        if component_witness(dim, edges, es, is_target).is_some() {
            return true;
        }
    }
    false
}

/// Sufficient fast path shared by the exists/search entry points: a closed
/// walk through a target that uses only *monotone* edges (componentwise
/// non-negative `delta`) is already a witness — each edge contributes `≥ 0`,
/// so the sum does too. Decided by SCC reachability over the monotone
/// subgraph, `O(V + E·dim)`, no LP. This is the common shape on
/// ω-saturated coverability graphs (pump loops repeat increments), where
/// the circulation machinery otherwise grinds through huge strongly
/// connected components; a miss here costs one SCC pass and falls through
/// to the exact decision.
///
/// Returns a materialized walk (edge indices, starting at a target) — the
/// shortest monotone cycle through the first qualifying target, found by
/// BFS inside its component.
fn monotone_cycle(
    num_nodes: usize,
    edges: &[DeltaEdge<'_>],
    is_target: &dyn Fn(usize) -> bool,
) -> Option<Vec<usize>> {
    let monotone: Vec<usize> = edges
        .iter()
        .enumerate()
        .filter(|(_, e)| e.delta.iter().all(|&d| d >= 0))
        .map(|(i, _)| i)
        .collect();
    if monotone.is_empty() {
        return None;
    }
    let pairs: Vec<(usize, usize)> = monotone
        .iter()
        .map(|&i| (edges[i].from, edges[i].to))
        .collect();
    let (comp, _) = strongly_connected_components(num_nodes, &pairs);
    // A monotone edge t → v with comp[t] == comp[v] and t a target closes
    // into a cycle through t (self-loops included).
    let &first = monotone.iter().find(|&&i| {
        let e = &edges[i];
        is_target(e.from) && comp[e.from] == comp[e.to]
    })?;
    let target = edges[first].from;
    if edges[first].to == target {
        return Some(vec![first]);
    }
    // BFS from the edge's head back to the target inside the component,
    // tracking the incoming monotone edge per node.
    let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); num_nodes];
    for &i in &monotone {
        let e = &edges[i];
        if comp[e.from] == comp[target] && comp[e.to] == comp[target] {
            adjacency[e.from].push(i);
        }
    }
    let mut via = vec![usize::MAX; num_nodes];
    let mut queue = std::collections::VecDeque::from([edges[first].to]);
    via[edges[first].to] = first;
    while let Some(v) = queue.pop_front() {
        for &i in &adjacency[v] {
            let to = edges[i].to;
            if via[to] == usize::MAX {
                via[to] = i;
                if to == target {
                    let mut walk = Vec::new();
                    let mut cur = target;
                    while walk.is_empty() || cur != edges[first].to {
                        let i = via[cur];
                        walk.push(i);
                        cur = edges[i].from;
                    }
                    walk.push(first);
                    walk.reverse();
                    return Some(walk);
                }
                queue.push_back(to);
            }
        }
    }
    // The SCC guarantees a path exists; unreachable in practice, but degrade
    // to the exact decision rather than panic.
    None
}

/// The outcome of [`nonneg_cycle_search`]: the decision *and* (when it can
/// be materialized) the witnessing closed walk, from one pipeline run.
///
/// Generic over the edge representation `E` so wrappers can re-express the
/// walk in their own edge space ([`CycleSearch::map_edges`]) — the search
/// itself produces indices into the searched edge list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CycleSearch<E = usize> {
    /// No closed walk through a target with componentwise non-negative
    /// summed effect exists. Exact and unbounded, like
    /// [`nonneg_cycle_exists`].
    None,
    /// A witness exists, materialized as a walk of edges: consecutive edges
    /// share a node, the walk is closed, it starts (and ends) at a node
    /// satisfying the target predicate, and its summed `delta` is
    /// componentwise non-negative — a concrete "pump cycle" a
    /// counterexample report can show.
    Witness(Vec<E>),
    /// A witness exists (the decision is still exact), but materializing it
    /// would exceed the caller's traversal cap or overflow the integer
    /// scaling of the circulation.
    ExceedsCap,
}

impl<E> CycleSearch<E> {
    /// Whether a witnessing walk exists (materialized or not) — always
    /// equal to what [`nonneg_cycle_exists`] answers on the same input.
    pub fn exists(&self) -> bool {
        !matches!(self, CycleSearch::None)
    }

    /// Re-expresses a materialized walk's edges through `f`, preserving the
    /// other verdicts.
    pub fn map_edges<T>(self, f: impl FnMut(E) -> T) -> CycleSearch<T> {
        match self {
            CycleSearch::None => CycleSearch::None,
            CycleSearch::ExceedsCap => CycleSearch::ExceedsCap,
            CycleSearch::Witness(walk) => {
                CycleSearch::Witness(walk.into_iter().map(f).collect())
            }
        }
    }
}

/// Decides the query of [`nonneg_cycle_exists`] and materializes the
/// witnessing closed walk in the same pipeline run.
///
/// The walk is built from the witnessing circulation by scaling the rational
/// edge multiplicities to integers and threading an Eulerian circuit through
/// the resulting balanced multigraph; its length is the scaled total flow,
/// so materialization is bounded by `max_len` edge traversals
/// ([`CycleSearch::ExceedsCap`] past the bound — the *decision* is exact
/// either way). Callers that only need the boolean should use
/// [`nonneg_cycle_exists`], which skips the materialization entirely.
pub fn nonneg_cycle_search(
    num_nodes: usize,
    dim: usize,
    edges: &[DeltaEdge<'_>],
    is_target: &dyn Fn(usize) -> bool,
    max_len: usize,
) -> CycleSearch {
    if edges.is_empty() {
        return CycleSearch::None;
    }
    if let Some(walk) = monotone_cycle(num_nodes, edges, is_target) {
        // The monotone walk is itself a valid witness; past the caller's cap
        // the decision stands and only the rendering is withheld.
        return if walk.len() <= max_len {
            CycleSearch::Witness(walk)
        } else {
            CycleSearch::ExceedsCap
        };
    }
    let mut admitted = false;
    for es in target_components(num_nodes, edges, is_target) {
        if let Some((sub, point)) = component_witness(dim, edges, es, is_target) {
            if let Some(walk) = eulerian_walk(edges, &sub, &point, is_target, max_len) {
                return CycleSearch::Witness(walk);
            }
            // This component's witness is too large to materialize; another
            // component may still yield a small one.
            admitted = true;
        }
    }
    if admitted {
        CycleSearch::ExceedsCap
    } else {
        CycleSearch::None
    }
}

/// Like [`nonneg_cycle_exists`], but returns the witnessing closed walk of
/// [`nonneg_cycle_search`], or `None` when no witness exists **or** none
/// could be materialized within `max_len` traversals.
pub fn nonneg_cycle_witness(
    num_nodes: usize,
    dim: usize,
    edges: &[DeltaEdge<'_>],
    is_target: &dyn Fn(usize) -> bool,
    max_len: usize,
) -> Option<Vec<usize>> {
    match nonneg_cycle_search(num_nodes, dim, edges, is_target, max_len) {
        CycleSearch::Witness(walk) => Some(walk),
        CycleSearch::None | CycleSearch::ExceedsCap => None,
    }
}

/// The per-SCC edge sets that contain at least one edge leaving a target
/// node (a witnessing walk leaves its target at least once, and lies within
/// one strongly connected component).
fn target_components(
    num_nodes: usize,
    edges: &[DeltaEdge<'_>],
    is_target: &dyn Fn(usize) -> bool,
) -> Vec<Vec<usize>> {
    let pairs: Vec<(usize, usize)> = edges.iter().map(|e| (e.from, e.to)).collect();
    let (comp, comp_count) = strongly_connected_components(num_nodes, &pairs);
    let mut by_comp: Vec<Vec<usize>> = vec![Vec::new(); comp_count];
    for (i, e) in edges.iter().enumerate() {
        if comp[e.from] == comp[e.to] {
            by_comp[comp[e.from]].push(i);
        }
    }
    by_comp
        .into_iter()
        .filter(|es| es.iter().any(|&i| is_target(edges[i].from)))
        .collect()
}

/// Kosaraju–Sullivan-style support refinement within one SCC's edge set.
///
/// Fast path: *any* feasible circulation whose (accumulated) support is
/// already weakly connected is a complete witness (the target-outflow row
/// guarantees it touches a target), so most queries resolve with a single
/// Phase-I solve. Only a disconnected support triggers the maximal-support
/// computation and the per-component recursion.
///
/// On success, returns the edge subset searched together with a feasible
/// circulation over it whose support is weakly connected — the raw material
/// [`nonneg_cycle_witness`] turns into a concrete closed walk.
fn component_witness(
    dim: usize,
    edges: &[DeltaEdge<'_>],
    initial: Vec<usize>,
    is_target: &dyn Fn(usize) -> bool,
) -> Option<(Vec<usize>, Vec<Rational>)> {
    let mut work = vec![initial];
    while let Some(es) = work.pop() {
        match maximal_support(dim, edges, &es, is_target) {
            Support::Infeasible => {}
            Support::ConnectedWitness(point) => return Some((es, point)),
            Support::Disconnected(support) => {
                // A connected witness has connected support inside the
                // maximal support, hence inside exactly one of its weak
                // components.
                for c in weak_components(edges, &support) {
                    if c.iter().any(|&i| is_target(edges[i].from)) {
                        work.push(c);
                    }
                }
            }
        }
    }
    None
}

enum Support {
    /// No circulation through a target exists over this edge set.
    Infeasible,
    /// Some circulation has weakly connected support: a witness exists, and
    /// this point (indexed by position in the searched edge subset) realizes
    /// it.
    ConnectedWitness(Vec<Rational>),
    /// The maximal support (every edge positive in some circulation); its
    /// weak components are more than one.
    Disconnected(Vec<usize>),
}

/// Computes the support structure of the circulations over `es`.
///
/// The maximal support is found by repeatedly maximizing the total flow on
/// the edges not yet known to be supportable: an optimum of zero proves the
/// remainder is zero in *every* solution (all variables are non-negative),
/// while any positive or unbounded outcome enlarges the known support. The
/// constraint set is closed under addition and upward scaling, so the
/// accumulated *sum* of the points seen along the way is itself a feasible
/// circulation realizing the union of their supports — the sum is what a
/// connected verdict returns, and every intermediate sum with connected
/// support short-circuits the computation.
fn maximal_support(
    dim: usize,
    edges: &[DeltaEdge<'_>],
    es: &[usize],
    is_target: &dyn Fn(usize) -> bool,
) -> Support {
    let Some(lp) = circulation_lp(dim, edges, es, is_target) else {
        return Support::Infeasible;
    };
    let Some(first) = lp.feasible_point() else {
        return Support::Infeasible;
    };
    let mut supported = vec![false; es.len()];
    let mut accum = vec![Rational::ZERO; es.len()];
    // Adds a circulation to the accumulated sum and reports whether the
    // accumulated support (exactly the positive coordinates of `accum`,
    // since every point is componentwise non-negative) is weakly connected.
    let absorb = |supported: &mut Vec<bool>, accum: &mut Vec<Rational>, point: &[Rational]| -> bool {
        for (p, v) in point.iter().enumerate() {
            if v.is_positive() {
                supported[p] = true;
                accum[p] += *v;
            }
        }
        let support: Vec<usize> = supported
            .iter()
            .enumerate()
            .filter(|(_, s)| **s)
            .map(|(p, _)| es[p])
            .collect();
        weak_components(edges, &support).len() == 1
    };
    if absorb(&mut supported, &mut accum, &first) {
        return Support::ConnectedWitness(accum);
    }
    loop {
        let objective: Vec<(usize, Rational)> = (0..es.len())
            .filter(|&p| !supported[p])
            .map(|p| (p, Rational::ONE))
            .collect();
        if objective.is_empty() {
            break;
        }
        let point = match lp.maximize(&objective) {
            LpOutcome::Infeasible => unreachable!("a feasible point was already found"),
            LpOutcome::Optimal { value, point } => {
                if value.is_zero() {
                    // Every remaining edge is zero in every circulation.
                    break;
                }
                point
            }
            LpOutcome::Unbounded { point } => point,
        };
        if absorb(&mut supported, &mut accum, &point) {
            return Support::ConnectedWitness(accum);
        }
    }
    let support: Vec<usize> = es
        .iter()
        .enumerate()
        .filter(|(p, _)| supported[*p])
        .map(|(_, &i)| i)
        .collect();
    if weak_components(edges, &support).len() == 1 {
        // The accumulated sum realizes the whole maximal support at once.
        return Support::ConnectedWitness(accum);
    }
    Support::Disconnected(support)
}

/// Turns a connected circulation into a concrete closed walk: scale the
/// rational multiplicities to integers, duplicate each edge that many times,
/// and thread an Eulerian circuit through the resulting multigraph (balanced
/// by flow conservation; a balanced, weakly connected directed multigraph is
/// strongly connected, so Hierholzer's algorithm always closes the circuit).
///
/// Returns the walk as indices into `edges`, starting at a target node.
/// `None` if the scaled walk would exceed `max_len` traversals or the
/// integer scaling overflows `i128`.
fn eulerian_walk(
    edges: &[DeltaEdge<'_>],
    es: &[usize],
    point: &[Rational],
    is_target: &dyn Fn(usize) -> bool,
    max_len: usize,
) -> Option<Vec<usize>> {
    fn gcd(a: i128, b: i128) -> i128 {
        let (mut a, mut b) = (a.abs(), b.abs());
        while b != 0 {
            (a, b) = (b, a % b);
        }
        a.max(1)
    }
    // Least common multiple of the denominators of the positive coordinates.
    let mut scale: i128 = 1;
    for v in point {
        if v.is_positive() {
            let d = v.denominator();
            scale = scale.checked_mul(d / gcd(scale, d))?;
        }
    }
    // Integer multiplicity per position; total bounded by `max_len`.
    let mut mult: Vec<usize> = Vec::with_capacity(es.len());
    let mut total: usize = 0;
    for v in point {
        let m = if v.is_positive() {
            let scaled = v.numerator().checked_mul(scale / v.denominator())?;
            usize::try_from(scaled).ok()?
        } else {
            0
        };
        total = total.checked_add(m)?;
        if total > max_len {
            return None;
        }
        mult.push(m);
    }
    // Start at a target node that the circulation actually leaves.
    let start = es
        .iter()
        .enumerate()
        .find(|(p, &i)| mult[*p] > 0 && is_target(edges[i].from))
        .map(|(_, &i)| edges[i].from)?;
    // Hierholzer: per-node out-edge lists with remaining-use counters; edges
    // are recorded on backtrack and reversed, the classic iterative form.
    let mut adj: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (p, &i) in es.iter().enumerate() {
        if mult[p] > 0 {
            adj.entry(edges[i].from).or_default().push(p);
        }
    }
    let mut remaining = mult;
    let mut cursor: BTreeMap<usize, usize> = BTreeMap::new();
    let mut stack: Vec<(usize, Option<usize>)> = vec![(start, None)];
    let mut walk_rev: Vec<usize> = Vec::with_capacity(total);
    while let Some(&(v, via)) = stack.last() {
        let next = adj.get(&v).and_then(|list| {
            let c = cursor.entry(v).or_insert(0);
            while *c < list.len() && remaining[list[*c]] == 0 {
                *c += 1;
            }
            (*c < list.len()).then(|| list[*c])
        });
        match next {
            Some(p) => {
                remaining[p] -= 1;
                stack.push((edges[es[p]].to, Some(p)));
            }
            None => {
                stack.pop();
                if let Some(p) = via {
                    walk_rev.push(p);
                }
            }
        }
    }
    if walk_rev.len() != total {
        // Disconnected support — cannot happen for a ConnectedWitness point,
        // but degrade gracefully rather than return a broken walk.
        return None;
    }
    walk_rev.reverse();
    Some(walk_rev.into_iter().map(|p| es[p]).collect())
}

/// Builds the circulation feasibility program over the edge subset `es`:
/// one non-negative multiplicity per edge, conservation at every incident
/// node, componentwise non-negative summed effect, and at least one unit of
/// flow out of the target nodes. Returns `None` if no edge leaves a target
/// (the program would be trivially infeasible).
fn circulation_lp(
    dim: usize,
    edges: &[DeltaEdge<'_>],
    es: &[usize],
    is_target: &dyn Fn(usize) -> bool,
) -> Option<LpProblem> {
    let mut lp = LpProblem::new(es.len());
    // Conservation: per incident node, Σ incoming − Σ outgoing = 0.
    let mut balance: BTreeMap<usize, Vec<(usize, Rational)>> = BTreeMap::new();
    for (pos, &i) in es.iter().enumerate() {
        let e = &edges[i];
        balance
            .entry(e.to)
            .or_default()
            .push((pos, Rational::ONE));
        balance
            .entry(e.from)
            .or_default()
            .push((pos, -Rational::ONE));
    }
    for coeffs in balance.values() {
        lp.add_constraint(coeffs, LpCmp::Eq, Rational::ZERO);
    }
    // Componentwise non-negative summed effect. Coordinates no edge touches
    // contribute no constraint.
    for c in 0..dim {
        let coeffs: Vec<(usize, Rational)> = es
            .iter()
            .enumerate()
            .filter(|(_, &i)| edges[i].delta[c] != 0)
            .map(|(pos, &i)| (pos, Rational::from_int(edges[i].delta[c])))
            .collect();
        if !coeffs.is_empty() {
            lp.add_constraint(&coeffs, LpCmp::Ge, Rational::ZERO);
        }
    }
    // Positive flow through a target node.
    let outflow: Vec<(usize, Rational)> = es
        .iter()
        .enumerate()
        .filter(|(_, &i)| is_target(edges[i].from))
        .map(|(pos, _)| (pos, Rational::ONE))
        .collect();
    if outflow.is_empty() {
        return None;
    }
    lp.add_constraint(&outflow, LpCmp::Ge, Rational::ONE);
    Some(lp)
}

/// Weak connected components of the subgraph spanned by `support`, returned
/// as groups of edge indices.
fn weak_components(edges: &[DeltaEdge<'_>], support: &[usize]) -> Vec<Vec<usize>> {
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    // Iterative two-pass find with path compression: supports can be as
    // large as an SCC's whole edge set, so recursion depth must not scale
    // with the parent-chain length.
    fn find(parent: &mut BTreeMap<usize, usize>, v: usize) -> usize {
        let mut root = v;
        loop {
            let p = *parent.entry(root).or_insert(root);
            if p == root {
                break;
            }
            root = p;
        }
        let mut cur = v;
        while cur != root {
            let next = parent[&cur];
            parent.insert(cur, root);
            cur = next;
        }
        root
    }
    for &i in support {
        let a = find(&mut parent, edges[i].from);
        let b = find(&mut parent, edges[i].to);
        if a != b {
            parent.insert(a, b);
        }
    }
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for &i in support {
        let root = find(&mut parent, edges[i].from);
        groups.entry(root).or_default().push(i);
    }
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(from: usize, to: usize, delta: &'static [i64]) -> DeltaEdge<'static> {
        DeltaEdge { from, to, delta }
    }

    #[test]
    fn sccs_of_a_cycle_and_a_tail() {
        // 0 → 1 → 2 → 0 is one SCC; 2 → 3 is a tail.
        let edges = [(0, 1), (1, 2), (2, 0), (2, 3)];
        let (comp, count) = strongly_connected_components(4, &edges);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_ne!(comp[2], comp[3]);
    }

    #[test]
    fn sccs_of_disjoint_self_loops() {
        let edges = [(0, 0), (2, 2)];
        let (comp, count) = strongly_connected_components(3, &edges);
        assert_eq!(count, 3);
        assert_ne!(comp[0], comp[2]);
        assert_ne!(comp[0], comp[1]);
    }

    #[test]
    fn positive_self_loop_is_a_lasso() {
        let edges = [edge(0, 0, &[1])];
        assert!(nonneg_cycle_exists(1, 1, &edges, &|n| n == 0));
    }

    #[test]
    fn negative_self_loop_is_not() {
        let edges = [edge(0, 0, &[-1])];
        assert!(!nonneg_cycle_exists(1, 1, &edges, &|n| n == 0));
    }

    #[test]
    fn mixed_self_loops_balance_out() {
        let edges = [edge(0, 0, &[-1]), edge(0, 0, &[1])];
        assert!(nonneg_cycle_exists(1, 1, &edges, &|n| n == 0));
    }

    #[test]
    fn balanced_two_cycle() {
        let edges = [edge(0, 1, &[1]), edge(1, 0, &[-1])];
        assert!(nonneg_cycle_exists(2, 1, &edges, &|n| n == 0));
        assert!(nonneg_cycle_exists(2, 1, &edges, &|n| n == 1));
    }

    #[test]
    fn target_outside_every_cycle() {
        // 0 → 1 with a positive loop at 1: no cycle through 0.
        let edges = [edge(0, 1, &[0]), edge(1, 1, &[1])];
        assert!(!nonneg_cycle_exists(2, 1, &edges, &|n| n == 0));
        assert!(nonneg_cycle_exists(2, 1, &edges, &|n| n == 1));
    }

    #[test]
    fn remote_gains_are_reachable_when_the_bridge_is_free() {
        // Target 0 has a draining loop; node 1 has a pumping loop; the
        // bridges cost nothing. A walk 0 → 1, pump, 1 → 0 nets +2.
        let edges = [
            edge(0, 0, &[-1]),
            edge(1, 1, &[2]),
            edge(0, 1, &[0]),
            edge(1, 0, &[0]),
        ];
        assert!(nonneg_cycle_exists(2, 1, &edges, &|n| n == 0));
    }

    #[test]
    fn support_refinement_rejects_disconnected_compensation() {
        // As above, but crossing the bridge burns a second counter that
        // nothing replenishes: the pumping loop at node 1 can compensate the
        // drain at node 0 only in a *disconnected* circulation, which is not
        // a walk. The naive LP (without connectivity refinement) is feasible
        // here; the refinement must reject it.
        let edges = [
            edge(0, 0, &[-1, 0]),
            edge(1, 1, &[2, 0]),
            edge(0, 1, &[0, -1]),
            edge(1, 0, &[0, 0]),
        ];
        assert!(!nonneg_cycle_exists(2, 2, &edges, &|n| n == 0));
        // Node 1's own loop is still a perfectly good lasso through 1.
        assert!(nonneg_cycle_exists(2, 2, &edges, &|n| n == 1));
    }

    #[test]
    fn long_cycles_are_found_without_any_length_cap() {
        // A 100-node ring with zero deltas: the only cycle has length 100,
        // far beyond the old default caps.
        let n = 100;
        let edges: Vec<DeltaEdge<'_>> = (0..n).map(|i| edge(i, (i + 1) % n, &[0])).collect();
        assert!(nonneg_cycle_exists(n, 1, &edges, &|s| s == 0));
    }

    #[test]
    fn amortized_pumping_across_the_cycle() {
        // Cycle 0 → 1 → 0 where one leg pays 3 and the other gains only 1,
        // but a +1 self-loop at node 1 can run as often as needed: the walk
        // 0 → 1, loop ×2, 1 → 0 is non-negative.
        let edges = [
            edge(0, 1, &[-3]),
            edge(1, 0, &[1]),
            edge(1, 1, &[1]),
        ];
        assert!(nonneg_cycle_exists(2, 1, &edges, &|n| n == 0));
    }

    #[test]
    fn zero_dimension_reduces_to_cycle_existence() {
        let edges = [edge(0, 1, &[]), edge(1, 0, &[])];
        assert!(nonneg_cycle_exists(2, 0, &edges, &|n| n == 0));
        let dag = [edge(0, 1, &[])];
        assert!(!nonneg_cycle_exists(2, 0, &dag, &|n| n == 0));
    }

    /// Asserts that `walk` is a valid witness for (`edges`, `is_target`):
    /// non-empty, consecutive edges chained, closed, through a target, with
    /// componentwise non-negative summed effect.
    fn assert_valid_walk(
        edges: &[DeltaEdge<'_>],
        walk: &[usize],
        dim: usize,
        is_target: &dyn Fn(usize) -> bool,
    ) {
        assert!(!walk.is_empty());
        let mut sum = vec![0i64; dim];
        for (k, &i) in walk.iter().enumerate() {
            let next = walk[(k + 1) % walk.len()];
            assert_eq!(
                edges[i].to, edges[next].from,
                "walk breaks between positions {k} and {}",
                (k + 1) % walk.len()
            );
            for (s, d) in sum.iter_mut().zip(edges[i].delta) {
                *s += d;
            }
        }
        assert!(sum.iter().all(|&s| s >= 0), "negative summed effect {sum:?}");
        assert!(
            walk.iter().any(|&i| is_target(edges[i].from)),
            "walk avoids every target"
        );
    }

    #[test]
    fn witness_matches_decision_on_the_basic_instances() {
        let cases: Vec<(usize, usize, Vec<DeltaEdge<'static>>)> = vec![
            (1, 1, vec![edge(0, 0, &[1])]),
            (1, 1, vec![edge(0, 0, &[-1])]),
            (1, 1, vec![edge(0, 0, &[-1]), edge(0, 0, &[1])]),
            (2, 1, vec![edge(0, 1, &[1]), edge(1, 0, &[-1])]),
            (2, 1, vec![edge(0, 1, &[0]), edge(1, 1, &[1])]),
            (
                2,
                2,
                vec![
                    edge(0, 0, &[-1, 0]),
                    edge(1, 1, &[2, 0]),
                    edge(0, 1, &[0, -1]),
                    edge(1, 0, &[0, 0]),
                ],
            ),
        ];
        for (nodes, dim, edges) in cases {
            for t in 0..nodes {
                let is_target = |n: usize| n == t;
                let exists = nonneg_cycle_exists(nodes, dim, &edges, &is_target);
                let witness = nonneg_cycle_witness(nodes, dim, &edges, &is_target, 10_000);
                assert_eq!(exists, witness.is_some(), "target {t}, edges {edges:?}");
                if let Some(walk) = witness {
                    assert_valid_walk(&edges, &walk, dim, &is_target);
                    assert!(is_target(edges[walk[0]].from), "walk starts off-target");
                }
            }
        }
    }

    #[test]
    fn witness_materializes_amortized_pumping() {
        // 0 → 1 pays 3, 1 → 0 gains 1, and a +1 self-loop at 1 makes up the
        // difference: the witness must traverse the loop at least twice.
        let edges = [edge(0, 1, &[-3]), edge(1, 0, &[1]), edge(1, 1, &[1])];
        let walk = nonneg_cycle_witness(2, 1, &edges, &|n| n == 0, 10_000).expect("lasso exists");
        assert_valid_walk(&edges, &walk, 1, &|n| n == 0);
        assert!(
            walk.iter().filter(|&&i| i == 2).count() >= 2,
            "{walk:?} must pump the self-loop"
        );
    }

    #[test]
    fn witness_respects_the_materialization_cap() {
        // The valid witness needs 4 traversals (0→1, loop ×2, 1→0); a cap of
        // 3 must refuse rather than truncate, while the decision stays true.
        let edges = [edge(0, 1, &[-3]), edge(1, 0, &[1]), edge(1, 1, &[1])];
        assert!(nonneg_cycle_exists(2, 1, &edges, &|n| n == 0));
        assert_eq!(nonneg_cycle_witness(2, 1, &edges, &|n| n == 0, 3), None);
    }

    #[test]
    fn witness_walks_the_long_ring() {
        let n = 100;
        let edges: Vec<DeltaEdge<'_>> = (0..n).map(|i| edge(i, (i + 1) % n, &[0])).collect();
        let walk = nonneg_cycle_witness(n, 1, &edges, &|s| s == 0, 10_000).expect("ring cycles");
        assert_eq!(walk.len(), n);
        assert_valid_walk(&edges, &walk, 1, &|s| s == 0);
    }

    #[test]
    fn predicate_targets_accept_any_matching_node() {
        let edges = [edge(0, 1, &[1]), edge(1, 0, &[-1]), edge(2, 2, &[-1])];
        assert!(nonneg_cycle_exists(3, 1, &edges, &|n| n >= 1));
        assert!(!nonneg_cycle_exists(3, 1, &edges, &|n| n == 2));
    }
}
