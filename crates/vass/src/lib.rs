//! Vector Addition Systems with States (VASS).
//!
//! Section 4.2 of the paper reduces the per-task relations `R_T` to state
//! reachability and state *repeated* reachability questions on VASS whose
//! states encode symbolic task configurations and whose vector dimensions are
//! the TS-isomorphism-type counters of the artifact relation. This crate is
//! the decision-procedure substrate for those questions:
//!
//! * [`Vass`] — explicit VASS with integer-delta actions;
//! * [`CoverabilityGraph`] — the Karp–Miller coverability graph with
//!   ω-acceleration;
//! * [`Vass::state_reachable`] — control-state reachability (used for the
//!   *returning* and *blocking* paths of Lemma 21), with witness extraction;
//! * [`Vass::state_repeated_reachable`] — repeated reachability (the *lasso*
//!   paths of Lemma 21): a reachable configuration with control state `q_f`
//!   from which the same control state is reached again with componentwise
//!   no-smaller counters;
//! * [`BoundedExplorer`] — an explicit-state explorer with counter caps, used
//!   for witness replay and as a test oracle against the Karp–Miller
//!   procedures;
//! * [`zrelax`] — the static pre-solver relaxations (state-equation and
//!   circulation LPs, per-dimension truncation-DFA abstraction, boundedness
//!   certificates) that refute queries before any graph is built
//!   (DESIGN.md §5.11).
//!
//! The paper cites the Rackoff/Habermehl EXPSPACE bounds for these problems;
//! Karp–Miller is the standard practical algorithm deciding the same queries
//! (see DESIGN.md §5.2 for the substitution note). Lasso detection asks for a
//! cycle through the target state whose summed action effect is componentwise
//! non-negative; the [`cycle`] module decides this exactly — no cycle-length
//! bound — by circulation feasibility per strongly connected component,
//! solved with the exact rational simplex of `has-arith` and
//! Kosaraju–Sullivan support refinement for connectivity. When a lasso
//! exists, [`cycle::nonneg_cycle_witness`] additionally materializes the
//! witnessing closed walk itself (scale the circulation to integers, thread
//! an Eulerian circuit), which the verifier renders as the pump cycle of a
//! counterexample report
//! ([`CoverabilityGraph::nonneg_cycle_witness_through_pred`]).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bounded;
pub mod coverability;
pub mod cycle;
pub mod dense;
pub mod shared;
pub mod vass;
pub mod zrelax;

pub use bounded::BoundedExplorer;
pub use coverability::{CoverabilityGraph, Marking, NodeRef, OMEGA};
pub use cycle::{
    nonneg_cycle_exists, nonneg_cycle_search, nonneg_cycle_witness,
    strongly_connected_components, CycleSearch, DeltaEdge,
};
pub use dense::{fx_hash, BitSet, FxBuildHasher, FxHashMap, FxHasher, Interner};
pub use shared::{SharedCoverability, SharedRun};
pub use vass::{Action, ActionCsr, Vass};
pub use zrelax::{
    certified_bounded_dims, control_reachable, counter_dfa_refutes, z_cover_feasible,
    z_lasso_feasible,
};
