//! Deterministic hashing and dense interning primitives for the hot loops.
//!
//! The coverability construction (this crate) and the symbolic product
//! construction (`has-core`) both spend their time canonicalizing
//! structured keys — extended markings, symbolic control states — into
//! dense integer ids. The ordered maps they previously used pay an
//! O(log n) *deep* comparison per probe; the interners here pay one hash
//! of the key and O(1) expected probes, and they assign ids in insertion
//! order, so every downstream iteration order is exactly the order in
//! which the deterministic worklists first produced each key. That is the
//! determinism contract of DESIGN.md §5.6/§5.8: canonical orders come from
//! the interners (first-insertion order), never from map iteration.
//!
//! Everything is hand-rolled on purpose: the workspace builds without
//! registry dependencies, and the standard library's `RandomState` is
//! seeded per process, which would make any accidentally order-dependent
//! consumer nondeterministic *across runs*. [`FxBuildHasher`] is fixed-seed
//! (the FxHash multiply-mix used by rustc), so even debugging sessions see
//! identical hashes run over run.

use std::collections::HashMap;
use std::hash::{BuildHasher, Hash, Hasher};

/// The FxHash multiplication constant (as used by the rustc hasher).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fixed-seed FxHash-style hasher: not DoS-resistant, but fast on the
/// short integer-shaped keys the verifier hashes, and byte-for-byte
/// reproducible across runs and platforms.
#[derive(Clone, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_word(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_word(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_word(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_word(v as u64);
    }
}

/// The [`BuildHasher`] for [`FxHasher`]: zero-sized and fixed-seed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashMap` with the deterministic [`FxBuildHasher`]. Safe wherever the
/// map is *lookup-only* (never iterated for output); see the module docs.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Hashes one value with the deterministic hasher.
#[inline]
pub fn fx_hash<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

/// An insertion-ordered interner: assigns dense ids `0, 1, 2, …` to
/// distinct values in first-insertion order and stores each value exactly
/// once (the open-addressing table holds ids, not keys, so a hit clones
/// nothing and a miss moves the value into the arena).
#[derive(Clone, Debug)]
pub struct Interner<T> {
    items: Vec<T>,
    /// Cached hash per item, so growth never rehashes the values.
    hashes: Vec<u64>,
    /// Open-addressing slots holding `id + 1` (`0` = empty); length is a
    /// power of two.
    table: Vec<u32>,
    mask: usize,
}

impl<T: Hash + Eq> Default for Interner<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Hash + Eq> Interner<T> {
    /// An empty interner.
    pub fn new() -> Self {
        Interner {
            items: Vec::new(),
            hashes: Vec::new(),
            table: vec![0; 16],
            mask: 15,
        }
    }

    /// Number of interned values.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The value with the given dense id.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn get(&self, id: u32) -> &T {
        &self.items[id as usize]
    }

    /// All interned values, indexed by id (insertion order).
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Consumes the interner, returning the arena of values indexed by id
    /// (insertion order). Used when construction is done and only the dense
    /// arena is kept.
    pub fn into_items(self) -> Vec<T> {
        self.items
    }

    /// The id of `value` if it has been interned.
    pub fn lookup(&self, value: &T) -> Option<u32> {
        let hash = fx_hash(value);
        let mut slot = (hash as usize) & self.mask;
        loop {
            let entry = self.table[slot];
            if entry == 0 {
                return None;
            }
            let id = entry - 1;
            if self.hashes[id as usize] == hash && self.items[id as usize] == *value {
                return Some(id);
            }
            slot = (slot + 1) & self.mask;
        }
    }

    /// Interns `value`: returns its dense id and whether it was newly
    /// inserted. On a hit the passed value is dropped; on a miss it is
    /// moved into the arena — no clone either way.
    pub fn intern(&mut self, value: T) -> (u32, bool) {
        let hash = fx_hash(&value);
        let mut slot = (hash as usize) & self.mask;
        loop {
            let entry = self.table[slot];
            if entry == 0 {
                break;
            }
            let id = entry - 1;
            if self.hashes[id as usize] == hash && self.items[id as usize] == value {
                return (id, false);
            }
            slot = (slot + 1) & self.mask;
        }
        let id = u32::try_from(self.items.len()).expect("interner overflow: more than u32::MAX values");
        self.items.push(value);
        self.hashes.push(hash);
        self.table[slot] = id + 1;
        if (self.items.len() + 1) * 8 > self.table.len() * 7 {
            self.grow();
        }
        (id, true)
    }

    fn grow(&mut self) {
        let new_len = self.table.len() * 2;
        self.mask = new_len - 1;
        self.table.clear();
        self.table.resize(new_len, 0);
        for (id, &hash) in self.hashes.iter().enumerate() {
            let mut slot = (hash as usize) & self.mask;
            while self.table[slot] != 0 {
                slot = (slot + 1) & self.mask;
            }
            self.table[slot] = id as u32 + 1;
        }
    }
}

/// A fixed-capacity bitset over `0..bits`, one `u64` word per 64 bits.
///
/// Replaces `BTreeSet<usize>` membership sets in the hot loops: `contains`
/// is one shift and mask instead of an ordered-tree probe. Iteration order
/// is not offered — consumers that need a canonical order keep their dense
/// id order (see the module docs).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set with capacity for bits `0..bits`.
    pub fn new(bits: usize) -> Self {
        BitSet {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    /// Inserts a bit.
    ///
    /// # Panics
    /// Panics if `bit` is beyond the capacity given at construction.
    pub fn insert(&mut self, bit: usize) {
        self.words[bit / 64] |= 1u64 << (bit % 64);
    }

    /// Whether a bit is set; bits beyond the capacity are unset.
    pub fn contains(&self, bit: usize) -> bool {
        self.words
            .get(bit / 64)
            .is_some_and(|w| w & (1u64 << (bit % 64)) != 0)
    }

    /// Whether any bit is set.
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_insert_contains_and_count() {
        let mut b = BitSet::new(130);
        assert!(!b.any());
        for bit in [0, 63, 64, 129] {
            b.insert(bit);
            assert!(b.contains(bit));
        }
        assert!(!b.contains(1));
        assert!(!b.contains(1000)); // beyond capacity: unset, no panic
        assert!(b.any());
        assert_eq!(b.count(), 4);
    }

    #[test]
    fn ids_are_assigned_in_insertion_order() {
        let mut i: Interner<String> = Interner::new();
        assert_eq!(i.intern("b".to_string()), (0, true));
        assert_eq!(i.intern("a".to_string()), (1, true));
        assert_eq!(i.intern("b".to_string()), (0, false));
        assert_eq!(i.lookup(&"a".to_string()), Some(1));
        assert_eq!(i.lookup(&"c".to_string()), None);
        assert_eq!(i.items(), &["b".to_string(), "a".to_string()]);
    }

    #[test]
    fn growth_preserves_ids() {
        let mut i: Interner<u64> = Interner::new();
        for v in 0..10_000u64 {
            let (id, new) = i.intern(v * 7919);
            assert_eq!(id as u64, v);
            assert!(new);
        }
        for v in 0..10_000u64 {
            assert_eq!(i.lookup(&(v * 7919)), Some(v as u32));
        }
        assert_eq!(i.len(), 10_000);
    }

    #[test]
    fn fx_hash_is_stable_across_calls() {
        let a = fx_hash(&(3usize, vec![1u64, 2, 3]));
        let b = fx_hash(&(3usize, vec![1u64, 2, 3]));
        assert_eq!(a, b);
        assert_ne!(a, fx_hash(&(3usize, vec![1u64, 2, 4])));
    }
}
