//! Concrete values of the HAS data model.

use has_arith::Rational;
use has_model::RelationId;
use std::fmt;

/// A concrete value.
///
/// The domains follow Definition 1: every relation has its own countable
/// domain of IDs, disjoint from the reals and from the ID domains of other
/// relations; numeric attributes and variables range over the reals
/// (rationals here); `null` is a distinguished constant distinct from
/// everything else.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// The null constant (initial value of ID variables).
    Null,
    /// An identifier: the `k`-th id of relation `rel`'s domain.
    Id {
        /// The relation whose ID domain the value belongs to.
        rel: RelationId,
        /// Index within that domain.
        k: u64,
    },
    /// A numeric (rational) value.
    Num(Rational),
}

impl Value {
    /// Numeric value from an integer.
    pub fn num(n: i64) -> Value {
        Value::Num(Rational::from_int(n))
    }

    /// The id value `rel#k`.
    pub fn id(rel: RelationId, k: u64) -> Value {
        Value::Id { rel, k }
    }

    /// Returns `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the numeric content, if any.
    pub fn as_num(&self) -> Option<Rational> {
        match self {
            Value::Num(r) => Some(*r),
            _ => None,
        }
    }

    /// Returns the id content, if any.
    pub fn as_id(&self) -> Option<(RelationId, u64)> {
        match self {
            Value::Id { rel, k } => Some((*rel, *k)),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Id { rel, k } => write!(f, "R{}#{}", rel.0, k),
            Value::Num(r) => write!(f, "{r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_predicates() {
        assert!(Value::Null.is_null());
        assert!(!Value::num(3).is_null());
        assert_eq!(Value::num(3).as_num(), Some(Rational::from_int(3)));
        assert_eq!(Value::num(3).as_id(), None);
        let id = Value::id(RelationId(1), 7);
        assert_eq!(id.as_id(), Some((RelationId(1), 7)));
        assert_eq!(id.as_num(), None);
    }

    #[test]
    fn ids_of_different_relations_are_distinct() {
        assert_ne!(Value::id(RelationId(0), 1), Value::id(RelationId(1), 1));
        assert_ne!(Value::id(RelationId(0), 1), Value::Null);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::id(RelationId(2), 5).to_string(), "R2#5");
        assert_eq!(Value::num(-4).to_string(), "-4");
    }
}
