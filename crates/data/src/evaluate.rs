//! Concrete evaluation of conditions under a valuation and a database.
//!
//! This implements the satisfaction relation `D ∪ C ⊨ α(ν)` of Section 2:
//! equality atoms compare concrete values, relation atoms look up the tuple
//! whose key is the first argument (an atom with any `null` argument is
//! false, as required by the paper), and arithmetic atoms evaluate the linear
//! constraint on the numeric components of the valuation.

use crate::database::DatabaseInstance;
use crate::value::Value;
use has_model::{ArtifactSchema, Atom, Condition, Term, VarId};
use std::collections::BTreeMap;

/// A valuation of artifact variables.
///
/// Unassigned ID variables read as `null` and unassigned numeric variables
/// read as `0`, mirroring the initialization rule for newly opened tasks
/// (Definition 9).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Valuation {
    values: BTreeMap<VarId, Value>,
}

impl Valuation {
    /// The empty valuation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value of a variable.
    pub fn set(&mut self, var: VarId, value: Value) {
        self.values.insert(var, value);
    }

    /// Gets the raw value of a variable, if explicitly set.
    pub fn get_raw(&self, var: VarId) -> Option<Value> {
        self.values.get(&var).copied()
    }

    /// Gets the value of a variable, defaulting per the variable's sort:
    /// `null` for ID variables, `0` for numeric ones.
    pub fn get(&self, schema: &ArtifactSchema, var: VarId) -> Value {
        self.values.get(&var).copied().unwrap_or_else(|| {
            match schema.variable(var).sort {
                has_model::VarSort::Id => Value::Null,
                has_model::VarSort::Numeric => Value::num(0),
            }
        })
    }

    /// Restricts the valuation to the given variables.
    pub fn project(&self, vars: &[VarId]) -> Valuation {
        Valuation {
            values: self
                .values
                .iter()
                .filter(|(v, _)| vars.contains(v))
                .map(|(v, x)| (*v, *x))
                .collect(),
        }
    }

    /// Iterates over explicitly assigned `(variable, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, Value)> + '_ {
        self.values.iter().map(|(v, x)| (*v, *x))
    }
}

fn eval_term(schema: &ArtifactSchema, valuation: &Valuation, term: &Term) -> Value {
    match term {
        Term::Var(v) => valuation.get(schema, *v),
        Term::Null => Value::Null,
        Term::Const(c) => Value::Num(*c),
    }
}

/// Evaluates a condition under a valuation and database instance.
pub fn eval_condition(
    schema: &ArtifactSchema,
    db: &DatabaseInstance,
    valuation: &Valuation,
    condition: &Condition,
) -> bool {
    condition.eval_with(&mut |atom: &Atom| match atom {
        Atom::Eq(a, b) => eval_term(schema, valuation, a) == eval_term(schema, valuation, b),
        Atom::Relation { relation, args } => {
            let values: Vec<Value> = args
                .iter()
                .map(|t| eval_term(schema, valuation, t))
                .collect();
            // A relation atom with any null argument is false (Section 2).
            if values.iter().any(Value::is_null) {
                return false;
            }
            match db.lookup(*relation, &values[0]) {
                Some(row) => row == &values,
                None => false,
            }
        }
        Atom::Arith(constraint) => constraint
            .eval(|v| valuation.get(schema, *v).as_num())
            .unwrap_or(false),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use has_arith::{LinExpr, LinearConstraint, Rational};
    use has_model::{RelationId, SystemBuilder};

    struct Fixture {
        schema: ArtifactSchema,
        db: DatabaseInstance,
        x: VarId,
        price: VarId,
        hotel: VarId,
    }

    fn fixture() -> Fixture {
        let mut b = SystemBuilder::new("t");
        b.relation("HOTELS", &["unit_price"], &[]);
        b.relation("FLIGHTS", &["price"], &[("comp_hotel_id", "HOTELS")]);
        let root = b.root_task("Root");
        let x = b.id_var(root, "x");
        let hotel = b.id_var(root, "hotel");
        let price = b.num_var(root, "price");
        let system = b.build().unwrap();
        let schema = system.schema;
        let mut db = DatabaseInstance::new(&schema.database);
        let h0 = Value::id(RelationId(0), 0);
        db.insert(&schema.database, RelationId(0), vec![h0, Value::num(90)])
            .unwrap();
        let f0 = Value::id(RelationId(1), 0);
        db.insert(&schema.database, RelationId(1), vec![f0, Value::num(250), h0])
            .unwrap();
        Fixture {
            schema,
            db,
            x,
            price,
            hotel,
        }
    }

    #[test]
    fn equality_and_null_defaults() {
        let f = fixture();
        let val = Valuation::new();
        // Unassigned ID variable is null.
        assert!(eval_condition(
            &f.schema,
            &f.db,
            &val,
            &Condition::is_null(f.x)
        ));
        // Unassigned numeric variable is 0.
        assert!(eval_condition(
            &f.schema,
            &f.db,
            &val,
            &Condition::eq_const(f.price, Rational::ZERO)
        ));
    }

    #[test]
    fn relation_atom_requires_matching_tuple() {
        let f = fixture();
        let flights = RelationId(1);
        let mut val = Valuation::new();
        val.set(f.x, Value::id(flights, 0));
        val.set(f.price, Value::num(250));
        val.set(f.hotel, Value::id(RelationId(0), 0));
        let atom = Condition::relation(
            flights,
            vec![Term::Var(f.x), Term::Var(f.price), Term::Var(f.hotel)],
        );
        assert!(eval_condition(&f.schema, &f.db, &val, &atom));
        // Wrong price: no matching tuple.
        val.set(f.price, Value::num(99));
        assert!(!eval_condition(&f.schema, &f.db, &val, &atom));
    }

    #[test]
    fn relation_atom_with_null_argument_is_false() {
        let f = fixture();
        let flights = RelationId(1);
        let mut val = Valuation::new();
        val.set(f.price, Value::num(250));
        // f.x and f.hotel left null.
        let atom = Condition::relation(
            flights,
            vec![Term::Var(f.x), Term::Var(f.price), Term::Var(f.hotel)],
        );
        assert!(!eval_condition(&f.schema, &f.db, &val, &atom));
    }

    #[test]
    fn arithmetic_atoms_use_numeric_values() {
        let f = fixture();
        let mut val = Valuation::new();
        val.set(f.price, Value::num(250));
        let cheap = Condition::arith(LinearConstraint::le(
            LinExpr::var(f.price),
            LinExpr::constant(Rational::from_int(100)),
        ));
        assert!(!eval_condition(&f.schema, &f.db, &val, &cheap));
        val.set(f.price, Value::num(50));
        assert!(eval_condition(&f.schema, &f.db, &val, &cheap));
    }

    #[test]
    fn boolean_structure_and_projection() {
        let f = fixture();
        let mut val = Valuation::new();
        val.set(f.x, Value::id(RelationId(1), 0));
        val.set(f.price, Value::num(1));
        let cond = Condition::not_null(f.x).and(Condition::is_null(f.hotel));
        assert!(eval_condition(&f.schema, &f.db, &val, &cond));
        let projected = val.project(&[f.price]);
        assert_eq!(projected.get_raw(f.x), None);
        assert_eq!(projected.get_raw(f.price), Some(Value::num(1)));
        assert_eq!(projected.iter().count(), 1);
    }
}
