//! In-memory database instances with key and foreign-key enforcement.

use crate::value::Value;
use has_model::{AttrKind, DatabaseSchema, RelationId};
use std::collections::BTreeMap;
use std::fmt;

/// A database row: one value per attribute, in schema attribute order (the
/// key attribute first).
pub type Row = Vec<Value>;

/// Errors raised when constructing or mutating a database instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DbError {
    /// A row has the wrong number of columns.
    Arity {
        /// Relation name.
        relation: String,
        /// Expected arity.
        expected: usize,
        /// Found arity.
        found: usize,
    },
    /// A value of the wrong sort was supplied for an attribute.
    Sort {
        /// Relation name.
        relation: String,
        /// Attribute name.
        attribute: String,
    },
    /// Two rows share the same key (violates the key dependency).
    DuplicateKey {
        /// Relation name.
        relation: String,
    },
    /// A foreign key references a missing row (violates the inclusion
    /// dependency).
    DanglingForeignKey {
        /// Relation name.
        relation: String,
        /// Attribute name.
        attribute: String,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Arity {
                relation,
                expected,
                found,
            } => write!(f, "row for `{relation}` has {found} columns, expected {expected}"),
            DbError::Sort {
                relation,
                attribute,
            } => write!(f, "wrong value sort for `{relation}.{attribute}`"),
            DbError::DuplicateKey { relation } => {
                write!(f, "duplicate key in relation `{relation}`")
            }
            DbError::DanglingForeignKey {
                relation,
                attribute,
            } => write!(f, "dangling foreign key `{relation}.{attribute}`"),
        }
    }
}

impl std::error::Error for DbError {}

/// A finite database instance over a [`DatabaseSchema`], satisfying the key
/// dependencies at all times; foreign-key (inclusion) dependencies are
/// checked by [`DatabaseInstance::check_foreign_keys`] once population is
/// complete.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DatabaseInstance {
    /// Rows per relation, keyed by the key value for O(log n) lookup.
    relations: Vec<BTreeMap<Value, Row>>,
}

impl DatabaseInstance {
    /// Creates an empty instance of the given schema.
    pub fn new(schema: &DatabaseSchema) -> Self {
        DatabaseInstance {
            relations: vec![BTreeMap::new(); schema.len()],
        }
    }

    /// Inserts a row, enforcing arity, sorts and the key dependency.
    pub fn insert(
        &mut self,
        schema: &DatabaseSchema,
        rel: RelationId,
        row: Row,
    ) -> Result<(), DbError> {
        let relation = schema.relation(rel);
        if row.len() != relation.arity() {
            return Err(DbError::Arity {
                relation: relation.name.clone(),
                expected: relation.arity(),
                found: row.len(),
            });
        }
        for (attr, value) in relation.attributes.iter().zip(&row) {
            let ok = match attr.kind {
                AttrKind::Key => matches!(value, Value::Id { rel: r, .. } if *r == rel),
                AttrKind::Numeric => matches!(value, Value::Num(_)),
                AttrKind::ForeignKey(target) => {
                    matches!(value, Value::Id { rel: r, .. } if *r == target)
                }
            };
            if !ok {
                return Err(DbError::Sort {
                    relation: relation.name.clone(),
                    attribute: attr.name.clone(),
                });
            }
        }
        let key = row[0];
        if self.relations[rel.0].contains_key(&key) {
            return Err(DbError::DuplicateKey {
                relation: relation.name.clone(),
            });
        }
        self.relations[rel.0].insert(key, row);
        Ok(())
    }

    /// Looks up the row of `rel` with the given key value.
    pub fn lookup(&self, rel: RelationId, key: &Value) -> Option<&Row> {
        self.relations.get(rel.0).and_then(|m| m.get(key))
    }

    /// Iterates over the rows of a relation.
    pub fn rows(&self, rel: RelationId) -> impl Iterator<Item = &Row> {
        self.relations[rel.0].values()
    }

    /// Number of rows in a relation.
    pub fn cardinality(&self, rel: RelationId) -> usize {
        self.relations[rel.0].len()
    }

    /// Total number of rows.
    pub fn total_rows(&self) -> usize {
        self.relations.iter().map(BTreeMap::len).sum()
    }

    /// Checks all inclusion dependencies, returning the first violation.
    pub fn check_foreign_keys(&self, schema: &DatabaseSchema) -> Result<(), DbError> {
        for (rel_id, relation) in schema.iter() {
            for row in self.rows(rel_id) {
                for (idx, target) in relation.foreign_keys() {
                    let v = &row[idx];
                    if self.lookup(target, v).is_none() {
                        return Err(DbError::DanglingForeignKey {
                            relation: relation.name.clone(),
                            attribute: relation.attributes[idx].name.clone(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// The active domain: every value appearing in some row.
    pub fn active_domain(&self) -> Vec<Value> {
        let mut out: Vec<Value> = self
            .relations
            .iter()
            .flat_map(|m| m.values())
            .flatten()
            .copied()
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Follows a chain of foreign-key attributes starting from an id value,
    /// returning the value reached (used to ground navigation expressions of
    /// the symbolic representation on concrete data).
    ///
    /// `path` is a sequence of attribute indices; each step must name a
    /// foreign-key or numeric attribute of the relation the current id
    /// belongs to, and only the last step may be numeric.
    pub fn navigate(
        &self,
        schema: &DatabaseSchema,
        start: Value,
        path: &[usize],
    ) -> Option<Value> {
        let mut current = start;
        for &attr_idx in path {
            let (rel, _) = current.as_id()?;
            let row = self.lookup(rel, &current)?;
            let attr = schema.relation(rel).attributes.get(attr_idx)?;
            match attr.kind {
                AttrKind::Key => return None,
                AttrKind::Numeric | AttrKind::ForeignKey(_) => {
                    current = *row.get(attr_idx)?;
                }
            }
        }
        Some(current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;
    use has_model::SystemBuilder;

    fn schema() -> DatabaseSchema {
        let mut b = SystemBuilder::new("s");
        b.relation("HOTELS", &["unit_price", "discount_price"], &[]);
        b.relation("FLIGHTS", &["price"], &[("comp_hotel_id", "HOTELS")]);
        let root = b.root_task("Root");
        let _ = b.id_var(root, "x");
        b.build().unwrap().schema.database
    }

    fn hotels() -> RelationId {
        RelationId(0)
    }
    fn flights() -> RelationId {
        RelationId(1)
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let s = schema();
        let mut db = DatabaseInstance::new(&s);
        let h = Value::id(hotels(), 0);
        db.insert(&s, hotels(), vec![h, Value::num(100), Value::num(80)])
            .unwrap();
        let f = Value::id(flights(), 0);
        db.insert(&s, flights(), vec![f, Value::num(250), h]).unwrap();
        assert_eq!(db.cardinality(hotels()), 1);
        assert_eq!(db.lookup(flights(), &f).unwrap()[2], h);
        assert_eq!(db.total_rows(), 2);
        assert!(db.check_foreign_keys(&s).is_ok());
        assert_eq!(db.active_domain().len(), 5);
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let s = schema();
        let mut db = DatabaseInstance::new(&s);
        let h = Value::id(hotels(), 0);
        db.insert(&s, hotels(), vec![h, Value::num(1), Value::num(2)])
            .unwrap();
        let err = db
            .insert(&s, hotels(), vec![h, Value::num(3), Value::num(4)])
            .unwrap_err();
        assert!(matches!(err, DbError::DuplicateKey { .. }));
    }

    #[test]
    fn sort_and_arity_violations_are_rejected() {
        let s = schema();
        let mut db = DatabaseInstance::new(&s);
        let err = db
            .insert(&s, hotels(), vec![Value::num(1), Value::num(1), Value::num(2)])
            .unwrap_err();
        assert!(matches!(err, DbError::Sort { .. }));
        let err = db
            .insert(&s, hotels(), vec![Value::id(hotels(), 0)])
            .unwrap_err();
        assert!(matches!(err, DbError::Arity { .. }));
        // Wrong relation's id in the key position.
        let err = db
            .insert(
                &s,
                hotels(),
                vec![Value::id(flights(), 0), Value::num(1), Value::num(2)],
            )
            .unwrap_err();
        assert!(matches!(err, DbError::Sort { .. }));
    }

    #[test]
    fn dangling_foreign_keys_are_detected() {
        let s = schema();
        let mut db = DatabaseInstance::new(&s);
        let f = Value::id(flights(), 0);
        let missing_hotel = Value::id(hotels(), 99);
        db.insert(&s, flights(), vec![f, Value::num(250), missing_hotel])
            .unwrap();
        assert!(matches!(
            db.check_foreign_keys(&s),
            Err(DbError::DanglingForeignKey { .. })
        ));
    }

    #[test]
    fn navigation_follows_foreign_keys() {
        let s = schema();
        let mut db = DatabaseInstance::new(&s);
        let h = Value::id(hotels(), 3);
        db.insert(&s, hotels(), vec![h, Value::num(100), Value::num(80)])
            .unwrap();
        let f = Value::id(flights(), 1);
        db.insert(&s, flights(), vec![f, Value::num(250), h]).unwrap();
        // FLIGHTS.comp_hotel_id is attribute 2; HOTELS.discount_price is 2.
        assert_eq!(db.navigate(&s, f, &[2]), Some(h));
        assert_eq!(db.navigate(&s, f, &[2, 2]), Some(Value::num(80)));
        assert_eq!(db.navigate(&s, f, &[2, 2, 0]), None);
        assert_eq!(db.navigate(&s, Value::Null, &[2]), None);
    }
}
