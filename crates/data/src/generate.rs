//! Random database generation.
//!
//! The verification problem ranges over all databases satisfying the schema's
//! key and foreign-key dependencies; the simulator explores concrete
//! behaviour on sampled instances. The generator below produces valid
//! instances of any schema: rows are created relation by relation and foreign
//! keys are pointed at rows of the referenced relation, creating them on
//! demand if necessary (which also terminates on cyclic schemas because the
//! referenced pool is bounded by `rows_per_relation`).

use crate::database::DatabaseInstance;
use crate::value::Value;
use has_model::{AttrKind, DatabaseSchema, RelationId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the random database generator.
#[derive(Clone, Debug)]
pub struct GeneratorConfig {
    /// Number of rows to generate per relation.
    pub rows_per_relation: usize,
    /// Numeric attribute values are drawn uniformly from `0..=max_numeric`.
    pub max_numeric: i64,
    /// RNG seed, so benchmark workloads are reproducible.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            rows_per_relation: 8,
            max_numeric: 100,
            seed: 0xC0FFEE,
        }
    }
}

/// Random generator of valid database instances.
#[derive(Debug)]
pub struct DatabaseGenerator {
    config: GeneratorConfig,
    rng: StdRng,
}

impl DatabaseGenerator {
    /// Creates a generator with the given configuration.
    pub fn new(config: GeneratorConfig) -> Self {
        let rng = StdRng::seed_from_u64(config.seed);
        DatabaseGenerator { config, rng }
    }

    /// Generates a database instance satisfying all dependencies of the
    /// schema.
    pub fn generate(&mut self, schema: &DatabaseSchema) -> DatabaseInstance {
        let mut db = DatabaseInstance::new(schema);
        let n = self.config.rows_per_relation;
        // First pass: create all keys so that foreign keys always have a
        // target pool to draw from (this also handles cyclic schemas).
        for (rel_id, _) in schema.iter() {
            for k in 0..n {
                let _ = (rel_id, k); // keys are implicit: rel_id # k
            }
        }
        // Second pass: materialize rows.
        for (rel_id, relation) in schema.iter() {
            for k in 0..n {
                let mut row = Vec::with_capacity(relation.arity());
                for attr in &relation.attributes {
                    let value = match attr.kind {
                        AttrKind::Key => Value::id(rel_id, k as u64),
                        AttrKind::Numeric => {
                            Value::num(self.rng.random_range(0..=self.config.max_numeric))
                        }
                        AttrKind::ForeignKey(target) => {
                            Value::id(target, self.rng.random_range(0..n) as u64)
                        }
                    };
                    row.push(value);
                }
                db.insert(schema, rel_id, row)
                    .expect("generated rows are well-formed by construction");
            }
        }
        debug_assert!(db.check_foreign_keys(schema).is_ok());
        db
    }

    /// Draws a fresh id value for a relation that is *outside* the generated
    /// pool (useful for modelling external inputs that are not in the active
    /// domain).
    pub fn fresh_id(&mut self, rel: RelationId) -> Value {
        Value::id(
            rel,
            self.config.rows_per_relation as u64 + self.rng.random_range(0..1_000_000),
        )
    }

    /// Draws a random id value from the generated pool of a relation.
    pub fn existing_id(&mut self, rel: RelationId) -> Value {
        Value::id(rel, self.rng.random_range(0..self.config.rows_per_relation) as u64)
    }

    /// Draws a random numeric value in the configured range.
    pub fn numeric(&mut self) -> Value {
        Value::num(self.rng.random_range(0..=self.config.max_numeric))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use has_model::SystemBuilder;

    fn schema(cyclic: bool) -> DatabaseSchema {
        let mut b = SystemBuilder::new("s");
        if cyclic {
            b.relation("A", &["v"], &[("to_b", "B")]);
            b.relation("B", &["w"], &[("to_a", "A")]);
        } else {
            b.relation("HOTELS", &["price"], &[]);
            b.relation("FLIGHTS", &["price"], &[("hotel", "HOTELS")]);
        }
        let root = b.root_task("Root");
        let _ = b.id_var(root, "x");
        b.build().unwrap().schema.database
    }

    #[test]
    fn generated_instances_satisfy_dependencies() {
        let s = schema(false);
        let mut generator = DatabaseGenerator::new(GeneratorConfig::default());
        let db = generator.generate(&s);
        assert_eq!(db.cardinality(RelationId(0)), 8);
        assert_eq!(db.cardinality(RelationId(1)), 8);
        assert!(db.check_foreign_keys(&s).is_ok());
    }

    #[test]
    fn cyclic_schemas_are_handled() {
        let s = schema(true);
        let mut generator = DatabaseGenerator::new(GeneratorConfig {
            rows_per_relation: 4,
            ..GeneratorConfig::default()
        });
        let db = generator.generate(&s);
        assert!(db.check_foreign_keys(&s).is_ok());
        assert_eq!(db.total_rows(), 8);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let s = schema(false);
        let mut g1 = DatabaseGenerator::new(GeneratorConfig {
            seed: 7,
            ..GeneratorConfig::default()
        });
        let mut g2 = DatabaseGenerator::new(GeneratorConfig {
            seed: 7,
            ..GeneratorConfig::default()
        });
        assert_eq!(g1.generate(&s), g2.generate(&s));
        let mut g3 = DatabaseGenerator::new(GeneratorConfig {
            seed: 8,
            ..GeneratorConfig::default()
        });
        assert_ne!(g1.generate(&s), g3.generate(&s));
    }

    #[test]
    fn fresh_ids_are_outside_the_pool() {
        let mut g = DatabaseGenerator::new(GeneratorConfig::default());
        let fresh = g.fresh_id(RelationId(0));
        let existing = g.existing_id(RelationId(0));
        let (_, fk) = fresh.as_id().unwrap();
        let (_, ek) = existing.as_id().unwrap();
        assert!(fk >= 8);
        assert!(ek < 8);
        assert!(g.numeric().as_num().is_some());
    }
}
