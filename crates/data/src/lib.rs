//! Concrete relational substrate for Hierarchical Artifact Systems.
//!
//! The paper's verification problem quantifies over *all* database instances
//! satisfying the key and inclusion (foreign-key) dependencies of the schema.
//! The verifier never materializes instances — it works symbolically — but a
//! concrete substrate is still needed for:
//!
//! * the **simulator** (`has-sim`), which executes artifact systems on actual
//!   databases and serves as an independent oracle for the verifier;
//! * the **examples**, which run the travel-booking process end to end;
//! * **witness replay**: grounding symbolic counterexamples on a small
//!   concrete database.
//!
//! This crate provides values, tuples, database instances with dependency
//! enforcement, valuation of artifact variables, concrete condition
//! evaluation, and random database generation.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod database;
pub mod evaluate;
pub mod generate;
pub mod value;

pub use database::{DatabaseInstance, DbError, Row};
pub use evaluate::{eval_condition, Valuation};
pub use generate::{DatabaseGenerator, GeneratorConfig};
pub use value::Value;
