//! Property-based tests for the arithmetic substrate.
//!
//! These check the two facts the verifier relies on:
//! * `sample_point` only returns genuine witnesses, and agrees with
//!   brute-force satisfiability detection on small integer grids;
//! * existential projection (`eliminate_variable`) is sound and complete with
//!   respect to the original system on sampled points.

use has_arith::{eliminate_variable, fm, LinExpr, LinearConstraint, Rational, RelOp};
use proptest::prelude::*;

type Var = u8;

fn rat(n: i64) -> Rational {
    Rational::from_int(n)
}

/// Strategy: a random linear constraint over variables 0..nvars with small
/// integer coefficients.
fn arb_constraint(nvars: u8) -> impl Strategy<Value = LinearConstraint<Var>> {
    let coeffs = proptest::collection::vec(-3i64..=3, nvars as usize);
    let constant = -5i64..=5;
    let op = prop_oneof![
        Just(RelOp::Lt),
        Just(RelOp::Le),
        Just(RelOp::Eq),
        Just(RelOp::Ne),
        Just(RelOp::Gt),
        Just(RelOp::Ge),
    ];
    (coeffs, constant, op).prop_map(move |(cs, k, op)| {
        let mut e = LinExpr::constant(rat(k));
        for (i, c) in cs.into_iter().enumerate() {
            e.add_term(rat(c), i as u8);
        }
        LinearConstraint::new(e, op)
    })
}

fn arb_system(nvars: u8, max_len: usize) -> impl Strategy<Value = Vec<LinearConstraint<Var>>> {
    proptest::collection::vec(arb_constraint(nvars), 0..max_len)
}

/// Brute-force satisfiability over a small rational grid (integers and
/// halves in [-6, 6]). Only used as a one-sided oracle: if the grid contains
/// a solution the system is satisfiable.
fn grid_satisfiable(system: &[LinearConstraint<Var>], nvars: u8) -> bool {
    let grid: Vec<Rational> = (-12..=12).map(|n| Rational::new(n, 2)).collect();
    let mut assignment = vec![Rational::ZERO; nvars as usize];
    fn rec(
        system: &[LinearConstraint<Var>],
        grid: &[Rational],
        assignment: &mut Vec<Rational>,
        idx: usize,
    ) -> bool {
        if idx == assignment.len() {
            return system
                .iter()
                .all(|c| c.eval(|v| Some(assignment[*v as usize])) == Some(true));
        }
        for &g in grid {
            assignment[idx] = g;
            if rec(system, grid, assignment, idx + 1) {
                return true;
            }
        }
        false
    }
    rec(system, &grid, &mut assignment, 0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any witness returned by `sample_point` satisfies every constraint.
    #[test]
    fn sample_point_is_a_witness(system in arb_system(3, 5)) {
        if let Some(pt) = fm::sample_point(&system) {
            let get = |v: &Var| {
                pt.iter().find(|(w, _)| w == v).map(|(_, r)| *r).or(Some(Rational::ZERO))
            };
            for c in &system {
                prop_assert_eq!(c.eval(get), Some(true), "violated {} at {:?}", c, pt);
            }
        }
    }

    /// If a small-grid solution exists, `is_satisfiable` must report true
    /// (completeness on the grid).
    #[test]
    fn grid_solutions_are_found(system in arb_system(2, 4)) {
        if grid_satisfiable(&system, 2) {
            prop_assert!(fm::is_satisfiable(&system));
        }
    }

    /// If `is_satisfiable` reports false, no grid point satisfies the system
    /// (soundness of unsatisfiability answers).
    #[test]
    fn unsat_answers_are_sound(system in arb_system(2, 4)) {
        if !fm::is_satisfiable(&system) {
            prop_assert!(!grid_satisfiable(&system, 2));
        }
    }

    /// Projection soundness: every witness of the original system projects to
    /// a point satisfying some disjunct of the eliminated system.
    #[test]
    fn elimination_is_sound(system in arb_system(3, 4)) {
        let var: Var = 0;
        if let Some(pt) = fm::sample_point(&system) {
            let disjuncts = eliminate_variable(&system, &var);
            let get = |v: &Var| {
                pt.iter().find(|(w, _)| w == v).map(|(_, r)| *r).or(Some(Rational::ZERO))
            };
            let ok = disjuncts.iter().any(|d| {
                d.iter().all(|c| c.eval(get) == Some(true))
            });
            prop_assert!(ok, "projection lost the witness {:?}", pt);
        }
    }

    /// Projection completeness: if the eliminated system is satisfiable, the
    /// original system has a solution too (for some value of the eliminated
    /// variable).
    #[test]
    fn elimination_is_complete(system in arb_system(3, 4)) {
        let var: Var = 0;
        let disjuncts = eliminate_variable(&system, &var);
        let any_sat = disjuncts.iter().any(|d| fm::is_satisfiable(d));
        prop_assert_eq!(any_sat, fm::is_satisfiable(&system));
    }
}
