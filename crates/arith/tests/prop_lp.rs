//! Property-based cross-validation of the exact simplex against
//! Fourier–Motzkin elimination: both decide feasibility over ℚ, so on any
//! random system of non-strict constraints (with non-negativity made explicit
//! for the FM side) their answers must coincide, and any point the simplex
//! returns must satisfy every constraint.

use has_arith::{is_satisfiable, LinExpr, LinearConstraint, LpCmp, LpProblem, Rational, RelOp};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Row {
    coeffs: Vec<i64>,
    cmp: LpCmp,
    rhs: i64,
}

fn arb_row(vars: usize) -> impl Strategy<Value = Row> {
    (
        proptest::collection::vec(-3i64..=3, vars),
        prop_oneof![Just(LpCmp::Le), Just(LpCmp::Eq), Just(LpCmp::Ge)],
        -4i64..=4,
    )
        .prop_map(|(coeffs, cmp, rhs)| Row { coeffs, cmp, rhs })
}

fn to_lp(vars: usize, rows: &[Row]) -> LpProblem {
    let mut lp = LpProblem::new(vars);
    for row in rows {
        let coeffs: Vec<(usize, Rational)> = row
            .coeffs
            .iter()
            .enumerate()
            .map(|(j, &c)| (j, Rational::from_int(c)))
            .collect();
        lp.add_constraint(&coeffs, row.cmp, Rational::from_int(row.rhs));
    }
    lp
}

/// The same system as a Fourier–Motzkin input, with the LP's implicit
/// `x_j ≥ 0` bounds added explicitly.
fn to_fm(vars: usize, rows: &[Row]) -> Vec<LinearConstraint<usize>> {
    let mut system = Vec::new();
    for row in rows {
        let mut expr = LinExpr::constant(Rational::from_int(-row.rhs));
        for (j, &c) in row.coeffs.iter().enumerate() {
            expr.add_term(Rational::from_int(c), j);
        }
        let op = match row.cmp {
            LpCmp::Le => RelOp::Le,
            LpCmp::Eq => RelOp::Eq,
            LpCmp::Ge => RelOp::Ge,
        };
        system.push(LinearConstraint::new(expr, op));
    }
    for j in 0..vars {
        system.push(LinearConstraint::new(LinExpr::var(j), RelOp::Ge));
    }
    system
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn simplex_agrees_with_fourier_motzkin(rows in proptest::collection::vec(arb_row(3), 1..6)) {
        let lp = to_lp(3, &rows);
        let fm = to_fm(3, &rows);
        prop_assert_eq!(lp.is_feasible(), is_satisfiable(&fm));
    }

    #[test]
    fn simplex_points_satisfy_every_constraint(rows in proptest::collection::vec(arb_row(3), 1..6)) {
        let lp = to_lp(3, &rows);
        if let Some(point) = lp.feasible_point() {
            for v in &point {
                prop_assert!(!v.is_negative(), "negative coordinate in {point:?}");
            }
            for c in to_fm(3, &rows) {
                prop_assert_eq!(
                    c.eval(|j| point.get(*j).copied()),
                    Some(true),
                    "violated constraint {} at {:?}", c, point
                );
            }
        }
    }
}
