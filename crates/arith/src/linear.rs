//! Linear expressions and constraints over an arbitrary variable type.
//!
//! A [`LinExpr`] is an affine combination `Σ cᵢ·xᵢ + c₀` of variables with
//! rational coefficients; a [`LinearConstraint`] compares such an expression
//! to zero with one of the relational operators of [`RelOp`]. Conditions in
//! HAS specifications use these as their arithmetic atoms (the paper's
//! polynomial inequalities, restricted to the linear case — see the crate
//! documentation for why this substitution is faithful).

use crate::rational::Rational;
use std::collections::BTreeMap;
use std::fmt;
use std::hash::Hash;
use std::ops::{Add, Mul, Neg, Sub};

/// Relational operators usable in arithmetic atoms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RelOp {
    /// `< 0`
    Lt,
    /// `≤ 0`
    Le,
    /// `= 0`
    Eq,
    /// `≠ 0`
    Ne,
    /// `> 0`
    Gt,
    /// `≥ 0`
    Ge,
}

impl RelOp {
    /// The operator obtained by logical negation (`¬(e < 0)` is `e ≥ 0`, …).
    pub fn negate(self) -> RelOp {
        match self {
            RelOp::Lt => RelOp::Ge,
            RelOp::Le => RelOp::Gt,
            RelOp::Eq => RelOp::Ne,
            RelOp::Ne => RelOp::Eq,
            RelOp::Gt => RelOp::Le,
            RelOp::Ge => RelOp::Lt,
        }
    }

    /// The operator with its arguments flipped (`e < 0` becomes `-e > 0`).
    pub fn flip(self) -> RelOp {
        match self {
            RelOp::Lt => RelOp::Gt,
            RelOp::Le => RelOp::Ge,
            RelOp::Gt => RelOp::Lt,
            RelOp::Ge => RelOp::Le,
            RelOp::Eq => RelOp::Eq,
            RelOp::Ne => RelOp::Ne,
        }
    }

    /// Evaluates the operator against a concrete value compared to zero.
    pub fn holds(self, value: Rational) -> bool {
        match self {
            RelOp::Lt => value.is_negative(),
            RelOp::Le => !value.is_positive(),
            RelOp::Eq => value.is_zero(),
            RelOp::Ne => !value.is_zero(),
            RelOp::Gt => value.is_positive(),
            RelOp::Ge => !value.is_negative(),
        }
    }
}

impl fmt::Display for RelOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RelOp::Lt => "<",
            RelOp::Le => "<=",
            RelOp::Eq => "=",
            RelOp::Ne => "!=",
            RelOp::Gt => ">",
            RelOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A linear (affine) expression `Σ cᵢ·xᵢ + constant` with rational
/// coefficients over variables of type `V`.
///
/// Zero coefficients are never stored, so structural equality coincides with
/// mathematical equality of affine functions.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinExpr<V: Ord> {
    coeffs: BTreeMap<V, Rational>,
    constant: Rational,
}

impl<V: Ord + Clone> Default for LinExpr<V> {
    fn default() -> Self {
        LinExpr {
            coeffs: BTreeMap::new(),
            constant: Rational::ZERO,
        }
    }
}

impl<V: Ord + Clone> LinExpr<V> {
    /// The zero expression.
    pub fn zero() -> Self {
        Self::default()
    }

    /// A constant expression.
    pub fn constant(c: Rational) -> Self {
        LinExpr {
            coeffs: BTreeMap::new(),
            constant: c,
        }
    }

    /// The expression consisting of a single variable with coefficient 1.
    pub fn var(v: V) -> Self {
        let mut coeffs = BTreeMap::new();
        coeffs.insert(v, Rational::ONE);
        LinExpr {
            coeffs,
            constant: Rational::ZERO,
        }
    }

    /// The expression `c · v`.
    pub fn term(c: Rational, v: V) -> Self {
        let mut e = Self::zero();
        e.add_term(c, v);
        e
    }

    /// Adds `c · v` to the expression in place.
    pub fn add_term(&mut self, c: Rational, v: V) {
        if c.is_zero() {
            return;
        }
        let entry = self.coeffs.entry(v).or_insert(Rational::ZERO);
        *entry += c;
        if entry.is_zero() {
            // Re-borrow immutably to find the key to remove; avoid clone of V
            // by collecting zero-coefficient keys lazily (only one possible).
            let key = self
                .coeffs
                .iter()
                .find(|(_, c)| c.is_zero())
                .map(|(k, _)| k.clone());
            if let Some(k) = key {
                self.coeffs.remove(&k);
            }
        }
    }

    /// Adds a constant to the expression in place.
    pub fn add_constant(&mut self, c: Rational) {
        self.constant += c;
    }

    /// The constant term.
    pub fn constant_term(&self) -> Rational {
        self.constant
    }

    /// Coefficient of a variable (zero if absent).
    pub fn coeff(&self, v: &V) -> Rational {
        self.coeffs.get(v).copied().unwrap_or(Rational::ZERO)
    }

    /// Iterator over `(variable, coefficient)` pairs with non-zero
    /// coefficients.
    pub fn terms(&self) -> impl Iterator<Item = (&V, &Rational)> {
        self.coeffs.iter()
    }

    /// The set of variables with non-zero coefficients.
    pub fn variables(&self) -> impl Iterator<Item = &V> {
        self.coeffs.keys()
    }

    /// Returns `true` if the expression mentions no variable.
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Returns `true` if the expression is syntactically zero.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty() && self.constant.is_zero()
    }

    /// Multiplies the expression by a rational scalar.
    pub fn scale(&self, c: Rational) -> Self {
        if c.is_zero() {
            return Self::zero();
        }
        LinExpr {
            coeffs: self
                .coeffs
                .iter()
                .map(|(v, k)| (v.clone(), *k * c))
                .collect(),
            constant: self.constant * c,
        }
    }

    /// Evaluates the expression under a valuation of its variables.
    ///
    /// Returns `None` if some variable is not assigned by `valuation`.
    pub fn eval<F>(&self, mut valuation: F) -> Option<Rational>
    where
        F: FnMut(&V) -> Option<Rational>,
    {
        let mut acc = self.constant;
        for (v, c) in &self.coeffs {
            acc += *c * valuation(v)?;
        }
        Some(acc)
    }

    /// Substitutes variable `v` by the expression `e` (used when eliminating
    /// equalities in Fourier–Motzkin).
    pub fn substitute(&self, v: &V, e: &LinExpr<V>) -> Self {
        let c = self.coeff(v);
        if c.is_zero() {
            return self.clone();
        }
        let mut out = self.clone();
        out.coeffs.remove(v);
        out + e.scale(c)
    }

    /// Renames every variable through `f`, combining coefficients when two
    /// variables map to the same target.
    pub fn rename<W: Ord + Clone, F>(&self, mut f: F) -> LinExpr<W>
    where
        F: FnMut(&V) -> W,
    {
        let mut out = LinExpr::constant(self.constant);
        for (v, c) in &self.coeffs {
            out.add_term(*c, f(v));
        }
        out
    }

    /// Normalizes the expression so that the leading (smallest-variable)
    /// coefficient is ±1, or the constant is in {−1, 0, 1} for constant
    /// expressions. Two expressions defining the same hyperplane (up to a
    /// positive scalar) normalize to the same representative; this keeps the
    /// polynomial sets of the cell decomposition small.
    pub fn normalized(&self) -> Self {
        let scale = if let Some((_, c)) = self.coeffs.iter().next() {
            c.abs()
        } else if !self.constant.is_zero() {
            self.constant.abs()
        } else {
            return self.clone();
        };
        self.scale(scale.recip())
    }
}

impl<V: Ord + Clone> Add for LinExpr<V> {
    type Output = LinExpr<V>;
    fn add(self, rhs: LinExpr<V>) -> LinExpr<V> {
        let mut out = self;
        for (v, c) in rhs.coeffs {
            out.add_term(c, v);
        }
        out.constant += rhs.constant;
        out
    }
}

impl<V: Ord + Clone> Sub for LinExpr<V> {
    type Output = LinExpr<V>;
    // Subtraction genuinely is addition of the negation here.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn sub(self, rhs: LinExpr<V>) -> LinExpr<V> {
        self + rhs.neg()
    }
}

impl<V: Ord + Clone> Neg for LinExpr<V> {
    type Output = LinExpr<V>;
    fn neg(self) -> LinExpr<V> {
        self.scale(-Rational::ONE)
    }
}

impl<V: Ord + Clone> Mul<Rational> for LinExpr<V> {
    type Output = LinExpr<V>;
    fn mul(self, rhs: Rational) -> LinExpr<V> {
        self.scale(rhs)
    }
}

impl<V: Ord + fmt::Display> fmt::Display for LinExpr<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.coeffs {
            if first {
                write!(f, "{c}*{v}")?;
                first = false;
            } else if c.is_negative() {
                write!(f, " - {}*{v}", c.abs())?;
            } else {
                write!(f, " + {c}*{v}")?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if !self.constant.is_zero() {
            if self.constant.is_negative() {
                write!(f, " - {}", self.constant.abs())?;
            } else {
                write!(f, " + {}", self.constant)?;
            }
        }
        Ok(())
    }
}

impl<V: Ord + fmt::Debug> fmt::Debug for LinExpr<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LinExpr({:?} + {:?})", self.coeffs, self.constant)
    }
}

/// A linear constraint `expr op 0`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinearConstraint<V: Ord> {
    /// Left-hand side compared against zero.
    pub expr: LinExpr<V>,
    /// Relational operator.
    pub op: RelOp,
}

impl<V: Ord + Clone> LinearConstraint<V> {
    /// Creates a constraint `expr op 0`.
    pub fn new(expr: LinExpr<V>, op: RelOp) -> Self {
        LinearConstraint { expr, op }
    }

    /// Creates a constraint `lhs op rhs`.
    pub fn compare(lhs: LinExpr<V>, op: RelOp, rhs: LinExpr<V>) -> Self {
        LinearConstraint {
            expr: lhs - rhs,
            op,
        }
    }

    /// `lhs = rhs`.
    pub fn eq(lhs: LinExpr<V>, rhs: LinExpr<V>) -> Self {
        Self::compare(lhs, RelOp::Eq, rhs)
    }

    /// `lhs ≤ rhs`.
    pub fn le(lhs: LinExpr<V>, rhs: LinExpr<V>) -> Self {
        Self::compare(lhs, RelOp::Le, rhs)
    }

    /// `lhs < rhs`.
    pub fn lt(lhs: LinExpr<V>, rhs: LinExpr<V>) -> Self {
        Self::compare(lhs, RelOp::Lt, rhs)
    }

    /// `lhs ≥ rhs`.
    pub fn ge(lhs: LinExpr<V>, rhs: LinExpr<V>) -> Self {
        Self::compare(lhs, RelOp::Ge, rhs)
    }

    /// `lhs > rhs`.
    pub fn gt(lhs: LinExpr<V>, rhs: LinExpr<V>) -> Self {
        Self::compare(lhs, RelOp::Gt, rhs)
    }

    /// `lhs ≠ rhs`.
    pub fn ne(lhs: LinExpr<V>, rhs: LinExpr<V>) -> Self {
        Self::compare(lhs, RelOp::Ne, rhs)
    }

    /// The logically negated constraint.
    pub fn negate(&self) -> Self {
        LinearConstraint {
            expr: self.expr.clone(),
            op: self.op.negate(),
        }
    }

    /// Evaluates the constraint under a valuation.
    ///
    /// Returns `None` if some variable is unassigned.
    pub fn eval<F>(&self, valuation: F) -> Option<bool>
    where
        F: FnMut(&V) -> Option<Rational>,
    {
        Some(self.op.holds(self.expr.eval(valuation)?))
    }

    /// Variables mentioned by the constraint.
    pub fn variables(&self) -> impl Iterator<Item = &V> {
        self.expr.variables()
    }

    /// Returns `true` if the constraint mentions no variable and is trivially
    /// true, `false` if trivially false, `None` if it has variables.
    pub fn constant_truth(&self) -> Option<bool> {
        if self.expr.is_constant() {
            Some(self.op.holds(self.expr.constant_term()))
        } else {
            None
        }
    }

    /// Renames every variable through `f`.
    pub fn rename<W: Ord + Clone, F>(&self, f: F) -> LinearConstraint<W>
    where
        F: FnMut(&V) -> W,
    {
        LinearConstraint {
            expr: self.expr.rename(f),
            op: self.op,
        }
    }
}

impl<V: Ord + fmt::Display> fmt::Display for LinearConstraint<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} 0", self.expr, self.op)
    }
}

impl<V: Ord + fmt::Debug> fmt::Debug for LinearConstraint<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} {} 0", self.expr, self.op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::from_int(n)
    }

    #[test]
    fn building_and_coefficients() {
        let mut e: LinExpr<&'static str> = LinExpr::zero();
        e.add_term(r(2), "x");
        e.add_term(r(3), "y");
        e.add_term(r(-2), "x");
        e.add_constant(r(5));
        assert_eq!(e.coeff(&"x"), Rational::ZERO);
        assert_eq!(e.coeff(&"y"), r(3));
        assert_eq!(e.constant_term(), r(5));
        assert_eq!(e.variables().count(), 1);
    }

    #[test]
    fn addition_and_scaling() {
        let a = LinExpr::var("x") + LinExpr::constant(r(1));
        let b = LinExpr::term(r(2), "x") + LinExpr::var("y");
        let s = a.clone() + b;
        assert_eq!(s.coeff(&"x"), r(3));
        assert_eq!(s.coeff(&"y"), r(1));
        assert_eq!(s.constant_term(), r(1));
        let scaled = a.scale(r(-2));
        assert_eq!(scaled.coeff(&"x"), r(-2));
        assert_eq!(scaled.constant_term(), r(-2));
    }

    #[test]
    fn evaluation() {
        let e = LinExpr::term(r(2), "x") + LinExpr::term(r(-1), "y") + LinExpr::constant(r(3));
        let val = e
            .eval(|v| match *v {
                "x" => Some(r(4)),
                "y" => Some(r(1)),
                _ => None,
            })
            .unwrap();
        assert_eq!(val, r(10));
        assert!(e.eval(|_| None).is_none());
    }

    #[test]
    fn substitution_replaces_variable() {
        // x + 2y, substitute y := x + 1  =>  3x + 2
        let e = LinExpr::var("x") + LinExpr::term(r(2), "y");
        let sub = LinExpr::var("x") + LinExpr::constant(r(1));
        let out = e.substitute(&"y", &sub);
        assert_eq!(out.coeff(&"x"), r(3));
        assert_eq!(out.coeff(&"y"), Rational::ZERO);
        assert_eq!(out.constant_term(), r(2));
    }

    #[test]
    fn constraint_evaluation_and_negation() {
        // 2x - 4 <= 0
        let c = LinearConstraint::le(LinExpr::term(r(2), "x"), LinExpr::constant(r(4)));
        assert_eq!(c.eval(|_| Some(r(1))), Some(true));
        assert_eq!(c.eval(|_| Some(r(3))), Some(false));
        let n = c.negate();
        assert_eq!(n.op, RelOp::Gt);
        assert_eq!(n.eval(|_| Some(r(3))), Some(true));
    }

    #[test]
    fn normalization_identifies_scaled_hyperplanes() {
        let a = (LinExpr::term(r(2), "x") + LinExpr::constant(r(4))).normalized();
        let b = (LinExpr::term(r(6), "x") + LinExpr::constant(r(12))).normalized();
        assert_eq!(a, b);
    }

    #[test]
    fn relop_holds_matrix() {
        assert!(RelOp::Lt.holds(r(-1)));
        assert!(!RelOp::Lt.holds(r(0)));
        assert!(RelOp::Le.holds(r(0)));
        assert!(RelOp::Eq.holds(r(0)));
        assert!(RelOp::Ne.holds(r(2)));
        assert!(RelOp::Gt.holds(r(5)));
        assert!(RelOp::Ge.holds(r(0)));
    }

    #[test]
    fn display_is_readable() {
        let c = LinearConstraint::lt(
            LinExpr::term(r(1), "x") + LinExpr::term(r(-2), "y"),
            LinExpr::constant(r(3)),
        );
        let s = format!("{c}");
        assert!(s.contains('<'));
        assert!(s.contains('x'));
    }
}
