//! Sign conditions and cells.
//!
//! Section 5 of the paper partitions the space of numeric valuations into
//! *cells*: maximal sets of points that agree on the sign (`< 0`, `= 0`,
//! `> 0`) of every polynomial in a finite set `P`. A cell determines the
//! truth value of every arithmetic atom whose polynomial belongs to `P`, so
//! extending isomorphism types with a cell lets the symbolic verifier decide
//! arithmetic conditions without tracking concrete numeric values.
//!
//! In the linear fragment implemented here, a cell is a (possibly unbounded)
//! convex polyhedron carved out by strict/non-strict hyperplane constraints.
//! Non-empty cells are enumerated incrementally with Fourier–Motzkin
//! satisfiability checks, mirroring the naive enumeration procedure the paper
//! describes in Appendix D.2 (Theorem 63).

use crate::fm::{is_satisfiable, project_onto, sample_point};
use crate::linear::{LinExpr, LinearConstraint, RelOp};
use crate::rational::Rational;
use std::collections::BTreeSet;
use std::fmt;
use std::hash::Hash;
use std::sync::Arc;

/// The sign of a polynomial inside a cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Sign {
    /// The polynomial is strictly negative on the cell.
    Neg,
    /// The polynomial is identically zero on the cell.
    Zero,
    /// The polynomial is strictly positive on the cell.
    Pos,
}

impl Sign {
    /// All three signs, in a fixed enumeration order.
    pub const ALL: [Sign; 3] = [Sign::Neg, Sign::Zero, Sign::Pos];

    /// The constraint `expr sign 0` corresponding to this sign.
    pub fn to_op(self) -> RelOp {
        match self {
            Sign::Neg => RelOp::Lt,
            Sign::Zero => RelOp::Eq,
            Sign::Pos => RelOp::Gt,
        }
    }

    /// The sign of a concrete rational value.
    pub fn of(value: Rational) -> Sign {
        match value.signum() {
            s if s < 0 => Sign::Neg,
            0 => Sign::Zero,
            _ => Sign::Pos,
        }
    }

    /// Whether a relational operator is satisfied by values of this sign.
    pub fn satisfies(self, op: RelOp) -> bool {
        matches!(
            (op, self),
            (RelOp::Lt, Sign::Neg)
                | (RelOp::Le, Sign::Neg | Sign::Zero)
                | (RelOp::Eq, Sign::Zero)
                | (RelOp::Ne, Sign::Neg | Sign::Pos)
                | (RelOp::Gt, Sign::Pos)
                | (RelOp::Ge, Sign::Pos | Sign::Zero)
        )
    }
}

/// A full sign condition: one sign per polynomial of the underlying set.
pub type SignCondition = Vec<Sign>;

/// Index of a cell within a [`CellSet`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub usize);

/// A single cell: a sign condition over a shared polynomial set.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Cell<V: Ord> {
    polys: Arc<Vec<LinExpr<V>>>,
    signs: SignCondition,
}

impl<V: Ord + Clone + Hash> Cell<V> {
    /// Creates a cell from a polynomial set and a sign condition.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn new(polys: Arc<Vec<LinExpr<V>>>, signs: SignCondition) -> Self {
        assert_eq!(polys.len(), signs.len(), "one sign per polynomial");
        Cell { polys, signs }
    }

    /// The polynomials this cell is defined over.
    pub fn polynomials(&self) -> &[LinExpr<V>] {
        &self.polys
    }

    /// The sign condition of this cell.
    pub fn signs(&self) -> &[Sign] {
        &self.signs
    }

    /// The sign this cell assigns to a polynomial, if the polynomial (after
    /// normalization) belongs to the cell's defining set.
    pub fn sign_of(&self, poly: &LinExpr<V>) -> Option<Sign> {
        let norm = poly.normalized();
        let neg = poly.clone().scale(-Rational::ONE).normalized();
        for (p, s) in self.polys.iter().zip(&self.signs) {
            if *p == norm {
                return Some(*s);
            }
            if *p == neg {
                return Some(match *s {
                    Sign::Neg => Sign::Pos,
                    Sign::Zero => Sign::Zero,
                    Sign::Pos => Sign::Neg,
                });
            }
        }
        None
    }

    /// The conjunction of linear constraints defining the cell.
    pub fn constraints(&self) -> Vec<LinearConstraint<V>> {
        self.polys
            .iter()
            .zip(&self.signs)
            .map(|(p, s)| LinearConstraint::new(p.clone(), s.to_op()))
            .collect()
    }

    /// Decides whether an arithmetic atom holds throughout this cell, is
    /// false throughout this cell, or is not determined by the cell (its
    /// polynomial is outside the defining set and cuts the cell).
    pub fn decides(&self, constraint: &LinearConstraint<V>) -> Option<bool> {
        if let Some(sign) = self.sign_of(&constraint.expr) {
            // Scaling by the normalization factor (positive) preserves sign.
            return Some(sign.satisfies(constraint.op));
        }
        // Fall back to entailment checks on the defining constraints.
        let mut with_c = self.constraints();
        with_c.push(constraint.clone());
        let mut with_not_c = self.constraints();
        with_not_c.push(constraint.negate());
        match (is_satisfiable(&with_c), is_satisfiable(&with_not_c)) {
            (true, false) => Some(true),
            (false, true) => Some(false),
            _ => None,
        }
    }

    /// Returns `true` if the cell is non-empty (satisfiable).
    pub fn is_nonempty(&self) -> bool {
        is_satisfiable(&self.constraints())
    }

    /// A rational point inside the cell, if the cell is non-empty.
    pub fn witness(&self) -> Option<Vec<(V, Rational)>> {
        sample_point(&self.constraints())
    }

    /// Projects the cell onto the variables in `keep`: the result is the set
    /// of constraint systems (a disjunction) describing the shadow of this
    /// polyhedron, obtained by Fourier–Motzkin elimination — the linear
    /// counterpart of the paper's Tarski–Seidenberg projection step.
    pub fn project(&self, keep: &BTreeSet<V>) -> Vec<Vec<LinearConstraint<V>>> {
        project_onto(&self.constraints(), keep)
    }

    /// Checks compatibility of two cells on a set of shared variables: their
    /// projections onto `shared` intersect. This is the test used when
    /// opening/closing a child task (Section 5).
    pub fn compatible_on(&self, other: &Cell<V>, shared: &BTreeSet<V>) -> bool {
        let mine = self.project(shared);
        let theirs = other.project(shared);
        for a in &mine {
            for b in &theirs {
                let mut all = a.clone();
                all.extend(b.iter().cloned());
                if is_satisfiable(&all) {
                    return true;
                }
            }
        }
        false
    }

    /// Checks that this cell *refines* `other` on the shared variables: every
    /// point of this cell's projection lies inside `other`'s projection.
    /// This is the condition imposed on internal-service transitions
    /// (case (i) in Section 5).
    pub fn refines_on(&self, other: &Cell<V>, shared: &BTreeSet<V>) -> bool {
        let mine = self.project(shared);
        let theirs = other.project(shared);
        // refinement: mine ⊆ union(theirs). For cells of a common
        // decomposition the union is a single convex piece, so we check each
        // of `mine`'s pieces is contained in some piece of `theirs` by
        // verifying mine ∧ ¬constraint is unsatisfiable for each defining
        // constraint of the candidate piece.
        'outer: for a in &mine {
            for b in &theirs {
                let mut contained = true;
                for c in b {
                    let mut sys = a.clone();
                    sys.push(c.negate());
                    if is_satisfiable(&sys) {
                        contained = false;
                        break;
                    }
                }
                if contained {
                    continue 'outer;
                }
            }
            return false;
        }
        true
    }
}

impl<V: Ord + fmt::Display> fmt::Display for Cell<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cell[")?;
        for (i, (p, s)) in self.polys.iter().zip(&self.signs).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p} {} 0", s.to_op())?;
        }
        write!(f, "]")
    }
}

impl<V: Ord> fmt::Debug for Cell<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cell({} polynomials, signs {:?})", self.polys.len(), self.signs)
    }
}

/// The set of all non-empty cells over a fixed polynomial set.
#[derive(Clone)]
pub struct CellSet<V: Ord> {
    polys: Arc<Vec<LinExpr<V>>>,
    cells: Vec<SignCondition>,
}

impl<V: Ord + Clone + Hash> CellSet<V> {
    /// Enumerates all non-empty cells over the given polynomials.
    ///
    /// Polynomials are normalized and deduplicated first (two polynomials
    /// that are positive multiples of each other induce the same sign
    /// pattern). Enumeration is incremental: partial sign conditions that are
    /// already unsatisfiable are pruned, which keeps the cost proportional to
    /// the number of non-empty cells rather than `3^|P|` — the practical
    /// counterpart of the cell bound of Theorem 62.
    pub fn enumerate(polynomials: &[LinExpr<V>]) -> Self {
        let mut polys: Vec<LinExpr<V>> = Vec::new();
        for p in polynomials {
            if p.is_constant() {
                continue;
            }
            let n = p.normalized();
            let neg = p.clone().scale(-Rational::ONE).normalized();
            if !polys.contains(&n) && !polys.contains(&neg) {
                polys.push(n);
            }
        }
        let polys = Arc::new(polys);

        let mut partials: Vec<(SignCondition, Vec<LinearConstraint<V>>)> =
            vec![(Vec::new(), Vec::new())];
        for p in polys.iter() {
            let mut next = Vec::new();
            for (signs, constraints) in &partials {
                for s in Sign::ALL {
                    let mut cs = constraints.clone();
                    cs.push(LinearConstraint::new(p.clone(), s.to_op()));
                    if is_satisfiable(&cs) {
                        let mut sg = signs.clone();
                        sg.push(s);
                        next.push((sg, cs));
                    }
                }
            }
            partials = next;
        }
        CellSet {
            polys,
            cells: partials.into_iter().map(|(s, _)| s).collect(),
        }
    }

    /// The defining polynomial set (normalized, deduplicated).
    pub fn polynomials(&self) -> &[LinExpr<V>] {
        &self.polys
    }

    /// Number of non-empty cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Returns `true` if there are no cells (only possible when there are no
    /// polynomials — in which case there is exactly one trivial cell, so this
    /// is in fact never `true`; provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// The cell with the given id.
    pub fn cell(&self, id: CellId) -> Cell<V> {
        Cell::new(self.polys.clone(), self.cells[id.0].clone())
    }

    /// Iterates over all `(id, cell)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (CellId, Cell<V>)> + '_ {
        self.cells
            .iter()
            .enumerate()
            .map(|(i, s)| (CellId(i), Cell::new(self.polys.clone(), s.clone())))
    }

    /// Finds the cell containing a concrete point.
    pub fn locate<F>(&self, mut valuation: F) -> Option<CellId>
    where
        F: FnMut(&V) -> Option<Rational>,
    {
        let mut signs = Vec::with_capacity(self.polys.len());
        for p in self.polys.iter() {
            signs.push(Sign::of(p.eval(&mut valuation)?));
        }
        self.cells
            .iter()
            .position(|s| *s == signs)
            .map(CellId)
    }
}

impl<V: Ord> fmt::Debug for CellSet<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CellSet({} polynomials, {} cells)",
            self.polys.len(),
            self.cells.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::from_int(n)
    }
    fn x() -> LinExpr<&'static str> {
        LinExpr::var("x")
    }
    fn y() -> LinExpr<&'static str> {
        LinExpr::var("y")
    }

    #[test]
    fn single_polynomial_gives_three_cells() {
        let cs = CellSet::enumerate(&[x()]);
        assert_eq!(cs.len(), 3);
    }

    #[test]
    fn two_parallel_hyperplanes_give_five_cells() {
        // x and x - 1: regions x<0, x=0, 0<x<1, x=1, x>1.
        let p2 = x() - LinExpr::constant(r(1));
        let cs = CellSet::enumerate(&[x(), p2]);
        assert_eq!(cs.len(), 5);
    }

    #[test]
    fn duplicate_and_negated_polynomials_are_merged() {
        let cs = CellSet::enumerate(&[x(), x().scale(r(3)), x().scale(r(-2))]);
        assert_eq!(cs.polynomials().len(), 1);
        assert_eq!(cs.len(), 3);
    }

    #[test]
    fn two_independent_variables_give_nine_cells() {
        let cs = CellSet::enumerate(&[x(), y()]);
        assert_eq!(cs.len(), 9);
    }

    #[test]
    fn locate_finds_the_right_cell() {
        let cs = CellSet::enumerate(&[x(), y()]);
        let id = cs
            .locate(|v| Some(if *v == "x" { r(2) } else { r(-5) }))
            .unwrap();
        let cell = cs.cell(id);
        assert_eq!(cell.sign_of(&x()), Some(Sign::Pos));
        assert_eq!(cell.sign_of(&y()), Some(Sign::Neg));
    }

    #[test]
    fn cells_decide_atoms_over_their_polynomials() {
        let cs = CellSet::enumerate(&[x() - LinExpr::constant(r(3))]);
        // Cell with x - 3 > 0 must decide x > 3 as true and x <= 3 as false.
        let (_, cell) = cs
            .iter()
            .find(|(_, c)| c.signs()[0] == Sign::Pos)
            .unwrap();
        let gt = LinearConstraint::gt(x(), LinExpr::constant(r(3)));
        let le = LinearConstraint::le(x(), LinExpr::constant(r(3)));
        assert_eq!(cell.decides(&gt), Some(true));
        assert_eq!(cell.decides(&le), Some(false));
        // An atom on an unrelated hyperplane that cuts the cell is undecided.
        let cut = LinearConstraint::gt(x(), LinExpr::constant(r(10)));
        assert_eq!(cell.decides(&cut), None);
    }

    #[test]
    fn witness_lies_in_cell() {
        let cs = CellSet::enumerate(&[x(), y() - x()]);
        for (_, cell) in cs.iter() {
            let w = cell.witness().expect("non-empty cell has a witness");
            let get = |v: &&str| w.iter().find(|(n, _)| n == v).map(|(_, r)| *r);
            for c in cell.constraints() {
                assert_eq!(c.eval(|v| get(v).or(Some(Rational::ZERO))), Some(true));
            }
        }
    }

    #[test]
    fn projection_and_compatibility() {
        // Cell A: x > 0, y > 0. Cell B over the same polys: x > 0, y < 0.
        let cs = CellSet::enumerate(&[x(), y()]);
        let pick = |sx: Sign, sy: Sign| {
            cs.iter()
                .find(|(_, c)| c.signs() == [sx, sy])
                .map(|(_, c)| c)
                .unwrap()
        };
        let a = pick(Sign::Pos, Sign::Pos);
        let b = pick(Sign::Pos, Sign::Neg);
        let c = pick(Sign::Neg, Sign::Neg);
        let shared: BTreeSet<_> = ["x"].into_iter().collect();
        assert!(a.compatible_on(&b, &shared));
        assert!(!a.compatible_on(&c, &shared));
        assert!(a.refines_on(&b, &shared));
        assert!(!a.refines_on(&c, &shared));
    }

    #[test]
    fn no_polynomials_single_trivial_cell() {
        let cs = CellSet::enumerate(&[] as &[LinExpr<&'static str>]);
        assert_eq!(cs.len(), 1);
        let cell = cs.cell(CellId(0));
        assert!(cell.is_nonempty());
    }
}
