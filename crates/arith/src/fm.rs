//! Fourier–Motzkin elimination over the rationals.
//!
//! This is the quantifier-elimination engine of the arithmetic extension
//! (Section 5 of the paper). The paper relies on Tarski–Seidenberg quantifier
//! elimination for polynomial constraints; for the linear fragment we
//! implement here (which the paper states is sufficient, with the same
//! complexity results), Fourier–Motzkin elimination is a complete procedure:
//!
//! * [`is_satisfiable`] decides satisfiability over ℚ of a conjunction of
//!   linear constraints (including strict inequalities, equalities and
//!   disequalities),
//! * [`eliminate_variable`] computes an equivalent conjunction not mentioning
//!   a given variable (the projection step used when projecting cells onto
//!   shared parent/child variables),
//! * [`project_onto`] projects onto an arbitrary subset of variables,
//! * [`sample_point`] produces a rational witness of a satisfiable system
//!   (used by tests and by the simulator to instantiate numeric variables).

use crate::linear::{LinExpr, LinearConstraint, RelOp};
use crate::rational::Rational;
use std::collections::BTreeSet;
use std::hash::Hash;

/// A conjunction of linear constraints, the unit on which elimination works.
pub type System<V> = Vec<LinearConstraint<V>>;

/// Variable bindings accumulated while eliminating equalities: each entry
/// maps a variable to the expression substituted for it.
type Bindings<V> = Vec<(V, LinExpr<V>)>;

/// Splits away disequalities: each `e ≠ 0` becomes a case split into
/// `e < 0` and `e > 0`. Returns the list of case systems (exponential in the
/// number of disequalities, which are rare in practice and bounded by the
/// specification size).
fn split_disequalities<V: Ord + Clone>(system: &[LinearConstraint<V>]) -> Vec<System<V>> {
    let mut cases: Vec<System<V>> = vec![Vec::new()];
    for c in system {
        match c.op {
            RelOp::Ne => {
                let mut next = Vec::with_capacity(cases.len() * 2);
                for case in &cases {
                    let mut lt = case.clone();
                    lt.push(LinearConstraint::new(c.expr.clone(), RelOp::Lt));
                    let mut gt = case.clone();
                    gt.push(LinearConstraint::new(c.expr.clone(), RelOp::Gt));
                    next.push(lt);
                    next.push(gt);
                }
                cases = next;
            }
            _ => {
                for case in &mut cases {
                    case.push(c.clone());
                }
            }
        }
    }
    cases
}

/// Eliminates equalities by substitution: for each `e = 0` with some variable
/// `x` of non-zero coefficient `c`, substitutes `x := -(e - c·x)/c` in every
/// other constraint. Returns `None` if a constant contradiction is found.
fn eliminate_equalities<V: Ord + Clone + Hash>(
    mut system: System<V>,
) -> Option<(System<V>, Bindings<V>)> {
    let mut bindings: Bindings<V> = Vec::new();
    loop {
        // Find an equality with at least one variable.
        let idx = system
            .iter()
            .position(|c| c.op == RelOp::Eq && !c.expr.is_constant());
        let Some(idx) = idx else {
            // Check constant equalities.
            for c in &system {
                if let Some(false) = c.constant_truth() {
                    return None;
                }
            }
            system.retain(|c| c.constant_truth().is_none());
            return Some((system, bindings));
        };
        let eqc = system.swap_remove(idx);
        let (var, coeff) = {
            let (v, c) = eqc.expr.terms().next().expect("non-constant equality");
            (v.clone(), *c)
        };
        // e = coeff*var + rest = 0  =>  var = -rest/coeff
        let mut rest = eqc.expr.clone();
        rest.add_term(-coeff, var.clone());
        let sub = rest.scale(-(coeff.recip()));
        for c in &mut system {
            c.expr = c.expr.substitute(&var, &sub);
        }
        for (_, b) in &mut bindings {
            *b = b.substitute(&var, &sub);
        }
        bindings.push((var, sub));
    }
}

/// One Fourier–Motzkin elimination step on a system containing only
/// inequalities (`<`, `≤`, `>`, `≥`); the variable `x` is removed.
fn fm_step<V: Ord + Clone>(system: &[LinearConstraint<V>], x: &V) -> System<V> {
    // Normalize all constraints to the form  expr ≤ 0  or  expr < 0.
    let mut uppers: Vec<(LinExpr<V>, bool)> = Vec::new(); // x ≤ bound (strict?)
    let mut lowers: Vec<(LinExpr<V>, bool)> = Vec::new(); // x ≥ bound (strict?)
    let mut rest: System<V> = Vec::new();

    for c in system {
        let (expr, op) = match c.op {
            RelOp::Gt => (c.expr.clone().scale(-Rational::ONE), RelOp::Lt),
            RelOp::Ge => (c.expr.clone().scale(-Rational::ONE), RelOp::Le),
            _ => (c.expr.clone(), c.op),
        };
        let coeff = expr.coeff(x);
        if coeff.is_zero() {
            rest.push(LinearConstraint::new(expr, op));
            continue;
        }
        // expr = coeff*x + r  (op)  0
        let mut r = expr.clone();
        r.add_term(-coeff, x.clone());
        let bound = r.scale(-(coeff.recip())); // x (op') bound
        let strict = op == RelOp::Lt;
        if coeff.is_positive() {
            // coeff*x + r < 0  =>  x < -r/coeff
            uppers.push((bound, strict));
        } else {
            // coeff*x + r < 0 with coeff < 0  =>  x > -r/coeff
            lowers.push((bound, strict));
        }
    }

    for (lo, lo_strict) in &lowers {
        for (up, up_strict) in &uppers {
            // lo (<|≤) x (<|≤) up   =>   lo - up (<|≤) 0
            let expr = lo.clone() - up.clone();
            let op = if *lo_strict || *up_strict {
                RelOp::Lt
            } else {
                RelOp::Le
            };
            rest.push(LinearConstraint::new(expr, op));
        }
    }
    rest
}

/// Removes constraints that are constant and true; returns `None` if any is
/// constant and false.
fn simplify<V: Ord + Clone>(system: System<V>) -> Option<System<V>> {
    let mut out = Vec::with_capacity(system.len());
    let mut seen = BTreeSet::new();
    for c in system {
        match c.constant_truth() {
            Some(true) => {}
            Some(false) => return None,
            None => {
                if seen.insert((c.expr.clone(), c.op)) {
                    out.push(c);
                }
            }
        }
    }
    Some(out)
}

/// Decides whether a conjunction of linear constraints is satisfiable over ℚ.
pub fn is_satisfiable<V: Ord + Clone + Hash>(system: &[LinearConstraint<V>]) -> bool {
    sample_point(system).is_some()
}

/// Produces a satisfying rational assignment for the system, if one exists.
///
/// The assignment covers every variable mentioned by the system; unmentioned
/// variables are unconstrained and absent from the result.
pub fn sample_point<V: Ord + Clone + Hash>(
    system: &[LinearConstraint<V>],
) -> Option<Vec<(V, Rational)>> {
    'cases: for case in split_disequalities(system) {
        let Some((ineqs, bindings)) = eliminate_equalities(case) else {
            continue;
        };
        let Some(mut sys) = simplify(ineqs) else {
            continue;
        };
        // Eliminate variables one by one, remembering the elimination order so
        // a witness can be rebuilt by back-substitution.
        let mut order: Vec<(V, System<V>)> = Vec::new();
        loop {
            let var = sys.iter().flat_map(|c| c.variables()).next().cloned();
            let Some(var) = var else { break };
            let before = sys.clone();
            let next = fm_step(&sys, &var);
            let Some(next) = simplify(next) else {
                continue 'cases;
            };
            order.push((var, before));
            sys = next;
        }
        // All remaining constraints are constant and true: build a witness.
        let mut assignment: Vec<(V, Rational)> = Vec::new();
        let lookup = |assignment: &[(V, Rational)], v: &V| -> Option<Rational> {
            assignment
                .iter()
                .find(|(w, _)| w == v)
                .map(|(_, r)| *r)
        };
        for (var, constraints) in order.iter().rev() {
            // Compute tightest bounds on `var` under the current partial
            // assignment (all later-eliminated variables are already set).
            let mut lower: Option<(Rational, bool)> = None; // (bound, strict)
            let mut upper: Option<(Rational, bool)> = None;
            for c in constraints {
                let (expr, op) = match c.op {
                    RelOp::Gt => (c.expr.clone().scale(-Rational::ONE), RelOp::Lt),
                    RelOp::Ge => (c.expr.clone().scale(-Rational::ONE), RelOp::Le),
                    _ => (c.expr.clone(), c.op),
                };
                let coeff = expr.coeff(var);
                if coeff.is_zero() {
                    continue;
                }
                let mut r = expr.clone();
                r.add_term(-coeff, var.clone());
                let bound_expr = r.scale(-(coeff.recip()));
                // Variables that were dropped by the FM projection without
                // ever being eliminated are unconstrained relative to the
                // remaining system; fix them at zero (consistently, by
                // recording the choice) before evaluating the bound.
                let free_vars: Vec<V> = bound_expr
                    .variables()
                    .filter(|v| lookup(&assignment, v).is_none())
                    .cloned()
                    .collect();
                for v in free_vars {
                    assignment.push((v, Rational::ZERO));
                }
                let bound = bound_expr
                    .eval(|v| lookup(&assignment, v))
                    .expect("all variables assigned");
                let strict = op == RelOp::Lt;
                if coeff.is_positive() {
                    // upper bound
                    let tighter = match upper {
                        None => true,
                        Some((b, s)) => bound < b || (bound == b && strict && !s),
                    };
                    if tighter {
                        upper = Some((bound, strict));
                    }
                } else {
                    let tighter = match lower {
                        None => true,
                        Some((b, s)) => bound > b || (bound == b && strict && !s),
                    };
                    if tighter {
                        lower = Some((bound, strict));
                    }
                }
            }
            let value = match (lower, upper) {
                (None, None) => Rational::ZERO,
                (Some((lo, strict)), None) => {
                    if strict {
                        lo + Rational::ONE
                    } else {
                        lo
                    }
                }
                (None, Some((up, strict))) => {
                    if strict {
                        up - Rational::ONE
                    } else {
                        up
                    }
                }
                (Some((lo, ls)), Some((up, us))) => {
                    if !ls && !us && lo == up {
                        lo
                    } else {
                        // The FM projection guarantees lo (< / ≤) up holds.
                        lo.midpoint(&up)
                    }
                }
            };
            assignment.push((var.clone(), value));
        }
        // Back-substitute the equality bindings (in reverse order of
        // creation). Variables that never received a value are unconstrained
        // and are fixed at zero, consistently across all bindings.
        for (var, expr) in bindings.iter().rev() {
            let free_vars: Vec<V> = expr
                .variables()
                .filter(|v| lookup(&assignment, v).is_none())
                .cloned()
                .collect();
            for v in free_vars {
                assignment.push((v, Rational::ZERO));
            }
            let value = expr
                .eval(|v| lookup(&assignment, v))
                .expect("all variables assigned");
            assignment.push((var.clone(), value));
        }
        return Some(assignment);
    }
    None
}

/// Eliminates a single variable existentially: the returned system holds for
/// a valuation of the remaining variables iff some value of `x` makes the
/// original system hold.
///
/// Disequalities and equalities are handled by case-splitting / substitution;
/// the result is returned in disjunctive normal form (a vector of conjunctive
/// systems), since eliminating a variable from a disequality case split can
/// produce a genuine disjunction.
pub fn eliminate_variable<V: Ord + Clone + Hash>(
    system: &[LinearConstraint<V>],
    x: &V,
) -> Vec<System<V>> {
    let mut out = Vec::new();
    for case in split_disequalities(system) {
        // Substitute x away if it occurs in an equality; otherwise FM-step it.
        let mut eq_with_x = None;
        for (i, c) in case.iter().enumerate() {
            if c.op == RelOp::Eq && !c.expr.coeff(x).is_zero() {
                eq_with_x = Some(i);
                break;
            }
        }
        let projected: System<V> = if let Some(i) = eq_with_x {
            let mut case = case.clone();
            let eqc = case.swap_remove(i);
            let coeff = eqc.expr.coeff(x);
            let mut rest = eqc.expr.clone();
            rest.add_term(-coeff, x.clone());
            let sub = rest.scale(-(coeff.recip()));
            case.into_iter()
                .map(|c| LinearConstraint::new(c.expr.substitute(x, &sub), c.op))
                .collect()
        } else {
            // Split eq constraints not mentioning x are kept; only
            // inequalities mentioning x participate in the FM step.
            let (with_x, without_x): (Vec<_>, Vec<_>) =
                case.into_iter().partition(|c| !c.expr.coeff(x).is_zero());
            let mut fm = fm_step(&with_x, x);
            fm.extend(without_x);
            fm
        };
        if let Some(s) = simplify(projected) { out.push(s) }
    }
    if out.is_empty() {
        // All cases contradictory: represent "false" as a single impossible
        // system so callers can distinguish it from "no constraints".
        out.push(vec![LinearConstraint::new(
            LinExpr::constant(Rational::ONE),
            RelOp::Lt,
        )]);
    }
    out
}

/// Projects a conjunction onto the variables in `keep`, eliminating all other
/// variables existentially. The result is a disjunction of conjunctions.
pub fn project_onto<V: Ord + Clone + Hash>(
    system: &[LinearConstraint<V>],
    keep: &BTreeSet<V>,
) -> Vec<System<V>> {
    let mut to_eliminate: Vec<V> = system
        .iter()
        .flat_map(|c| c.variables().cloned())
        .filter(|v| !keep.contains(v))
        .collect();
    to_eliminate.sort();
    to_eliminate.dedup();

    let mut disjuncts: Vec<System<V>> = vec![system.to_vec()];
    for v in &to_eliminate {
        let mut next = Vec::new();
        for d in &disjuncts {
            next.extend(eliminate_variable(d, v));
        }
        disjuncts = next;
    }
    // Drop unsatisfiable disjuncts.
    disjuncts.retain(|d| is_satisfiable(d));
    disjuncts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::from_int(n)
    }
    fn x() -> LinExpr<&'static str> {
        LinExpr::var("x")
    }
    fn y() -> LinExpr<&'static str> {
        LinExpr::var("y")
    }
    fn c(n: i64) -> LinExpr<&'static str> {
        LinExpr::constant(r(n))
    }

    #[test]
    fn satisfiable_simple_band() {
        // 1 <= x <= 3
        let sys = vec![
            LinearConstraint::ge(x(), c(1)),
            LinearConstraint::le(x(), c(3)),
        ];
        assert!(is_satisfiable(&sys));
        let pt = sample_point(&sys).unwrap();
        let v = pt.iter().find(|(n, _)| *n == "x").unwrap().1;
        assert!(v >= r(1) && v <= r(3));
    }

    #[test]
    fn unsatisfiable_contradiction() {
        let sys = vec![
            LinearConstraint::gt(x(), c(3)),
            LinearConstraint::lt(x(), c(1)),
        ];
        assert!(!is_satisfiable(&sys));
    }

    #[test]
    fn strict_vs_nonstrict_boundary() {
        // x < 1 && x >= 1 unsat; x <= 1 && x >= 1 sat.
        let unsat = vec![
            LinearConstraint::lt(x(), c(1)),
            LinearConstraint::ge(x(), c(1)),
        ];
        assert!(!is_satisfiable(&unsat));
        let sat = vec![
            LinearConstraint::le(x(), c(1)),
            LinearConstraint::ge(x(), c(1)),
        ];
        let pt = sample_point(&sat).unwrap();
        assert_eq!(pt.iter().find(|(n, _)| *n == "x").unwrap().1, r(1));
    }

    #[test]
    fn equalities_are_substituted() {
        // x = 2y && x + y = 6  =>  y = 2, x = 4
        let sys = vec![
            LinearConstraint::eq(x(), y().scale(r(2))),
            LinearConstraint::eq(x() + y(), c(6)),
        ];
        let pt = sample_point(&sys).unwrap();
        let get = |n: &str| pt.iter().find(|(m, _)| *m == n).unwrap().1;
        assert_eq!(get("x"), r(4));
        assert_eq!(get("y"), r(2));
    }

    #[test]
    fn disequality_case_split() {
        // x = 1 && x != 1 unsat; x != 1 sat.
        let unsat = vec![
            LinearConstraint::eq(x(), c(1)),
            LinearConstraint::ne(x(), c(1)),
        ];
        assert!(!is_satisfiable(&unsat));
        let sat = vec![LinearConstraint::ne(x(), c(1))];
        let pt = sample_point(&sat).unwrap();
        assert_ne!(pt.iter().find(|(n, _)| *n == "x").unwrap().1, r(1));
    }

    #[test]
    fn multi_variable_chain() {
        // x < y && y < x is unsat; x < y && y < z && z < x is unsat
        let sys = vec![
            LinearConstraint::lt(x(), y()),
            LinearConstraint::lt(y(), LinExpr::var("z")),
            LinearConstraint::lt(LinExpr::var("z"), x()),
        ];
        assert!(!is_satisfiable(&sys));
    }

    #[test]
    fn witness_satisfies_all_constraints() {
        let sys = vec![
            LinearConstraint::lt(x(), y()),
            LinearConstraint::lt(y(), c(10)),
            LinearConstraint::gt(x(), c(-3)),
            LinearConstraint::ge(x() + y(), c(0)),
        ];
        let pt = sample_point(&sys).unwrap();
        let get = |n: &str| pt.iter().find(|(m, _)| *m == n).map(|(_, v)| *v);
        for cst in &sys {
            assert_eq!(cst.eval(|v| get(v)), Some(true), "violated: {cst}");
        }
    }

    #[test]
    fn eliminate_variable_projection_semantics() {
        // exists y: x < y && y < 5   <=>   x < 5
        let sys = vec![
            LinearConstraint::lt(x(), y()),
            LinearConstraint::lt(y(), c(5)),
        ];
        let projected = eliminate_variable(&sys, &"y");
        assert_eq!(projected.len(), 1);
        let d = &projected[0];
        // x = 4 should satisfy, x = 5 should not.
        let holds = |val: i64| {
            d.iter()
                .all(|c| c.eval(|v| if *v == "x" { Some(r(val)) } else { None }) == Some(true))
        };
        assert!(holds(4));
        assert!(!holds(5));
    }

    #[test]
    fn project_onto_keeps_only_requested_variables() {
        let sys = vec![
            LinearConstraint::eq(x(), y() + c(1)),
            LinearConstraint::lt(y(), c(3)),
        ];
        let keep: BTreeSet<_> = ["x"].into_iter().collect();
        let disjuncts = project_onto(&sys, &keep);
        assert!(!disjuncts.is_empty());
        for d in &disjuncts {
            for cst in d {
                for v in cst.variables() {
                    assert_eq!(*v, "x");
                }
            }
        }
        // x must be < 4 in the projection.
        let holds = |val: i64| {
            disjuncts.iter().any(|d| {
                d.iter()
                    .all(|c| c.eval(|_| Some(r(val))) == Some(true))
            })
        };
        assert!(holds(3));
        assert!(!holds(4));
    }

    #[test]
    fn empty_system_is_satisfiable() {
        let sys: Vec<LinearConstraint<&'static str>> = vec![];
        assert!(is_satisfiable(&sys));
    }

    #[test]
    fn constant_false_detected() {
        let sys = vec![LinearConstraint::lt(c(3), c(1))];
        assert!(!is_satisfiable(&sys));
    }
}
