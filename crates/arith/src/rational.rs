//! Exact rational arithmetic on `i128`.
//!
//! The numeric domain of the HAS model is ℝ in the paper; all constants in
//! specifications are integers (polynomials with integer coefficients), and
//! the linear-arithmetic variant works over ℚ. An exact rational type is
//! therefore sufficient for every computation the verifier performs, and it
//! avoids the soundness pitfalls of floating point in satisfiability checks.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// An exact rational number `num / den` with `den > 0`, always kept in lowest
/// terms.
///
/// Arithmetic panics on overflow of the underlying `i128` representation;
/// the magnitudes arising in HAS specifications (hand-written constants and
/// Fourier–Motzkin combinations of them) stay far below that bound.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// The rational number zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational number one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates a rational from a numerator and denominator.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "Rational denominator must be non-zero");
        let sign = if den < 0 { -1 } else { 1 };
        let (num, den) = (num * sign, den * sign);
        let g = gcd(num, den);
        if g == 0 {
            Rational { num: 0, den: 1 }
        } else {
            Rational {
                num: num / g,
                den: den / g,
            }
        }
    }

    /// Creates a rational from an integer.
    pub fn from_int(n: i64) -> Self {
        Rational {
            num: n as i128,
            den: 1,
        }
    }

    /// Numerator (in lowest terms; carries the sign).
    pub fn numerator(&self) -> i128 {
        self.num
    }

    /// Denominator (in lowest terms; always positive).
    pub fn denominator(&self) -> i128 {
        self.den
    }

    /// Returns `true` if this rational is zero.
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Returns `true` if this rational is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// Returns `true` if this rational is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    /// Returns `true` if this rational is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// Sign of the rational: `-1`, `0` or `1`.
    pub fn signum(&self) -> i32 {
        self.num.signum() as i32
    }

    /// Absolute value.
    pub fn abs(&self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the rational is zero.
    pub fn recip(&self) -> Rational {
        assert!(self.num != 0, "cannot invert zero");
        Rational::new(self.den, self.num)
    }

    /// Returns the midpoint of `self` and `other`, useful for sampling a
    /// witness point strictly between two bounds.
    pub fn midpoint(&self, other: &Rational) -> Rational {
        (*self + *other) / Rational::from_int(2)
    }

    /// Approximate conversion to `f64` (for reporting only, never for
    /// decision procedures).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i64> for Rational {
    fn from(n: i64) -> Self {
        Rational::from_int(n)
    }
}

impl From<i32> for Rational {
    fn from(n: i32) -> Self {
        Rational::from_int(n as i64)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den - rhs.num * self.den, self.den * rhs.den)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.num, self.den * rhs.den)
    }
}

impl Div for Rational {
    type Output = Rational;
    fn div(self, rhs: Rational) -> Rational {
        assert!(rhs.num != 0, "division by zero rational");
        Rational::new(self.num * rhs.den, self.den * rhs.num)
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_to_lowest_terms() {
        let r = Rational::new(4, 8);
        assert_eq!(r.numerator(), 1);
        assert_eq!(r.denominator(), 2);
    }

    #[test]
    fn normalizes_sign_into_numerator() {
        let r = Rational::new(3, -6);
        assert_eq!(r.numerator(), -1);
        assert_eq!(r.denominator(), 2);
        assert!(r.is_negative());
    }

    #[test]
    fn zero_has_canonical_form() {
        let r = Rational::new(0, -17);
        assert_eq!(r, Rational::ZERO);
        assert!(r.is_zero());
        assert!(r.is_integer());
    }

    #[test]
    fn arithmetic_identities() {
        let a = Rational::new(1, 3);
        let b = Rational::new(1, 6);
        assert_eq!(a + b, Rational::new(1, 2));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 18));
        assert_eq!(a / b, Rational::from_int(2));
        assert_eq!(-a, Rational::new(-1, 3));
    }

    #[test]
    fn ordering_is_consistent_with_value() {
        let a = Rational::new(1, 3);
        let b = Rational::new(2, 5);
        assert!(a < b);
        assert!(Rational::from_int(-1) < Rational::ZERO);
        assert!(Rational::new(7, 2) > Rational::from_int(3));
    }

    #[test]
    fn recip_and_midpoint() {
        let a = Rational::new(2, 3);
        assert_eq!(a.recip(), Rational::new(3, 2));
        assert_eq!(
            Rational::from_int(1).midpoint(&Rational::from_int(2)),
            Rational::new(3, 2)
        );
    }

    #[test]
    #[should_panic]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Rational::new(3, 1).to_string(), "3");
        assert_eq!(Rational::new(-3, 4).to_string(), "-3/4");
    }
}
