//! Arithmetic substrate for the Hierarchical Artifact System verifier.
//!
//! The paper (Section 5) handles arithmetic constraints over numeric artifact
//! variables by partitioning the space of numeric valuations into *cells* —
//! sign conditions over a finite set of polynomials — and notes that one may
//! equivalently restrict to **linear inequalities with integer coefficients
//! over the rationals** "with the same complexity results". This crate
//! implements exactly that alternative:
//!
//! * [`Rational`] — exact rational numbers on `i128` with overflow-checked
//!   normalization.
//! * [`LinExpr`] / [`LinearConstraint`] — linear expressions and (in)equality
//!   constraints over an arbitrary ordered variable type.
//! * [`fm`] — Fourier–Motzkin elimination: satisfiability over ℚ and
//!   existential projection (the quantifier-elimination step the paper obtains
//!   from Tarski–Seidenberg in the polynomial case).
//! * [`lp`] — exact simplex over the rationals: feasibility and optimization
//!   for programs over non-negative variables, sized for the hundreds of
//!   variables that circulation problems on coverability graphs produce
//!   (where Fourier–Motzkin elimination would blow up).
//! * [`flow`] — the relaxed state-equation / circulation LP builder the
//!   static pre-solver of `has-analysis` instantiates per coverability and
//!   lasso query (DESIGN.md §5.11).
//! * [`cells`] — sign conditions, non-empty cell enumeration, refinement and
//!   projection of cells.
//! * [`hcd`] — the Hierarchical Cell Decomposition of Section 5 / Appendix D,
//!   computed bottom-up along a task hierarchy.
//!
//! # Worked example
//!
//! Decide satisfiability over ℚ with Fourier–Motzkin, then solve a small
//! feasibility program with the exact simplex (the engine behind the
//! circulation-based lasso queries of `has-vass`):
//!
//! ```
//! use has_arith::{is_satisfiable, LinExpr, LinearConstraint, LpCmp, LpProblem, Rational};
//!
//! // x < y together with x ≥ y is unsatisfiable; either half alone is fine.
//! let x = LinExpr::var("x");
//! let y = LinExpr::var("y");
//! let lt = LinearConstraint::lt(x.clone(), y.clone());
//! let ge = LinearConstraint::ge(x, y);
//! assert!(!is_satisfiable(&[lt.clone(), ge]));
//! assert!(is_satisfiable(&[lt]));
//!
//! // Simplex over non-negative variables: x₀ + x₁ = 1 and x₀ − x₁ ≥ 1
//! // admit exactly the point (1, 0).
//! let mut lp = LpProblem::new(2);
//! lp.add_constraint(&[(0, Rational::ONE), (1, Rational::ONE)], LpCmp::Eq, Rational::ONE);
//! lp.add_constraint(&[(0, Rational::ONE), (1, -Rational::ONE)], LpCmp::Ge, Rational::ONE);
//! assert_eq!(lp.feasible_point(), Some(vec![Rational::ONE, Rational::ZERO]));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cells;
pub mod flow;
pub mod fm;
pub mod hcd;
pub mod linear;
pub mod lp;
pub mod rational;

pub use cells::{Cell, CellId, CellSet, Sign, SignCondition};
pub use flow::FlowLp;
pub use fm::{eliminate_variable, is_satisfiable, project_onto};
pub use hcd::{HcdBuilder, HierarchicalCellDecomposition, TaskCells};
pub use linear::{LinExpr, LinearConstraint, RelOp};
pub use lp::{LpCmp, LpOutcome, LpProblem};
pub use rational::Rational;
