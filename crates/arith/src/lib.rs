//! Arithmetic substrate for the Hierarchical Artifact System verifier.
//!
//! The paper (Section 5) handles arithmetic constraints over numeric artifact
//! variables by partitioning the space of numeric valuations into *cells* —
//! sign conditions over a finite set of polynomials — and notes that one may
//! equivalently restrict to **linear inequalities with integer coefficients
//! over the rationals** "with the same complexity results". This crate
//! implements exactly that alternative:
//!
//! * [`Rational`] — exact rational numbers on `i128` with overflow-checked
//!   normalization.
//! * [`LinExpr`] / [`LinearConstraint`] — linear expressions and (in)equality
//!   constraints over an arbitrary ordered variable type.
//! * [`fm`] — Fourier–Motzkin elimination: satisfiability over ℚ and
//!   existential projection (the quantifier-elimination step the paper obtains
//!   from Tarski–Seidenberg in the polynomial case).
//! * [`lp`] — exact simplex over the rationals: feasibility and optimization
//!   for programs over non-negative variables, sized for the hundreds of
//!   variables that circulation problems on coverability graphs produce
//!   (where Fourier–Motzkin elimination would blow up).
//! * [`cells`] — sign conditions, non-empty cell enumeration, refinement and
//!   projection of cells.
//! * [`hcd`] — the Hierarchical Cell Decomposition of Section 5 / Appendix D,
//!   computed bottom-up along a task hierarchy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cells;
pub mod fm;
pub mod hcd;
pub mod linear;
pub mod lp;
pub mod rational;

pub use cells::{Cell, CellId, CellSet, Sign, SignCondition};
pub use fm::{eliminate_variable, is_satisfiable, project_onto};
pub use hcd::{HcdBuilder, HierarchicalCellDecomposition, TaskCells};
pub use linear::{LinExpr, LinearConstraint, RelOp};
pub use lp::{LpCmp, LpOutcome, LpProblem};
pub use rational::Rational;
