//! Hierarchical Cell Decomposition (HCD).
//!
//! Section 5 of the paper constructs, bottom-up over the task hierarchy, a
//! per-task collection of non-empty cells such that consistency of a symbolic
//! run can be ensured by purely *local* compatibility checks between the cell
//! of a transition and the cells of its parent/child tasks — avoiding the
//! retroactive cell-intersection problem described there.
//!
//! Construction, per task `T` (children first):
//! 1. start from the polynomials appearing in `T`'s arithmetic conditions
//!    (services and property sub-formulas referring to `T`);
//! 2. for every child `Tc`, project each of `Tc`'s cells onto the numeric
//!    variables/expressions shared with `T` (input and return variables),
//!    rename them into `T`'s variable space, and add the polynomials of the
//!    resulting constraint systems — the Tarski–Seidenberg step, realized for
//!    the linear fragment with Fourier–Motzkin elimination;
//! 3. enumerate the non-empty cells of the resulting polynomial set.
//!
//! The generic parameters keep this module independent of the HAS model
//! crate: tasks are identified by an arbitrary `usize` index supplied by the
//! caller, and numeric "variables" are whatever expression type the verifier
//! uses (task variables or navigation expressions).

use crate::cells::CellSet;
use crate::linear::LinExpr;
use std::collections::BTreeSet;
use std::hash::Hash;

/// The cells associated with one task of the hierarchy.
#[derive(Clone, Debug)]
pub struct TaskCells<V: Ord> {
    /// Index of the task in the caller's numbering.
    pub task: usize,
    /// The polynomial set the cells are defined over (own polynomials plus
    /// the projections contributed by descendant tasks).
    pub cell_set: CellSet<V>,
}

/// A hierarchical cell decomposition: one [`TaskCells`] per task.
#[derive(Clone, Debug)]
pub struct HierarchicalCellDecomposition<V: Ord> {
    tasks: Vec<TaskCells<V>>,
}

impl<V: Ord + Clone + Hash> HierarchicalCellDecomposition<V> {
    /// The cells of the given task.
    ///
    /// # Panics
    /// Panics if the task index was not declared to the builder.
    pub fn task(&self, task: usize) -> &TaskCells<V> {
        self.tasks
            .iter()
            .find(|t| t.task == task)
            .expect("task not part of the decomposition")
    }

    /// Iterates over all per-task cell sets.
    pub fn iter(&self) -> impl Iterator<Item = &TaskCells<V>> {
        self.tasks.iter()
    }

    /// Total number of cells across all tasks (the quantity bounded in
    /// Appendix D and measured by experiment EXP-F4).
    pub fn total_cells(&self) -> usize {
        self.tasks.iter().map(|t| t.cell_set.len()).sum()
    }
}

/// Description of one task handed to the [`HcdBuilder`].
struct TaskSpec<V: Ord> {
    task: usize,
    parent: Option<usize>,
    polynomials: Vec<LinExpr<V>>,
    /// Variables shared with the parent (already expressed in the *child's*
    /// variable space) together with the renaming into the parent's space.
    shared_with_parent: Vec<(V, V)>,
}

/// Builder for a [`HierarchicalCellDecomposition`].
pub struct HcdBuilder<V: Ord> {
    specs: Vec<TaskSpec<V>>,
}

impl<V: Ord + Clone + Hash> Default for HcdBuilder<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V: Ord + Clone + Hash> HcdBuilder<V> {
    /// Creates an empty builder.
    pub fn new() -> Self {
        HcdBuilder { specs: Vec::new() }
    }

    /// Declares a task.
    ///
    /// * `task` — caller-chosen index, unique per task;
    /// * `parent` — index of the parent task, `None` for the root;
    /// * `polynomials` — polynomials of the task's own arithmetic atoms;
    /// * `shared_with_parent` — pairs `(child_var, parent_var)` describing
    ///   the numeric variables passed on opening (input) or closing (return),
    ///   i.e. the variables on which cell compatibility must be checked.
    pub fn task(
        mut self,
        task: usize,
        parent: Option<usize>,
        polynomials: Vec<LinExpr<V>>,
        shared_with_parent: Vec<(V, V)>,
    ) -> Self {
        self.specs.push(TaskSpec {
            task,
            parent,
            polynomials,
            shared_with_parent,
        });
        self
    }

    /// Builds the decomposition bottom-up.
    ///
    /// # Panics
    /// Panics if a declared parent index is unknown or the parent/child graph
    /// has a cycle.
    pub fn build(self) -> HierarchicalCellDecomposition<V> {
        let n = self.specs.len();
        // Topologically order tasks children-first by repeatedly picking
        // tasks all of whose children are done.
        let mut done: Vec<bool> = vec![false; n];
        let mut order: Vec<usize> = Vec::with_capacity(n); // indices into specs
        while order.len() < n {
            let mut progressed = false;
            for i in 0..n {
                if done[i] {
                    continue;
                }
                let me = self.specs[i].task;
                let all_children_done = self
                    .specs
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.parent == Some(me))
                    .all(|(j, _)| done[j]);
                if all_children_done {
                    done[i] = true;
                    order.push(i);
                    progressed = true;
                }
            }
            assert!(progressed, "cycle in task hierarchy passed to HcdBuilder");
        }

        let mut built: Vec<TaskCells<V>> = Vec::with_capacity(n);
        // Extra polynomials propagated from children, keyed by spec index.
        let mut contributions: Vec<Vec<LinExpr<V>>> = vec![Vec::new(); n];

        for &i in &order {
            let spec = &self.specs[i];
            let mut polys = spec.polynomials.clone();
            polys.extend(contributions[i].iter().cloned());
            let cell_set = CellSet::enumerate(&polys);

            // Propagate projections to the parent, if any.
            if let Some(parent) = spec.parent {
                let parent_idx = self
                    .specs
                    .iter()
                    .position(|s| s.task == parent)
                    .expect("unknown parent task in HcdBuilder");
                let shared_child_vars: BTreeSet<V> = spec
                    .shared_with_parent
                    .iter()
                    .map(|(c, _)| c.clone())
                    .collect();
                let rename = |v: &V| -> V {
                    spec.shared_with_parent
                        .iter()
                        .find(|(c, _)| c == v)
                        .map(|(_, p)| p.clone())
                        .expect("projection produced a non-shared variable")
                };
                let mut propagated: Vec<LinExpr<V>> = Vec::new();
                for (_, cell) in cell_set.iter() {
                    for system in cell.project(&shared_child_vars) {
                        for constraint in system {
                            let renamed = constraint.expr.rename(rename);
                            if !renamed.is_constant() {
                                propagated.push(renamed.normalized());
                            }
                        }
                    }
                }
                contributions[parent_idx].extend(propagated);
            }

            built.push(TaskCells {
                task: spec.task,
                cell_set,
            });
        }

        HierarchicalCellDecomposition { tasks: built }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rational::Rational;

    fn var(name: &'static str) -> LinExpr<&'static str> {
        LinExpr::var(name)
    }
    fn c(n: i64) -> LinExpr<&'static str> {
        LinExpr::constant(Rational::from_int(n))
    }

    #[test]
    fn single_task_decomposition_matches_cellset() {
        let hcd = HcdBuilder::new()
            .task(0, None, vec![var("x")], vec![])
            .build();
        assert_eq!(hcd.task(0).cell_set.len(), 3);
        assert_eq!(hcd.total_cells(), 3);
    }

    #[test]
    fn child_polynomials_propagate_to_parent() {
        // Child constrains its input variable `cy` against 5; the parent has
        // no polynomial of its own over the shared variable `px`, but the
        // propagated projection must let the parent distinguish px vs 5.
        let child_poly = var("cy") - c(5);
        let hcd = HcdBuilder::new()
            .task(0, None, vec![], vec![])
            .task(1, Some(0), vec![child_poly], vec![("cy", "px")])
            .build();
        let parent = hcd.task(0);
        // Parent must now have at least the three cells induced by px - 5.
        assert!(parent.cell_set.len() >= 3, "{:?}", parent.cell_set);
        let has_px_poly = parent
            .cell_set
            .polynomials()
            .iter()
            .any(|p| p.coeff(&"px") != Rational::ZERO);
        assert!(has_px_poly);
    }

    #[test]
    fn grandchild_projections_reach_the_root_through_the_middle_task() {
        // Root(0) <- Mid(1) <- Leaf(2). Leaf constrains `z`; z is shared with
        // Mid as `m`, which is shared with Root as `r`.
        let hcd = HcdBuilder::new()
            .task(0, None, vec![], vec![])
            .task(1, Some(0), vec![], vec![("m", "r")])
            .task(2, Some(1), vec![var("z") - c(2)], vec![("z", "m")])
            .build();
        let root = hcd.task(0);
        let mentions_r = root
            .cell_set
            .polynomials()
            .iter()
            .any(|p| p.coeff(&"r") != Rational::ZERO);
        assert!(mentions_r, "{:?}", root.cell_set);
    }

    #[test]
    fn unrelated_child_variables_do_not_leak() {
        // Child constrains a private variable not shared with the parent:
        // the projection is trivial and the parent keeps a single cell.
        let hcd = HcdBuilder::new()
            .task(0, None, vec![], vec![])
            .task(1, Some(0), vec![var("private")], vec![("shared", "p_shared")])
            .build();
        assert_eq!(hcd.task(0).cell_set.len(), 1);
    }

    #[test]
    #[should_panic]
    fn cyclic_hierarchy_is_rejected() {
        let _ = HcdBuilder::<&'static str>::new()
            .task(0, Some(1), vec![], vec![])
            .task(1, Some(0), vec![], vec![])
            .build();
    }
}
