//! Exact linear programming over the rationals.
//!
//! A small dense-tableau simplex solver for programs over **non-negative**
//! variables, with exact [`Rational`] arithmetic throughout. It complements
//! the Fourier–Motzkin engine of [`crate::fm`]: elimination is the right tool
//! for *projection* (removing quantified variables symbolically), but its
//! constraint count can grow doubly exponentially with the number of
//! eliminated variables, which makes it unusable as a feasibility oracle for
//! systems with hundreds of variables. The simplex method decides the same
//! feasibility questions (for non-strict constraints) in time polynomial in
//! practice, and additionally optimizes linear objectives.
//!
//! The primary consumer is the exact lasso decision procedure of `has-vass`
//! (circulation feasibility on coverability graphs — Lemma 21 of the paper);
//! the module is deliberately free-standing so future symbolic work can reuse
//! it.
//!
//! Implementation notes:
//!
//! * Phase I minimizes the sum of artificial variables to find a basic
//!   feasible point; Phase II maximizes the caller's objective.
//! * Both phases pivot under **Bland's rule** (smallest entering index,
//!   smallest leaving basis index among ratio ties), which excludes cycling,
//!   so termination is unconditional.
//! * Unbounded objectives are reported together with a feasible point whose
//!   objective value strictly exceeds the last vertex visited — callers that
//!   only need "can this objective be positive?" (support computations) can
//!   use that point directly as a witness.

use crate::rational::Rational;

/// Comparison direction of one [`LpProblem`] constraint row.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LpCmp {
    /// `Σ aᵢ·xᵢ ≤ b`
    Le,
    /// `Σ aᵢ·xᵢ = b`
    Eq,
    /// `Σ aᵢ·xᵢ ≥ b`
    Ge,
}

#[derive(Clone, Debug)]
struct LpRow {
    /// Dense coefficient vector of length `num_vars`.
    coeffs: Vec<Rational>,
    cmp: LpCmp,
    rhs: Rational,
}

/// A linear program `{ x ≥ 0 : A·x (≤|=|≥) b }` over variables `x_0 … x_{n-1}`.
///
/// All variables are implicitly non-negative (the natural domain for the flow
/// and multiplicity problems this solver serves); model a free variable as a
/// difference of two non-negative ones if needed.
#[derive(Clone, Debug)]
pub struct LpProblem {
    num_vars: usize,
    rows: Vec<LpRow>,
}

/// Result of [`LpProblem::maximize`].
#[derive(Clone, Debug)]
pub enum LpOutcome {
    /// The constraint set is empty.
    Infeasible,
    /// A maximizer exists.
    Optimal {
        /// The optimal objective value.
        value: Rational,
        /// A point attaining it.
        point: Vec<Rational>,
    },
    /// The objective is unbounded above on the feasible set.
    Unbounded {
        /// A feasible point with objective value strictly greater than the
        /// best vertex found (one unit along the certifying ray).
        point: Vec<Rational>,
    },
}

impl LpProblem {
    /// Creates an empty program over `num_vars` non-negative variables.
    pub fn new(num_vars: usize) -> Self {
        LpProblem {
            num_vars,
            rows: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Adds the constraint `Σ coeffs·x (cmp) rhs`. Duplicate variable entries
    /// in `coeffs` are summed.
    ///
    /// # Panics
    /// Panics if a variable index is out of range.
    pub fn add_constraint(&mut self, coeffs: &[(usize, Rational)], cmp: LpCmp, rhs: Rational) {
        let mut dense = vec![Rational::ZERO; self.num_vars];
        for &(var, c) in coeffs {
            assert!(var < self.num_vars, "LP variable index out of range");
            dense[var] += c;
        }
        self.rows.push(LpRow {
            coeffs: dense,
            cmp,
            rhs,
        });
    }

    /// Returns a feasible point, if one exists.
    pub fn feasible_point(&self) -> Option<Vec<Rational>> {
        match self.maximize(&[]) {
            LpOutcome::Infeasible => None,
            LpOutcome::Optimal { point, .. } | LpOutcome::Unbounded { point } => Some(point),
        }
    }

    /// Returns `true` if the constraint set is non-empty.
    pub fn is_feasible(&self) -> bool {
        self.feasible_point().is_some()
    }

    /// Maximizes `Σ objective·x` over the feasible set (duplicate entries in
    /// `objective` are summed; an empty objective turns this into a pure
    /// feasibility check).
    pub fn maximize(&self, objective: &[(usize, Rational)]) -> LpOutcome {
        let mut tableau = Tableau::build(self);
        if !tableau.phase1() {
            return LpOutcome::Infeasible;
        }
        let mut obj = vec![Rational::ZERO; self.num_vars];
        for &(var, c) in objective {
            assert!(var < self.num_vars, "LP objective index out of range");
            obj[var] += c;
        }
        tableau.phase2(&obj)
    }
}

/// Dense simplex tableau: `rows × (cols + 1)` where the final column is the
/// right-hand side and every row has a distinct basic column.
struct Tableau {
    rows: Vec<Vec<Rational>>,
    basis: Vec<usize>,
    /// Number of variable columns (decision + slack + artificial).
    cols: usize,
    /// Number of decision variables (columns `0..num_vars`).
    num_vars: usize,
    /// Columns `>= artificial_start` are Phase-I artificials.
    artificial_start: usize,
}

impl Tableau {
    fn build(problem: &LpProblem) -> Tableau {
        let n = problem.num_vars;
        let m = problem.rows.len();
        // One slack per inequality row, one artificial per row that cannot
        // start basic (every Ge/Eq row, since rhs is normalized to be ≥ 0).
        let slacks = problem
            .rows
            .iter()
            .filter(|r| r.cmp != LpCmp::Eq)
            .count();
        let cols = n + slacks + m; // artificial slots are allocated lazily
        let artificial_start = n + slacks;
        let mut rows = Vec::with_capacity(m);
        let mut basis = Vec::with_capacity(m);
        let mut next_slack = n;
        let mut next_artificial = artificial_start;
        for r in &problem.rows {
            let mut row = vec![Rational::ZERO; cols + 1];
            // Normalize so the right-hand side is non-negative.
            let flip = r.rhs.is_negative();
            let sign = if flip { -Rational::ONE } else { Rational::ONE };
            for (j, c) in r.coeffs.iter().enumerate() {
                row[j] = *c * sign;
            }
            row[cols] = r.rhs * sign;
            let cmp = match (r.cmp, flip) {
                (LpCmp::Eq, _) => LpCmp::Eq,
                (c, false) => c,
                (LpCmp::Le, true) => LpCmp::Ge,
                (LpCmp::Ge, true) => LpCmp::Le,
            };
            match cmp {
                LpCmp::Le => {
                    // coeffs·x + s = rhs with s ≥ 0: the slack starts basic.
                    row[next_slack] = Rational::ONE;
                    basis.push(next_slack);
                    next_slack += 1;
                }
                LpCmp::Ge => {
                    // coeffs·x - s = rhs: the surplus cannot start basic.
                    row[next_slack] = -Rational::ONE;
                    next_slack += 1;
                    row[next_artificial] = Rational::ONE;
                    basis.push(next_artificial);
                    next_artificial += 1;
                }
                LpCmp::Eq => {
                    row[next_artificial] = Rational::ONE;
                    basis.push(next_artificial);
                    next_artificial += 1;
                }
            }
            rows.push(row);
        }
        Tableau {
            rows,
            basis,
            cols,
            num_vars: n,
            artificial_start,
        }
    }

    /// Bland ratio test: the row limiting growth of column `j`, or `None` if
    /// no row does (the column is a feasible unbounded direction).
    fn ratio_test(&self, j: usize) -> Option<usize> {
        let rhs = self.cols;
        let mut best: Option<(Rational, usize, usize)> = None; // (ratio, basis var, row)
        for (i, row) in self.rows.iter().enumerate() {
            if !row[j].is_positive() {
                continue;
            }
            let ratio = row[rhs] / row[j];
            let candidate = (ratio, self.basis[i], i);
            let better = match &best {
                None => true,
                Some((r, b, _)) => candidate.0 < *r || (candidate.0 == *r && candidate.1 < *b),
            };
            if better {
                best = Some(candidate);
            }
        }
        best.map(|(_, _, i)| i)
    }

    fn pivot(&mut self, r: usize, j: usize) {
        let inv = self.rows[r][j].recip();
        for v in &mut self.rows[r] {
            *v = *v * inv;
        }
        for i in 0..self.rows.len() {
            if i == r || self.rows[i][j].is_zero() {
                continue;
            }
            let factor = self.rows[i][j];
            for k in 0..=self.cols {
                let delta = self.rows[r][k] * factor;
                self.rows[i][k] = self.rows[i][k] - delta;
            }
        }
        self.basis[r] = j;
    }

    /// Minimizes the sum of artificial variables. Returns `true` if it
    /// reaches zero (the program is feasible); on success the artificials are
    /// driven out of the basis wherever possible.
    fn phase1(&mut self) -> bool {
        loop {
            // Reduced costs of the Phase-I objective: increasing a non-basic
            // column j lowers the artificial sum iff the column sums to a
            // positive value over the artificial-basic rows.
            let mut entering = None;
            'cols: for j in 0..self.artificial_start {
                let mut d = Rational::ZERO;
                for (i, row) in self.rows.iter().enumerate() {
                    if self.basis[i] >= self.artificial_start {
                        d += row[j];
                    }
                }
                if d.is_positive() {
                    entering = Some(j);
                    break 'cols;
                }
            }
            let Some(j) = entering else { break };
            // d > 0 implies some artificial-basic row has a positive entry in
            // column j, so the ratio test cannot fail.
            let r = self.ratio_test(j).expect("phase-I ratio test has a candidate");
            self.pivot(r, j);
        }
        let infeasibility: Rational = self
            .rows
            .iter()
            .enumerate()
            .filter(|(i, _)| self.basis[*i] >= self.artificial_start)
            .map(|(_, row)| row[self.cols])
            .fold(Rational::ZERO, |a, b| a + b);
        if !infeasibility.is_zero() {
            return false;
        }
        // Degenerate artificials may linger in the basis at value zero; pivot
        // them out on any non-artificial column so Phase II never touches
        // them. A row with no such column is redundant and inert (all its
        // non-artificial entries are zero, so no later pivot can change it).
        for i in 0..self.rows.len() {
            if self.basis[i] < self.artificial_start {
                continue;
            }
            let j = (0..self.artificial_start).find(|&j| !self.rows[i][j].is_zero());
            if let Some(j) = j {
                self.pivot(i, j);
            }
        }
        true
    }

    /// Maximizes `obj·x` (decision variables only) from a feasible basis.
    fn phase2(&mut self, obj: &[Rational]) -> LpOutcome {
        loop {
            let mut entering = None;
            'cols: for j in 0..self.artificial_start {
                // Reduced cost c_j - c_B·B⁻¹A_j; basic columns come out zero.
                let mut r = if j < self.num_vars {
                    obj[j]
                } else {
                    Rational::ZERO
                };
                for (i, row) in self.rows.iter().enumerate() {
                    let b = self.basis[i];
                    if b < self.num_vars && !row[j].is_zero() {
                        r = r - obj[b] * row[j];
                    }
                }
                if r.is_positive() {
                    entering = Some(j);
                    break 'cols;
                }
            }
            let Some(j) = entering else {
                let point = self.solution();
                let value = dot(obj, &point);
                return LpOutcome::Optimal { value, point };
            };
            match self.ratio_test(j) {
                Some(r) => self.pivot(r, j),
                None => {
                    // Column j is a recession direction that improves the
                    // objective: step one unit along it from the current
                    // vertex. All entries in column j are ≤ 0, so the basic
                    // values only grow and the point stays feasible.
                    let mut point = self.solution();
                    if j < self.num_vars {
                        point[j] += Rational::ONE;
                    }
                    for (i, row) in self.rows.iter().enumerate() {
                        let b = self.basis[i];
                        if b < self.num_vars {
                            point[b] = point[b] - row[j];
                        }
                    }
                    return LpOutcome::Unbounded { point };
                }
            }
        }
    }

    /// The current basic solution restricted to the decision variables.
    fn solution(&self) -> Vec<Rational> {
        let mut x = vec![Rational::ZERO; self.num_vars];
        for (i, &b) in self.basis.iter().enumerate() {
            if b < self.num_vars {
                x[b] = self.rows[i][self.cols];
            }
        }
        x
    }
}

fn dot(obj: &[Rational], x: &[Rational]) -> Rational {
    obj.iter()
        .zip(x)
        .fold(Rational::ZERO, |acc, (c, v)| acc + *c * *v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::from_int(n)
    }

    #[test]
    fn empty_program_is_feasible() {
        let lp = LpProblem::new(3);
        let p = lp.feasible_point().unwrap();
        assert_eq!(p, vec![Rational::ZERO; 3]);
    }

    #[test]
    fn simple_band_is_feasible() {
        // 1 ≤ x ≤ 3
        let mut lp = LpProblem::new(1);
        lp.add_constraint(&[(0, r(1))], LpCmp::Ge, r(1));
        lp.add_constraint(&[(0, r(1))], LpCmp::Le, r(3));
        let p = lp.feasible_point().unwrap();
        assert!(p[0] >= r(1) && p[0] <= r(3));
    }

    #[test]
    fn contradiction_is_infeasible() {
        let mut lp = LpProblem::new(1);
        lp.add_constraint(&[(0, r(1))], LpCmp::Ge, r(3));
        lp.add_constraint(&[(0, r(1))], LpCmp::Le, r(1));
        assert!(!lp.is_feasible());
    }

    #[test]
    fn nonnegativity_is_implicit() {
        // x ≤ -1 contradicts x ≥ 0.
        let mut lp = LpProblem::new(1);
        lp.add_constraint(&[(0, r(1))], LpCmp::Le, r(-1));
        assert!(!lp.is_feasible());
    }

    #[test]
    fn equalities_are_respected() {
        // x + y = 4, x - y = 2  =>  x = 3, y = 1
        let mut lp = LpProblem::new(2);
        lp.add_constraint(&[(0, r(1)), (1, r(1))], LpCmp::Eq, r(4));
        lp.add_constraint(&[(0, r(1)), (1, r(-1))], LpCmp::Eq, r(2));
        let p = lp.feasible_point().unwrap();
        assert_eq!(p, vec![r(3), r(1)]);
    }

    #[test]
    fn bounded_maximization_finds_the_vertex() {
        // max x + y  s.t.  x + 2y ≤ 4, 3x + y ≤ 6
        let mut lp = LpProblem::new(2);
        lp.add_constraint(&[(0, r(1)), (1, r(2))], LpCmp::Le, r(4));
        lp.add_constraint(&[(0, r(3)), (1, r(1))], LpCmp::Le, r(6));
        match lp.maximize(&[(0, r(1)), (1, r(1))]) {
            LpOutcome::Optimal { value, point } => {
                assert_eq!(value, Rational::new(14, 5));
                assert_eq!(point, vec![Rational::new(8, 5), Rational::new(6, 5)]);
            }
            other => panic!("expected optimum, got {other:?}"),
        }
    }

    #[test]
    fn unbounded_objective_reports_an_improving_point() {
        // max x  s.t.  x ≥ y, y ≥ 1
        let mut lp = LpProblem::new(2);
        lp.add_constraint(&[(0, r(1)), (1, r(-1))], LpCmp::Ge, r(0));
        lp.add_constraint(&[(1, r(1))], LpCmp::Ge, r(1));
        match lp.maximize(&[(0, r(1))]) {
            LpOutcome::Unbounded { point } => {
                assert!(point[0] >= point[1]);
                assert!(point[1] >= r(1));
            }
            other => panic!("expected unbounded, got {other:?}"),
        }
    }

    #[test]
    fn degenerate_equalities_do_not_loop() {
        // x = 0, x + y = 0, y + z ≤ 0 forces everything to zero.
        let mut lp = LpProblem::new(3);
        lp.add_constraint(&[(0, r(1))], LpCmp::Eq, r(0));
        lp.add_constraint(&[(0, r(1)), (1, r(1))], LpCmp::Eq, r(0));
        lp.add_constraint(&[(1, r(1)), (2, r(1))], LpCmp::Le, r(0));
        let p = lp.feasible_point().unwrap();
        assert_eq!(p, vec![Rational::ZERO; 3]);
    }

    #[test]
    fn duplicate_entries_are_summed() {
        // (x + x) ≤ 4 is 2x ≤ 4.
        let mut lp = LpProblem::new(1);
        lp.add_constraint(&[(0, r(1)), (0, r(1))], LpCmp::Le, r(4));
        match lp.maximize(&[(0, r(1))]) {
            LpOutcome::Optimal { value, .. } => assert_eq!(value, r(2)),
            other => panic!("expected optimum, got {other:?}"),
        }
    }

    #[test]
    fn negative_rhs_rows_are_normalized() {
        // -x ≤ -2 is x ≥ 2.
        let mut lp = LpProblem::new(1);
        lp.add_constraint(&[(0, r(-1))], LpCmp::Le, r(-2));
        let p = lp.feasible_point().unwrap();
        assert!(p[0] >= r(2));
    }

    #[test]
    fn circulation_shaped_program() {
        // Two edge multiplicities on a 2-cycle with deltas +1 and -1:
        // conservation x = y, net effect x - y ≥ 0, at least one unit of flow.
        let mut lp = LpProblem::new(2);
        lp.add_constraint(&[(0, r(1)), (1, r(-1))], LpCmp::Eq, r(0));
        lp.add_constraint(&[(0, r(1)), (1, r(-1))], LpCmp::Ge, r(0));
        lp.add_constraint(&[(0, r(1))], LpCmp::Ge, r(1));
        let p = lp.feasible_point().unwrap();
        assert_eq!(p[0], p[1]);
        assert!(p[0] >= r(1));
    }
}
