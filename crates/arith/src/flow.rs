//! Relaxed flow programs over edge multiplicities.
//!
//! The pre-solver filters of `has-analysis` (DESIGN.md §5.11) relax a VASS
//! reachability or lasso question to an exact LP over **edge multiplicities**:
//! integrality is dropped, the non-negativity of intermediate counter values
//! is dropped, and only the *Parikh image* of a run survives — how often each
//! edge fires, constrained by flow balance at every node and by the
//! accumulated counter effect. Infeasibility of the relaxation is a sound
//! refutation of the original question; feasibility says nothing.
//!
//! [`FlowLp`] is the builder shared by those filters: register the edges of a
//! labelled graph (one LP variable per edge, each carrying an integer effect
//! vector), then impose path-shaped or circulation-shaped flow balance and
//! constraints on the total accumulated effect. The builder is deliberately
//! graph-agnostic — `has-vass` instantiates it with control states and action
//! deltas, but nothing here knows about VASS.

use crate::lp::{LpCmp, LpProblem};
use crate::rational::Rational;

/// Builder for state-equation / circulation LPs: one non-negative variable
/// per registered edge, flow-balance rows per node, and rows over the total
/// effect `Σ xₑ·effectₑ[d]` per effect dimension.
#[derive(Clone, Debug)]
pub struct FlowLp {
    num_nodes: usize,
    dim: usize,
    /// Per edge: source node, target node.
    endpoints: Vec<(usize, usize)>,
    /// Per edge: integer effect vector of length `dim`.
    effects: Vec<Vec<i64>>,
}

impl FlowLp {
    /// Creates a builder over a graph with `num_nodes` nodes whose edges
    /// carry effect vectors of length `dim`.
    pub fn new(num_nodes: usize, dim: usize) -> Self {
        FlowLp {
            num_nodes,
            dim,
            endpoints: Vec::new(),
            effects: Vec::new(),
        }
    }

    /// Registers an edge `from → to` with the given effect vector and
    /// returns its LP variable index.
    ///
    /// # Panics
    /// Panics if an endpoint or the effect length is out of range.
    pub fn add_edge(&mut self, from: usize, to: usize, effect: &[i64]) -> usize {
        assert!(from < self.num_nodes && to < self.num_nodes, "edge endpoint out of range");
        assert_eq!(effect.len(), self.dim, "effect dimension mismatch");
        self.endpoints.push((from, to));
        self.effects.push(effect.to_vec());
        self.endpoints.len() - 1
    }

    /// Number of registered edges (= LP variables).
    pub fn num_edges(&self) -> usize {
        self.endpoints.len()
    }

    /// The coefficient row of the total effect in dimension `d`:
    /// `Σ xₑ·effectₑ[d]`, with zero entries omitted.
    pub fn effect_row(&self, d: usize) -> Vec<(usize, Rational)> {
        assert!(d < self.dim, "effect dimension out of range");
        self.effects
            .iter()
            .enumerate()
            .filter(|(_, eff)| eff[d] != 0)
            .map(|(e, eff)| (e, Rational::from_int(eff[d])))
            .collect()
    }

    /// The state-equation program of a `source → sink` path: flow balance
    /// `out(q) − in(q) = [q = source] − [q = sink]` at every node. With
    /// `source == sink` this degenerates to the circulation program.
    ///
    /// A run from `source` to `sink` fires each edge a non-negative integer
    /// number of times satisfying exactly these balances, so any integer run
    /// is a feasible point — infeasibility refutes the existence of a run
    /// (over ℤ-valued counters; callers add [`FlowLp::effect_row`]
    /// constraints to bound the accumulated effect).
    pub fn path_problem(&self, source: usize, sink: usize) -> LpProblem {
        assert!(source < self.num_nodes && sink < self.num_nodes, "terminal out of range");
        let mut lp = LpProblem::new(self.num_edges());
        let mut rows: Vec<Vec<(usize, Rational)>> = vec![Vec::new(); self.num_nodes];
        for (e, &(from, to)) in self.endpoints.iter().enumerate() {
            if from == to {
                continue; // self-loops cancel out of every balance row
            }
            rows[from].push((e, Rational::ONE));
            rows[to].push((e, -Rational::ONE));
        }
        for (q, row) in rows.iter().enumerate() {
            let mut rhs = Rational::ZERO;
            if q == source {
                rhs += Rational::ONE;
            }
            if q == sink {
                rhs = rhs - Rational::ONE;
            }
            if row.is_empty() && rhs.is_zero() {
                continue;
            }
            lp.add_constraint(row, LpCmp::Eq, rhs);
        }
        lp
    }

    /// The circulation program: flow conserved at every node. Any cycle —
    /// in particular any pump cycle of a lasso — is a feasible point.
    pub fn circulation_problem(&self) -> LpProblem {
        // A circulation is a path from any node back to itself; with no
        // nodes the program is empty (and trivially feasible).
        if self.num_nodes == 0 {
            return LpProblem::new(self.num_edges());
        }
        self.path_problem(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::from_int(n)
    }

    #[test]
    fn path_balance_forces_the_chain() {
        // 0 → 1 → 2 with unit effects; a 0→2 path must use both edges once.
        let mut f = FlowLp::new(3, 1);
        let a = f.add_edge(0, 1, &[1]);
        let b = f.add_edge(1, 2, &[-1]);
        let lp = f.path_problem(0, 2);
        let p = lp.feasible_point().unwrap();
        assert_eq!(p[a], r(1));
        assert_eq!(p[b], r(1));
    }

    #[test]
    fn unreachable_sink_is_infeasible() {
        // No edge enters node 2: the path program has no solution.
        let mut f = FlowLp::new(3, 0);
        f.add_edge(0, 1, &[]);
        assert!(!f.path_problem(0, 2).is_feasible());
    }

    #[test]
    fn effect_rows_refute_unreachable_totals() {
        // Single decrementing loop edge: total effect can never be ≥ +1.
        let mut f = FlowLp::new(1, 1);
        f.add_edge(0, 0, &[-1]);
        let mut lp = f.path_problem(0, 0);
        lp.add_constraint(&f.effect_row(0), LpCmp::Ge, r(1));
        assert!(!lp.is_feasible());
    }

    #[test]
    fn circulation_admits_the_two_cycle() {
        let mut f = FlowLp::new(2, 1);
        let up = f.add_edge(0, 1, &[1]);
        let down = f.add_edge(1, 0, &[-1]);
        let mut lp = f.circulation_problem();
        lp.add_constraint(&[(up, r(1))], LpCmp::Ge, r(1));
        let p = lp.feasible_point().unwrap();
        assert_eq!(p[up], p[down]);
        assert!(p[up] >= r(1));
    }
}
