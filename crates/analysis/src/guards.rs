//! Exact satisfiability of service guards over the numeric/equality
//! fragment.
//!
//! A guard (service pre- or post-condition) is *dead* when no valuation of
//! the task's variables satisfies it. The analyzer decides this exactly for
//! the fragment the existing arithmetic substrate covers: arithmetic atoms
//! and numeric (in)equalities become [`LinearConstraint`]s decided by the
//! Fourier–Motzkin procedure of `has_arith::fm`; all other atoms (ID
//! equalities, relation membership) are treated as free booleans. Freeness
//! over-approximates their satisfiability, so [`GuardStatus::Unsatisfiable`]
//! is *certain* — the only verdict anything downstream acts on — while
//! [`GuardStatus::Satisfiable`] may be optimistic about ID-logic
//! consistency.
//!
//! The decision enumerates truth assignments over the guard's distinct
//! atoms (capped at [`ATOM_CAP`]; larger guards return
//! [`GuardStatus::Unknown`] and are left alone): an assignment under which
//! the boolean structure evaluates to true contributes the conjunction of
//! its linear atoms (negated where assigned false — `has_arith` decides
//! strict, `Eq` and `Ne` constraints exactly over ℚ). The guard is dead iff
//! every assignment either falsifies the structure or yields an
//! inconsistent linear system.

use has_arith::{is_satisfiable, LinExpr, LinearConstraint};
use has_model::{ArtifactSchema, Atom, Condition, Term, VarId, VarSort};

/// Exact satisfiability verdict for one guard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GuardStatus {
    /// Some truth assignment satisfies the guard's boolean structure with a
    /// consistent numeric fragment (modulo free ID/relation atoms).
    Satisfiable,
    /// No valuation can satisfy the guard: the service can never fire.
    /// This verdict is exact, never heuristic.
    Unsatisfiable,
    /// The guard has more than [`ATOM_CAP`] distinct atoms; the enumeration
    /// was not attempted and the guard is treated as satisfiable.
    Unknown,
}

/// Cap on the number of distinct atoms enumerated per guard (`2^ATOM_CAP`
/// assignments, each with one small Fourier–Motzkin run). Specification
/// guards are tiny; anything past the cap reports [`GuardStatus::Unknown`].
pub const ATOM_CAP: usize = 12;

/// Converts an atom to its linear-constraint form, when it has one: an
/// arithmetic atom as-is, a numeric equality `x = c` / `x = y` as an `Eq`
/// constraint. ID equalities, null tests and relation atoms have no linear
/// form and return `None` (their truth is a free boolean for the guard
/// decision).
fn linear_form(schema: &ArtifactSchema, atom: &Atom) -> Option<LinearConstraint<VarId>> {
    let numeric = |v: &VarId| schema.variable(*v).sort == VarSort::Numeric;
    match atom {
        Atom::Arith(c) => Some(c.clone()),
        Atom::Eq(lhs, rhs) => {
            let expr = |t: &Term| -> Option<LinExpr<VarId>> {
                match t {
                    Term::Var(v) if numeric(v) => Some(LinExpr::var(*v)),
                    Term::Const(c) => Some(LinExpr::constant(*c)),
                    _ => None,
                }
            };
            Some(LinearConstraint::eq(expr(lhs)?, expr(rhs)?))
        }
        Atom::Relation { .. } => None,
    }
}

/// Decides whether a guard is satisfiable — see the module docs for the
/// fragment and the direction of the approximation.
pub fn guard_status(schema: &ArtifactSchema, cond: &Condition) -> GuardStatus {
    match cond {
        Condition::True => return GuardStatus::Satisfiable,
        Condition::False => return GuardStatus::Unsatisfiable,
        _ => {}
    }
    let mut atoms: Vec<Atom> = Vec::new();
    for a in cond.atoms() {
        if !atoms.contains(&a) {
            atoms.push(a);
        }
    }
    if atoms.len() > ATOM_CAP {
        return GuardStatus::Unknown;
    }
    let linear: Vec<Option<LinearConstraint<VarId>>> =
        atoms.iter().map(|a| linear_form(schema, a)).collect();
    for bits in 0u32..(1u32 << atoms.len()) {
        let truth = |atom: &Atom| -> bool {
            // Distinct-atom list, so the position lookup always succeeds.
            let i = atoms.iter().position(|a| a == atom).expect("atom collected");
            bits >> i & 1 == 1
        };
        if !cond.eval_with(&mut |a| truth(a)) {
            continue;
        }
        let system: Vec<LinearConstraint<VarId>> = linear
            .iter()
            .enumerate()
            .filter_map(|(i, l)| {
                l.as_ref()
                    .map(|c| if bits >> i & 1 == 1 { c.clone() } else { c.negate() })
            })
            .collect();
        if is_satisfiable(&system) {
            return GuardStatus::Satisfiable;
        }
    }
    GuardStatus::Unsatisfiable
}

#[cfg(test)]
mod tests {
    use super::*;
    use has_arith::Rational;
    use has_model::SystemBuilder;

    fn schema_with_num_vars() -> (ArtifactSchema, VarId, VarId) {
        let mut b = SystemBuilder::new("g");
        let root = b.root_task("Main");
        let x = b.num_var(root, "x");
        let y = b.num_var(root, "y");
        (b.build().unwrap().schema, x, y)
    }

    #[test]
    fn trivial_guards() {
        let (schema, _, _) = schema_with_num_vars();
        assert_eq!(guard_status(&schema, &Condition::True), GuardStatus::Satisfiable);
        assert_eq!(guard_status(&schema, &Condition::False), GuardStatus::Unsatisfiable);
    }

    #[test]
    fn contradictory_arithmetic_is_dead() {
        let (schema, x, _) = schema_with_num_vars();
        // x < 0 ∧ x > 0
        let lt = Condition::arith(LinearConstraint::lt(
            LinExpr::var(x),
            LinExpr::zero(),
        ));
        let gt = Condition::arith(LinearConstraint::gt(
            LinExpr::var(x),
            LinExpr::zero(),
        ));
        assert_eq!(
            guard_status(&schema, &lt.clone().and(gt)),
            GuardStatus::Unsatisfiable
        );
        assert_eq!(guard_status(&schema, &lt), GuardStatus::Satisfiable);
    }

    #[test]
    fn equality_chain_contradiction_is_dead() {
        let (schema, x, y) = schema_with_num_vars();
        // x = 1 ∧ y = 2 ∧ x = y
        let c = Condition::eq_const(x, Rational::from_int(1))
            .and(Condition::eq_const(y, Rational::from_int(2)))
            .and(Condition::var_eq(x, y));
        assert_eq!(guard_status(&schema, &c), GuardStatus::Unsatisfiable);
    }

    #[test]
    fn boolean_contradiction_on_one_atom_is_dead() {
        let (schema, x, _) = schema_with_num_vars();
        let a = Condition::eq_const(x, Rational::from_int(1));
        let c = a.clone().and(a.negate());
        assert_eq!(guard_status(&schema, &c), GuardStatus::Unsatisfiable);
    }

    #[test]
    fn negated_equality_needs_the_exact_ne_split() {
        let (schema, x, _) = schema_with_num_vars();
        // ¬(x = 1) ∧ x ≥ 1 ∧ x ≤ 1 — satisfiable only if ≠ were ignored.
        let c = Condition::eq_const(x, Rational::from_int(1))
            .negate()
            .and(Condition::arith(LinearConstraint::ge(
                LinExpr::var(x),
                LinExpr::constant(Rational::from_int(1)),
            )))
            .and(Condition::arith(LinearConstraint::le(
                LinExpr::var(x),
                LinExpr::constant(Rational::from_int(1)),
            )));
        assert_eq!(guard_status(&schema, &c), GuardStatus::Unsatisfiable);
    }

    #[test]
    fn disjunction_with_one_live_branch_is_satisfiable() {
        let (schema, x, _) = schema_with_num_vars();
        let dead = Condition::arith(LinearConstraint::lt(LinExpr::var(x), LinExpr::zero()))
            .and(Condition::arith(LinearConstraint::gt(LinExpr::var(x), LinExpr::zero())));
        let live = Condition::eq_const(x, Rational::from_int(3));
        assert_eq!(
            guard_status(&schema, &dead.or(live)),
            GuardStatus::Satisfiable
        );
    }

    #[test]
    fn id_atoms_are_free_and_never_kill_a_guard() {
        let mut b = SystemBuilder::new("ids");
        let root = b.root_task("Main");
        let system = {
            let _x = b.num_var(root, "x");
            b.build().unwrap()
        };
        // A relation-free schema: is_null over a numeric var is still an
        // Eq(_, Null) atom with no linear form — free, hence satisfiable.
        let v = system.schema.task(system.root()).variables[0];
        let c = Condition::is_null(v).and(Condition::not_null(v));
        // Both polarities of the *same* atom: the boolean structure itself is
        // unsatisfiable, which the enumeration catches even for free atoms.
        assert_eq!(guard_status(&system.schema, &c), GuardStatus::Unsatisfiable);
    }
}
