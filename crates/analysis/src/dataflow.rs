//! Read/write dataflow over a validated artifact system.
//!
//! The pass computes, per variable, where its value is *read* (guards,
//! mapping sources, property conditions — the places a value can influence
//! behavior or observation) and where it is *written* (post-conditions,
//! mapping targets, retrievals), then reports:
//!
//! * `HAS101` — a variable that is never read: its value influences neither
//!   the control flow nor any observation (for artifact-relation tuple
//!   variables this is the "write-only column" case: the column is stored
//!   and retrieved but its value is never consulted);
//! * `HAS104` — an internal service whose effects are never observed: no
//!   set update, not named by the property, and every variable its
//!   post-condition constrains is never read.
//!
//! Reads and writes are collected from the model only (plus the property's
//! conditions and service propositions); the pass is purely syntactic and
//! complements the guard-satisfiability pass of [`crate::guards`].

use crate::diagnostic::Diagnostic;
use has_ltl::hltl::HltlProp;
use has_ltl::HltlFormula;
use has_model::{ArtifactSystem, ServiceRef, VarId};
use std::collections::BTreeSet;

/// The property's footprint on the model: variables its conditions mention
/// (reads) and services its propositions name (observations).
#[derive(Clone, Debug, Default)]
pub struct PropertyFootprint {
    /// Variables read by some condition proposition (of any sub-formula).
    pub read_vars: BTreeSet<VarId>,
    /// Services named by some service proposition.
    pub observed_services: BTreeSet<ServiceRef>,
}

/// Collects the property footprint, descending through child sub-formulas.
pub fn property_footprint(property: &HltlFormula) -> PropertyFootprint {
    let mut out = PropertyFootprint::default();
    fn walk(f: &HltlFormula, out: &mut PropertyFootprint) {
        for p in &f.props {
            match p {
                HltlProp::Condition(c) => out.read_vars.extend(c.variables()),
                HltlProp::Service(s) => {
                    out.observed_services.insert(*s);
                }
                HltlProp::Child(_, sub) => walk(sub, out),
            }
        }
    }
    walk(property, &mut out);
    out
}

/// The read/write sets of one dataflow analysis.
#[derive(Clone, Debug, Default)]
pub struct Dataflow {
    /// Variables whose value some guard, mapping source, insertion or
    /// property condition consults.
    pub read: BTreeSet<VarId>,
    /// Variables some post-condition, mapping target or retrieval assigns.
    pub written: BTreeSet<VarId>,
}

/// Computes the system-wide read/write sets (see the module docs for what
/// counts as a read and as a write).
pub fn dataflow(system: &ArtifactSystem, property: Option<&HltlFormula>) -> Dataflow {
    let schema = &system.schema;
    let mut flow = Dataflow::default();
    // The global pre-condition reads root input variables.
    flow.read.extend(system.precondition.variables());
    if let Some(p) = property {
        flow.read.extend(property_footprint(p).read_vars);
    }
    for (_, task) in schema.tasks() {
        let input: BTreeSet<VarId> = task.input_vars.iter().copied().collect();
        for service in &task.internal_services {
            flow.read.extend(service.pre.variables());
            for v in service.post.variables() {
                // Input variables keep their value across a service step, so
                // a post-condition mentioning one reads it; any other
                // mention constrains the next valuation — a write.
                if input.contains(&v) {
                    flow.read.insert(v);
                } else {
                    flow.written.insert(v);
                }
            }
            if let Some(ar) = &task.artifact_relation {
                if service.delta.inserts() {
                    flow.read.extend(ar.tuple.iter().copied());
                }
                if service.delta.retrieves() {
                    flow.written.extend(ar.tuple.iter().copied());
                }
            }
        }
        flow.read.extend(task.closing.pre.variables());
        // Opening a child: the pre-condition and the input-map sources read
        // *this* task's variables; the input-map targets write the child's.
        for &child in &task.children {
            let opening = &schema.task(child).opening;
            flow.read.extend(opening.pre.variables());
            for &(child_var, parent_var) in &opening.input_map {
                flow.read.insert(parent_var);
                flow.written.insert(child_var);
            }
            for &(parent_var, child_var) in &schema.task(child).closing.output_map {
                flow.read.insert(child_var);
                flow.written.insert(parent_var);
            }
        }
        // Opening this task writes its input variables.
        flow.written.extend(task.input_vars.iter().copied());
    }
    flow
}

/// Runs the dataflow pass and renders its diagnostics.
pub fn dataflow_diagnostics(
    system: &ArtifactSystem,
    property: Option<&HltlFormula>,
) -> Vec<Diagnostic> {
    let schema = &system.schema;
    let flow = dataflow(system, property);
    let observed: BTreeSet<ServiceRef> = property
        .map(|p| property_footprint(p).observed_services)
        .unwrap_or_default();
    let mut out = Vec::new();
    // HAS101: variables never read.
    for (_, task) in schema.tasks() {
        for &v in &task.variables {
            if flow.read.contains(&v) {
                continue;
            }
            let var = schema.variable(v);
            let in_tuple = task
                .artifact_relation
                .as_ref()
                .is_some_and(|ar| ar.tuple.contains(&v));
            let message = if in_tuple {
                format!(
                    "artifact-relation column `{}` is write-only: it is stored and \
                     retrieved but its value is never consulted",
                    var.name
                )
            } else if flow.written.contains(&v) {
                format!("variable `{}` is written but never read", var.name)
            } else {
                format!("variable `{}` is never used", var.name)
            };
            out.push(Diagnostic::warning(101, message).with_task(task.name.clone()));
        }
    }
    // HAS104: internal services whose effects are unobservable.
    for (tid, task) in schema.tasks() {
        for (idx, service) in task.internal_services.iter().enumerate() {
            if service.delta != has_model::SetUpdate::None {
                continue;
            }
            if observed.contains(&ServiceRef::Internal(tid, idx)) {
                continue;
            }
            let constrained: Vec<VarId> = service
                .post
                .variables()
                .into_iter()
                .filter(|v| !task.input_vars.contains(v))
                .collect();
            if constrained.is_empty() || constrained.iter().any(|v| flow.read.contains(v)) {
                continue;
            }
            out.push(
                Diagnostic::warning(
                    104,
                    "service effects are never observed: every variable its \
                     post-condition constrains is never read",
                )
                .with_task(task.name.clone())
                .with_service(service.name.clone()),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use has_arith::Rational;
    use has_model::{Condition, SetUpdate, SystemBuilder};

    #[test]
    fn unread_variable_is_flagged_and_read_one_is_not() {
        let mut b = SystemBuilder::new("df");
        let root = b.root_task("Main");
        let used = b.num_var(root, "used");
        let _unused = b.num_var(root, "unused");
        b.internal_service(
            root,
            "bump",
            Condition::eq_const(used, Rational::ZERO),
            Condition::eq_const(used, Rational::from_int(1)),
            SetUpdate::None,
        );
        let system = b.build().unwrap();
        let diags = dataflow_diagnostics(&system, None);
        assert!(
            diags.iter().any(|d| d.code == 101 && d.message.contains("`unused`")),
            "{diags:?}"
        );
        assert!(!diags.iter().any(|d| d.message.contains("`used`")));
    }

    #[test]
    fn unobserved_service_is_flagged_until_property_reads_it() {
        let mut b = SystemBuilder::new("df2");
        let root = b.root_task("Main");
        let ghost = b.num_var(root, "ghost");
        b.internal_service(
            root,
            "shadow",
            Condition::True,
            Condition::eq_const(ghost, Rational::from_int(1)),
            SetUpdate::None,
        );
        let system = b.build().unwrap();
        let diags = dataflow_diagnostics(&system, None);
        assert!(diags.iter().any(|d| d.code == 104), "{diags:?}");
        // A property reading `ghost` observes the effect.
        let mut hb = has_ltl::hltl::HltlBuilder::new(system.root());
        let set = hb.condition(Condition::eq_const(ghost, Rational::from_int(1)));
        let property = hb.finish(set.eventually());
        let diags = dataflow_diagnostics(&system, Some(&property));
        assert!(!diags.iter().any(|d| d.code == 104), "{diags:?}");
        // `ghost` is now read (by the property), so HAS101 clears too.
        assert!(!diags.iter().any(|d| d.code == 101), "{diags:?}");
    }
}
