//! Dimension cone-of-influence over a per-query VASS.
//!
//! The Lemma 21 coverability queries pay for every counter dimension of
//! `V(T, β)`, but from a fixed initial state most dimensions cannot
//! influence any verdict: a counter constrains a run only where an action
//! *decrements* it (non-negativity is the sole VASS guard). The cone
//! computation is a fixpoint of two mutually reinforcing rules over the
//! control graph reachable from the query's initial state:
//!
//! 1. an action that decrements a dimension no reachable action increments
//!    can never fire — along every feasible path from the initial state the
//!    dimension is identically zero, so the decrement would go negative;
//!    the action is *disabled* (removed from the reachable control graph);
//! 2. a dimension no reachable live action decrements is outside the cone —
//!    it starts at zero (or accumulates increments) and never blocks a
//!    transition, so dropping it changes no coverability, blocking or
//!    lasso answer.
//!
//! Disabling an action by rule 1 can strand further increments (its targets
//! may become unreachable), which re-triggers rule 1 elsewhere; the loop
//! runs to fixpoint (each iteration disables at least one action, so it
//! terminates in at most `|actions|` rounds, each a linear reachability
//! sweep).
//!
//! Both rules are **exact**, not approximate: the feasible-run set of the
//! projected VASS ([`DimensionCone::project`]) equals that of the original,
//! so every Lemma 21 verdict — returning outputs, blocking states, the
//! existence of a non-negative accepting cycle — is preserved byte for
//! byte, while the Karp–Miller graph (whose size is what explodes with the
//! dimension) shrinks. DESIGN.md §5.9 states the soundness argument in
//! full.

use has_vass::Vass;
use std::collections::VecDeque;

/// The cone of influence of one `(VASS, initial state)` query: which
/// dimensions can influence a verdict, and which actions are proven
/// unfireable.
#[derive(Clone, Debug)]
pub struct DimensionCone {
    /// Per-dimension: inside the cone (some reachable live action decrements
    /// it)?
    keep: Vec<bool>,
    /// Per-action: proven unfireable by rule 1 (decrements a
    /// never-incremented dimension)?
    disabled: Vec<bool>,
    /// Number of kept dimensions.
    kept: usize,
    /// Whether any action was disabled.
    any_disabled: bool,
}

impl DimensionCone {
    /// The VASS dimension before projection.
    pub fn dims_before(&self) -> usize {
        self.keep.len()
    }

    /// The cone size: dimensions that can influence a verdict from this
    /// initial state.
    pub fn dims_after(&self) -> usize {
        self.kept
    }

    /// Whether dimension `d` is inside the cone.
    pub fn keeps(&self, d: usize) -> bool {
        self.keep[d]
    }

    /// Whether action `a` is proven unfireable.
    pub fn disables(&self, a: usize) -> bool {
        self.disabled[a]
    }

    /// `true` when projection would change nothing: every dimension is in
    /// the cone and no action is disabled. Callers then query the original
    /// VASS directly.
    pub fn is_trivial(&self) -> bool {
        self.kept == self.keep.len() && !self.any_disabled
    }

    /// Builds the projected VASS: same control states, same action count
    /// **and order** (so action indices keep identifying the same
    /// transition — witness paths index into per-transition labels), with
    /// deltas restricted to the cone dimensions. Disabled actions are kept
    /// index-stable but made unfireable through one reserved sink dimension
    /// that is never incremented and that only they decrement; the sink
    /// exists only when some action is disabled.
    pub fn project(&self, vass: &Vass) -> Vass {
        let mut new_dim_of = vec![usize::MAX; self.keep.len()];
        let mut k = 0;
        for (d, &keep) in self.keep.iter().enumerate() {
            if keep {
                new_dim_of[d] = k;
                k += 1;
            }
        }
        let sink = self.any_disabled as usize;
        let mut out = Vass::new(vass.states, k + sink);
        for (i, action) in vass.actions.iter().enumerate() {
            let mut delta = vec![0i64; k + sink];
            if self.disabled[i] {
                delta[k] = -1;
            } else {
                for (d, &v) in action.delta.iter().enumerate() {
                    if v != 0 && self.keep[d] {
                        delta[new_dim_of[d]] = v;
                    }
                }
            }
            out.add_action(action.from, delta, action.to);
        }
        out
    }
}

/// Computes the dimension cone of influence for the query starting at
/// `init` — see the module docs for the fixpoint and its exactness.
pub fn dimension_cone(vass: &Vass, init: usize) -> DimensionCone {
    dimension_cone_multi(vass, &[init])
}

/// The union dimension cone over several start states at once — the cone
/// the shared Karp–Miller arena (DESIGN.md §5.12) projects with, so every
/// `τ_in` query of one `(T, β)` pair runs on the *same* projected VASS and
/// interned markings stay comparable across queries.
///
/// The fixpoint is the single-init one with reachability seeded from all of
/// `inits`, and it stays **exact for each individual init**: union
/// reachability only grows the reachable-live action set, so "dimension
/// never incremented by a reachable live action" (rule 1) still proves the
/// decrementing action unfireable from every listed init, and a dimension
/// dropped by rule 2 is decremented by no action reachable from any of
/// them. The result is merely more conservative (fewer disables, more kept
/// dimensions) than each per-init cone.
pub fn dimension_cone_multi(vass: &Vass, inits: &[usize]) -> DimensionCone {
    let dim = vass.dim;
    let n_actions = vass.actions.len();
    let adjacency = vass.adjacency();
    let mut alive = vec![true; n_actions];
    let mut disabled = vec![false; n_actions];
    let max_init = inits.iter().copied().max().map_or(0, |m| m + 1);
    let mut reach = vec![false; vass.states.max(max_init)];

    loop {
        // Control-graph reachability from the inits over live actions.
        reach.iter_mut().for_each(|r| *r = false);
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &init in inits {
            if !reach[init] {
                reach[init] = true;
                queue.push_back(init);
            }
        }
        while let Some(s) = queue.pop_front() {
            for &a in &adjacency[s] {
                if alive[a] && !reach[vass.actions[a].to] {
                    reach[vass.actions[a].to] = true;
                    queue.push_back(vass.actions[a].to);
                }
            }
        }
        // Which dimensions some reachable live action increments.
        let mut incremented = vec![false; dim];
        for (a, action) in vass.actions.iter().enumerate() {
            if alive[a] && reach[action.from] {
                for (d, &v) in action.delta.iter().enumerate() {
                    if v > 0 {
                        incremented[d] = true;
                    }
                }
            }
        }
        // Rule 1: a reachable live action decrementing a never-incremented
        // dimension can never fire.
        let mut changed = false;
        for (a, action) in vass.actions.iter().enumerate() {
            if alive[a]
                && reach[action.from]
                && action
                    .delta
                    .iter()
                    .enumerate()
                    .any(|(d, &v)| v < 0 && !incremented[d])
            {
                alive[a] = false;
                disabled[a] = true;
                changed = true;
            }
        }
        if changed {
            continue;
        }
        // Fixpoint. Rule 2: keep exactly the dimensions some reachable live
        // action decrements.
        let mut keep = vec![false; dim];
        for (a, action) in vass.actions.iter().enumerate() {
            if alive[a] && reach[action.from] {
                for (d, &v) in action.delta.iter().enumerate() {
                    if v < 0 {
                        keep[d] = true;
                    }
                }
            }
        }
        let kept = keep.iter().filter(|&&k| k).count();
        let any_disabled = disabled.iter().any(|&d| d);
        return DimensionCone {
            keep,
            disabled,
            kept,
            any_disabled,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use has_vass::CoverabilityGraph;

    /// Insert-only dimension: dropped (never decremented), nothing disabled.
    #[test]
    fn insert_only_dimension_leaves_the_cone() {
        let mut v = Vass::new(2, 1);
        v.add_action(0, vec![1], 0);
        v.add_action(0, vec![0], 1);
        let cone = dimension_cone(&v, 0);
        assert_eq!((cone.dims_before(), cone.dims_after()), (1, 0));
        assert!(!cone.is_trivial());
        let p = cone.project(&v);
        assert_eq!(p.dim, 0);
        assert_eq!(p.actions.len(), v.actions.len());
    }

    /// A retrieve with no reachable insert: the action is disabled and the
    /// dimension leaves the cone; the sink makes the action unfireable.
    #[test]
    fn retrieve_without_insert_is_disabled() {
        let mut v = Vass::new(3, 1);
        v.add_action(0, vec![0], 1); // plain step
        v.add_action(1, vec![-1], 2); // decrement never enabled
        let cone = dimension_cone(&v, 0);
        assert_eq!(cone.dims_after(), 0);
        assert!(cone.disables(1) && !cone.disables(0));
        let p = cone.project(&v);
        assert_eq!(p.dim, 1, "one sink dimension");
        let g = CoverabilityGraph::build(&p, 0);
        // State 2 is only reachable through the disabled action.
        assert!(g.path_to_state(2).is_none());
        assert!(g.path_to_state(1).is_some());
    }

    /// A matched insert/retrieve pair stays in the cone untouched.
    #[test]
    fn matched_pair_is_trivial() {
        let mut v = Vass::new(2, 1);
        v.add_action(0, vec![1], 1);
        v.add_action(1, vec![-1], 0);
        let cone = dimension_cone(&v, 0);
        assert!(cone.is_trivial());
        assert_eq!(cone.dims_after(), 1);
    }

    /// Cascade: disabling a decrement strands the only increment of a second
    /// dimension behind it, which disables that dimension's decrement too.
    #[test]
    fn disabling_cascades_through_stranded_increments() {
        let mut v = Vass::new(4, 2);
        v.add_action(0, vec![-1, 0], 1); // dead: dim 0 never incremented
        v.add_action(1, vec![0, 1], 2); // only increment of dim 1, stranded
        v.add_action(0, vec![0, -1], 3); // becomes dead once 1→2 is stranded
        let cone = dimension_cone(&v, 0);
        assert_eq!(cone.dims_after(), 0);
        assert!(cone.disables(0) && cone.disables(2));
        // The stranded increment is unreachable, not "disabled".
        assert!(!cone.disables(1));
    }

    /// Reachability is per initial state: from state 1 the increment at 0 is
    /// unreachable and the decrement dies; from state 0 the pair is live.
    #[test]
    fn cone_depends_on_the_initial_state() {
        let mut v = Vass::new(3, 1);
        v.add_action(0, vec![1], 1);
        v.add_action(1, vec![-1], 2);
        assert!(dimension_cone(&v, 0).is_trivial());
        let from_mid = dimension_cone(&v, 1);
        assert_eq!(from_mid.dims_after(), 0);
        assert!(from_mid.disables(1));
    }

    /// Projection preserves coverability of control states exactly on a
    /// mixed example: one live pair, one insert-only dimension, one dead
    /// retrieve guarding an otherwise-unreachable state.
    #[test]
    fn projection_preserves_reachable_state_set() {
        let mut v = Vass::new(5, 3);
        v.add_action(0, vec![1, 0, 0], 1); // live insert (dim 0)
        v.add_action(1, vec![-1, 0, 0], 2); // live retrieve (dim 0)
        v.add_action(1, vec![0, 1, 0], 3); // insert-only dim 1
        v.add_action(3, vec![0, 0, -1], 4); // dead retrieve (dim 2)
        let cone = dimension_cone(&v, 0);
        assert_eq!(cone.dims_after(), 1);
        assert!(cone.keeps(0) && !cone.keeps(1) && !cone.keeps(2));
        let p = cone.project(&v);
        let full = CoverabilityGraph::build(&v, 0);
        let proj = CoverabilityGraph::build(&p, 0);
        for s in 0..5 {
            assert_eq!(
                full.path_to_state(s).is_some(),
                proj.path_to_state(s).is_some(),
                "state {s} coverability must be preserved"
            );
        }
        assert!(proj.node_count() <= full.node_count());
    }
}
