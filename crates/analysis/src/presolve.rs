//! Query pre-solver: static refutation filters per Lemma 21 query
//! (DESIGN.md §5.11).
//!
//! Every `(T, β, τ_in)` triple the verifier examines spawns three
//! sub-queries over the task's VASS — the *returning*, *blocking* and
//! *lasso* paths of Lemma 21 — and each historically paid for a Karp–Miller
//! graph before answering. [`presolve_query`] runs a hierarchy of sound
//! refutation filters over the raw VASS first, cheapest first:
//!
//! 1. **control skeleton** — plain reachability with counters ignored
//!    ([`has_vass::control_reachable`]);
//! 2. **state equation** — the Parikh-image Z-relaxation LP
//!    ([`has_vass::z_cover_feasible`]); for the lasso sub-query, the per-SCC
//!    circulation decision ([`has_vass::z_lasso_feasible`]);
//! 3. **counter-abstraction DFA** — per-dimension gcd-normalized truncation
//!    automata in product with the control skeleton
//!    ([`has_vass::counter_dfa_refutes`]).
//!
//! Each filter is a *necessary condition* on the exact answer, so a
//! refutation is definitive: the sub-query's answer is "empty" and the
//! verifier can skip the corresponding scan — and when all three sub-queries
//! are refuted, the Karp–Miller build itself. The simplex-backed filters
//! gate themselves on a structural work estimate (`has-vass`'s
//! `LP_WORK_CAP`), reporting "no refutation" on programs whose exact
//! solve would cost more than the build it could skip — the gate reads
//! only the program's shape, never the clock, so verdicts stay
//! deterministic. Because the capped build
//! under-approximates reachability (everything it finds is genuinely
//! coverable), skipping refuted work can never change a verdict, a witness,
//! or their order — which is why the determinism contract (byte-identical
//! verdicts with the pre-solver on and off, DESIGN.md §5.11) holds by
//! construction rather than by replay.
//!
//! Queries that survive refutation still benefit: the per-dimension
//! boundedness certificates of [`has_vass::certified_bounded_dims`] feed
//! [`has_vass::CoverabilityGraph::build_capped_with_bounds`], which skips
//! ω-acceleration work on certified dimensions.
//!
//! The per-filter verdict counts aggregate into [`PresolveStats`] (surfaced
//! through the verifier's `Stats` and `tables --json`) and render as the
//! `HAS111`–`HAS116` diagnostics of [`presolve_diagnostics`].

use crate::diagnostic::Diagnostic;
use has_vass::{
    certified_bounded_dims, control_reachable, counter_dfa_refutes, z_cover_feasible,
    z_lasso_feasible, Vass,
};

/// Which filter of the pre-solve hierarchy refuted a sub-query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Refutation {
    /// No target control state is reachable in the control skeleton.
    Control,
    /// The state-equation Z-relaxation is infeasible.
    StateEquation,
    /// Every target is unreachable in some counter-abstraction DFA product.
    CounterDfa,
    /// No non-negative-effect control cycle through an accepting state.
    Circulation,
}

/// The pre-solver's verdicts for one `(T, β, τ_in)` query triple: one
/// optional refutation per Lemma 21 sub-query, plus the boundedness
/// certificates for the dimensions of the (possibly projected) VASS.
#[derive(Clone, Debug)]
pub struct QueryPresolve {
    /// Refutation of the *returning* sub-query, if any.
    pub returning: Option<Refutation>,
    /// Refutation of the *blocking* sub-query, if any.
    pub blocking: Option<Refutation>,
    /// Refutation of the *lasso* sub-query, if any.
    pub lasso: Option<Refutation>,
    /// Per-dimension boundedness certificates (empty when the query was
    /// fully refuted — no graph is built, so no certificates are needed).
    pub bounded_dims: Vec<bool>,
}

impl QueryPresolve {
    /// Whether all three sub-queries are refuted — the Karp–Miller build is
    /// skipped outright.
    pub fn skip_build(&self) -> bool {
        self.returning.is_some() && self.blocking.is_some() && self.lasso.is_some()
    }

    /// Number of certified-bounded dimensions.
    pub fn bounded_count(&self) -> usize {
        self.bounded_dims.iter().filter(|&&b| b).count()
    }
}

/// Runs the pre-solve filter hierarchy for one query triple.
///
/// `returning` and `blocking` are the target control-state sets of the two
/// coverability sub-queries; `accepting` marks the Büchi-accepting control
/// states of the lasso sub-query. All three are indexed by VASS control
/// state. The filters run cheapest-first and stop at the first refutation
/// per sub-query; boundedness certificates are computed only when at least
/// one sub-query survives (otherwise no graph will be built).
pub fn presolve_query(
    vass: &Vass,
    init: usize,
    returning: &[bool],
    blocking: &[bool],
    accepting: &[bool],
) -> QueryPresolve {
    let reachable = control_reachable(vass, init);
    let cover = |targets: &[bool]| -> Option<Refutation> {
        if !targets.iter().zip(&reachable).any(|(&t, &r)| t && r) {
            return Some(Refutation::Control);
        }
        if !z_cover_feasible(vass, init, targets, &reachable) {
            return Some(Refutation::StateEquation);
        }
        if counter_dfa_refutes(vass, init, targets, &reachable) {
            return Some(Refutation::CounterDfa);
        }
        None
    };
    // A lasso must first *cover* an accepting state, so the coverability
    // filters apply to the accepting set too; only then is the pump cycle
    // itself interrogated.
    let lasso = cover(accepting).or_else(|| {
        if !z_lasso_feasible(vass, accepting, &reachable) {
            Some(Refutation::Circulation)
        } else {
            None
        }
    });
    let mut query = QueryPresolve {
        returning: cover(returning),
        blocking: cover(blocking),
        lasso,
        bounded_dims: Vec::new(),
    };
    if !query.skip_build() {
        query.bounded_dims = certified_bounded_dims(vass, &reachable);
    }
    query
}

/// Aggregated pre-solver verdict counts: how many sub-queries each filter
/// decided, across every `(T, β, τ_in)` triple of a verification run. The
/// verifier surfaces these through its `Stats` (summing over tasks with the
/// same commutative absorption as every other cost metric) and `tables
/// --json` emits them as per-filter columns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PresolveStats {
    /// Lemma 21 sub-queries examined (three per query triple).
    pub queries: usize,
    /// Sub-queries statically refuted by some filter.
    pub decided: usize,
    /// …of which by the control-skeleton filter.
    pub control: usize,
    /// …of which by the state-equation Z-relaxation.
    pub state_eq: usize,
    /// …of which by a counter-abstraction DFA.
    pub counter_dfa: usize,
    /// …of which by the lasso circulation decision.
    pub circulation: usize,
    /// Karp–Miller builds skipped outright (all three sub-queries refuted).
    pub skipped_builds: usize,
    /// Counter dimensions certified bounded, summed over built queries.
    pub bounded_dims: usize,
}

impl PresolveStats {
    /// Records one query triple's verdicts.
    pub fn record(&mut self, query: &QueryPresolve) {
        self.queries += 3;
        for refutation in [query.returning, query.blocking, query.lasso]
            .into_iter()
            .flatten()
        {
            self.decided += 1;
            match refutation {
                Refutation::Control => self.control += 1,
                Refutation::StateEquation => self.state_eq += 1,
                Refutation::CounterDfa => self.counter_dfa += 1,
                Refutation::Circulation => self.circulation += 1,
            }
        }
        if query.skip_build() {
            self.skipped_builds += 1;
        }
        self.bounded_dims += query.bounded_count();
    }

    /// Adds `other` into `self` (commutative, like the verifier's
    /// `Stats::absorb`).
    pub fn absorb(&mut self, other: &PresolveStats) {
        self.queries += other.queries;
        self.decided += other.decided;
        self.control += other.control;
        self.state_eq += other.state_eq;
        self.counter_dfa += other.counter_dfa;
        self.circulation += other.circulation;
        self.skipped_builds += other.skipped_builds;
        self.bounded_dims += other.bounded_dims;
    }
}

/// Renders aggregated pre-solver counts as the stable `HAS111`–`HAS116`
/// informational diagnostics `tables -- analyze` reports per workload:
/// the statically-decided total (`HAS111`), the per-filter refutation counts
/// (`HAS112`–`HAS115`, emitted only when non-zero), and the certified
/// dimension bounds (`HAS116`).
pub fn presolve_diagnostics(stats: &PresolveStats) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if stats.queries == 0 {
        return out;
    }
    out.push(Diagnostic::info(
        111,
        format!(
            "pre-solver statically decided {} of {} coverability/lasso sub-queries \
             ({} Karp–Miller builds skipped outright)",
            stats.decided, stats.queries, stats.skipped_builds
        ),
    ));
    for (code, count, what) in [
        (112, stats.control, "refuted by the control skeleton"),
        (113, stats.state_eq, "refuted by the state-equation Z-relaxation"),
        (114, stats.counter_dfa, "refuted by a counter-abstraction DFA"),
        (115, stats.circulation, "refuted by the lasso circulation decision"),
    ] {
        if count > 0 {
            out.push(Diagnostic::info(code, format!("{count} sub-query(ies) {what}")));
        }
    }
    if stats.bounded_dims > 0 {
        out.push(Diagnostic::info(
            116,
            format!(
                "{} counter dimension(s) certified bounded across built queries \
                 (ω-acceleration skipped)",
                stats.bounded_dims
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(states: usize, on: &[usize]) -> Vec<bool> {
        let mut s = vec![false; states];
        for &q in on {
            s[q] = true;
        }
        s
    }

    /// The producer/consumer chain: returning at the drained end is real,
    /// blocking at an unpayable state refutes by state equation, lasso
    /// through the pump loop is real.
    #[test]
    fn filters_fire_per_sub_query() {
        // 0 pumps, 0 → 1 switches, 1 drains, 1 → 2 pays one token; state 3
        // is control-unreachable.
        let mut v = Vass::new(4, 1);
        v.add_action(0, vec![1], 0);
        v.add_action(0, vec![0], 1);
        v.add_action(1, vec![-1], 1);
        v.add_action(1, vec![-1], 2);
        let q = presolve_query(
            &v,
            0,
            &set(4, &[2]),  // returning: reachable by paying a token
            &set(4, &[3]),  // blocking: control-unreachable
            &set(4, &[0]),  // lasso: the pump loop
        );
        assert_eq!(q.returning, None);
        assert_eq!(q.blocking, Some(Refutation::Control));
        assert_eq!(q.lasso, None);
        assert!(!q.skip_build());
        assert_eq!(q.bounded_dims, vec![false]);
    }

    #[test]
    fn fully_refuted_query_skips_the_build() {
        // Everything needs a token that is never produced.
        let mut v = Vass::new(3, 1);
        v.add_action(0, vec![-1], 1);
        v.add_action(1, vec![0], 1);
        let q = presolve_query(&v, 0, &set(3, &[1]), &set(3, &[2]), &set(3, &[1]));
        assert_eq!(q.returning, Some(Refutation::StateEquation));
        assert_eq!(q.blocking, Some(Refutation::Control));
        assert!(q.lasso.is_some(), "{q:?}");
        assert!(q.skip_build());
        assert!(q.bounded_dims.is_empty());
    }

    #[test]
    fn stats_record_and_render() {
        let mut v = Vass::new(2, 1);
        v.add_action(0, vec![-1], 1);
        let q = presolve_query(&v, 0, &set(2, &[1]), &set(2, &[1]), &set(2, &[1]));
        let mut stats = PresolveStats::default();
        stats.record(&q);
        assert_eq!(stats.queries, 3);
        assert_eq!(stats.decided, 3);
        assert_eq!(stats.skipped_builds, 1);
        let mut total = PresolveStats::default();
        total.absorb(&stats);
        total.absorb(&stats);
        assert_eq!(total.queries, 6);
        let diags = presolve_diagnostics(&total);
        assert!(diags.iter().any(|d| d.code == 111), "{diags:?}");
        assert!(diags.iter().all(|d| d.code >= 111 && d.code <= 116));
        assert!(presolve_diagnostics(&PresolveStats::default()).is_empty());
    }
}
