//! Static analysis of hierarchical artifact systems.
//!
//! Three passes over a validated [`ArtifactSystem`] (and optionally the
//! property to be verified), surfaced through one [`analyze`] entry point:
//!
//! 1. **Dataflow** ([`dataflow`]) — read/write sets per variable; flags
//!    variables that are never read (`HAS101`, including write-only
//!    artifact-relation columns) and internal services whose effects are
//!    never observed (`HAS104`).
//! 2. **Dead services** ([`guards`]) — each guard's numeric/equality
//!    fragment is decided *exactly* with the Fourier–Motzkin engine of
//!    `has_arith`; unsatisfiable guards yield `HAS105`–`HAS108` and a
//!    [`DeadServiceMap`] the verifier uses to exclude the transitions from
//!    graph construction (the exclusion removes only spurious behavior of
//!    the optimistic abstraction — see DESIGN.md §5.9).
//! 3. **Counter influence** — per artifact relation, how services move its
//!    counters: write-only relations (`HAS102`), retrievals that can never
//!    fire for lack of any insertion (`HAS103`), and an informational
//!    summary (`HAS110`). The per-query refinement of the same idea — which
//!    counter *dimensions* can influence a verdict — is
//!    [`dimension_cone`], applied by the verifier to each `(T, β, τ_in)`
//!    coverability query.
//!
//! A fourth, per-query pass lives in [`presolve`]: sound static refutation
//! filters (control skeleton, state-equation Z-relaxation,
//! counter-abstraction DFA, lasso circulation) that the verifier runs before
//! building any Karp–Miller graph, plus per-dimension boundedness
//! certificates for the queries that survive. Its aggregated verdict counts
//! render as `HAS111`–`HAS116` diagnostics.
//!
//! All findings flow through the [`Diagnostic`] type with stable `HASnnn`
//! codes; structural [`has_model::ValidationError`]s join the same stream
//! via `From` (`HAS001`–`HAS012`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cone;
pub mod dataflow;
pub mod diagnostic;
pub mod guards;
pub mod presolve;

pub use cone::{dimension_cone, dimension_cone_multi, DimensionCone};
pub use dataflow::{dataflow_diagnostics, property_footprint, Dataflow, PropertyFootprint};
pub use diagnostic::{Diagnostic, Severity};
pub use guards::{guard_status, GuardStatus, ATOM_CAP};
pub use presolve::{
    presolve_diagnostics, presolve_query, PresolveStats, QueryPresolve, Refutation,
};

use has_ltl::HltlFormula;
use has_model::{validate, ArtifactSystem, Condition, TaskId};
use std::collections::BTreeMap;
use std::fmt;

/// Which guards of one task are proven unsatisfiable.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeadServices {
    /// Per internal service (by index): pre- or post-condition unsatisfiable.
    pub internal: Vec<bool>,
    /// The task's opening guard is unsatisfiable: the whole subtree rooted
    /// here is unreachable.
    pub opening: bool,
    /// The task's closing guard is unsatisfiable: the task can never return.
    pub closing: bool,
}

impl DeadServices {
    /// Whether any guard of the task is dead.
    pub fn any(&self) -> bool {
        self.opening || self.closing || self.internal.iter().any(|&d| d)
    }

    /// Number of dead guard sites in this task.
    pub fn count(&self) -> usize {
        self.internal.iter().filter(|&&d| d).count()
            + usize::from(self.opening)
            + usize::from(self.closing)
    }
}

/// Dead-guard verdicts for every task with at least one dead guard. The
/// verifier consults this map (when projection is enabled) to skip the
/// corresponding transitions during symbolic graph construction.
pub type DeadServiceMap = BTreeMap<TaskId, DeadServices>;

/// The result of [`analyze`]: diagnostics plus the dead-service map the
/// verifier prunes with.
#[derive(Clone, Debug, Default)]
pub struct AnalysisReport {
    /// All findings, errors first.
    pub diagnostics: Vec<Diagnostic>,
    /// Tasks with proven-dead guards (absent task ⇒ nothing dead).
    pub dead: DeadServiceMap,
}

impl AnalysisReport {
    /// Whether any finding has `Error` severity (the model failed
    /// validation; verification would panic).
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Total number of proven-dead guard sites across all tasks.
    pub fn dead_guard_count(&self) -> usize {
        self.dead.values().map(DeadServices::count).sum()
    }

    /// Findings of exactly the given severity.
    pub fn with_severity(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(move |d| d.severity == severity)
    }
}

impl fmt::Display for AnalysisReport {
    /// Renders every diagnostic followed by a one-line summary, in the
    /// style of the verifier's outcome report.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        let errors = self.with_severity(Severity::Error).count();
        let warnings = self.with_severity(Severity::Warning).count();
        let infos = self.with_severity(Severity::Info).count();
        write!(
            f,
            "analysis: {errors} error(s), {warnings} warning(s), {infos} info(s); \
             {} dead guard site(s)",
            self.dead_guard_count()
        )
    }
}

/// Runs all analysis passes over `system` (and `property`, when given).
///
/// A system that fails structural validation reports the failure as an
/// `Error` diagnostic (`HAS001`–`HAS012`) and skips the semantic passes —
/// their results would be meaningless. On a valid system the report never
/// contains errors; warnings and infos point at dead weight and dead
/// guards, and [`AnalysisReport::dead`] feeds the verifier's pruning.
pub fn analyze(system: &ArtifactSystem, property: Option<&HltlFormula>) -> AnalysisReport {
    let mut report = AnalysisReport::default();
    if let Err(err) = validate(system) {
        report.diagnostics.push(err.into());
        return report;
    }
    report.diagnostics.extend(dataflow_diagnostics(system, property));
    dead_service_pass(system, &mut report);
    counter_influence_pass(system, &mut report);
    report
        .diagnostics
        .sort_by(|a, b| b.severity.cmp(&a.severity).then(a.code.cmp(&b.code)));
    report
}

/// Decides every guard of every task, filling the dead-service map and the
/// `HAS105`–`HAS109` diagnostics. Tasks in subtrees already proven
/// unreachable (a dead opening guard on an ancestor) keep their dead-map
/// entries — the verifier still prunes them — but their individual guard
/// diagnostics are suppressed in favor of the single `HAS107` at the
/// subtree root.
fn dead_service_pass(system: &ArtifactSystem, report: &mut AnalysisReport) {
    let schema = &system.schema;
    let root = system.root();
    // Task liveness: the root is live; a child is live iff its parent is and
    // its opening guard is not proven unsatisfiable. Parents precede
    // children in builder order, but walk the tree explicitly to be safe.
    let mut live = vec![false; schema.task_count()];
    let mut opening_dead = vec![false; schema.task_count()];
    let mut stack = vec![root];
    live[root.0] = true;
    while let Some(tid) = stack.pop() {
        for &child in &schema.task(tid).children {
            let status = guard_status(schema, &schema.task(child).opening.pre);
            opening_dead[child.0] = status == GuardStatus::Unsatisfiable;
            live[child.0] = live[tid.0] && !opening_dead[child.0];
            stack.push(child);
        }
    }
    for (tid, task) in schema.tasks() {
        let mut dead = DeadServices {
            internal: vec![false; task.internal_services.len()],
            opening: opening_dead[tid.0],
            closing: false,
        };
        if dead.opening && live[task.parent.expect("non-root").0] {
            report.diagnostics.push(
                Diagnostic::warning(
                    107,
                    "opening guard is unsatisfiable: the task (and its whole \
                     subtree) can never start",
                )
                .with_task(task.name.clone()),
            );
        }
        for (idx, service) in task.internal_services.iter().enumerate() {
            let (pre, post) = (
                guard_status(schema, &service.pre),
                guard_status(schema, &service.post),
            );
            dead.internal[idx] = pre == GuardStatus::Unsatisfiable
                || post == GuardStatus::Unsatisfiable;
            if !live[tid.0] {
                continue;
            }
            if pre == GuardStatus::Unsatisfiable {
                report.diagnostics.push(
                    Diagnostic::warning(
                        105,
                        "service can never fire: its pre-condition is unsatisfiable",
                    )
                    .with_task(task.name.clone())
                    .with_service(service.name.clone()),
                );
            } else if post == GuardStatus::Unsatisfiable {
                report.diagnostics.push(
                    Diagnostic::warning(
                        106,
                        "service can never fire: its post-condition is unsatisfiable",
                    )
                    .with_task(task.name.clone())
                    .with_service(service.name.clone()),
                );
            } else if pre == GuardStatus::Unknown || post == GuardStatus::Unknown {
                report.diagnostics.push(
                    Diagnostic::info(
                        109,
                        "guard exceeds the atom cap; satisfiability not decided",
                    )
                    .with_task(task.name.clone())
                    .with_service(service.name.clone()),
                );
            }
        }
        // The root's closing guard is `False` by construction (the root
        // never returns); only flag children that can never return.
        if tid != root {
            dead.closing =
                guard_status(schema, &task.closing.pre) == GuardStatus::Unsatisfiable
                    && task.closing.pre != Condition::False;
            if dead.closing && live[tid.0] {
                report.diagnostics.push(
                    Diagnostic::warning(
                        108,
                        "closing guard is unsatisfiable: the task can never return",
                    )
                    .with_task(task.name.clone()),
                );
            }
        }
        if dead.any() {
            report.dead.insert(tid, dead);
        }
    }
}

/// Model-level counter influence: how each artifact relation's counters are
/// moved (`HAS102`, `HAS103`) plus the informational summary (`HAS110`).
/// The per-query refinement is [`dimension_cone`].
fn counter_influence_pass(system: &ArtifactSystem, report: &mut AnalysisReport) {
    for (_, task) in system.schema.tasks() {
        let Some(relation) = &task.artifact_relation else {
            continue;
        };
        let inserts = task
            .internal_services
            .iter()
            .filter(|s| s.delta.inserts())
            .count();
        let retrieves = task
            .internal_services
            .iter()
            .filter(|s| s.delta.retrieves())
            .count();
        if retrieves == 0 {
            let message = if inserts == 0 {
                format!("artifact relation `{}` is never used by any service", relation.name)
            } else {
                format!(
                    "artifact relation `{}` is write-only: tuples are inserted \
                     but never retrieved",
                    relation.name
                )
            };
            report
                .diagnostics
                .push(Diagnostic::warning(102, message).with_task(task.name.clone()));
        } else if inserts == 0 {
            report.diagnostics.push(
                Diagnostic::warning(
                    103,
                    format!(
                        "artifact relation `{}` is never inserted into: its \
                         retrieving services can never fire",
                        relation.name
                    ),
                )
                .with_task(task.name.clone()),
            );
        }
        report.diagnostics.push(
            Diagnostic::info(
                110,
                format!(
                    "artifact relation `{}`: {inserts} inserting and {retrieves} \
                     retrieving service(s) move its counters",
                    relation.name
                ),
            )
            .with_task(task.name.clone()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use has_arith::{LinExpr, LinearConstraint, Rational};
    use has_model::{SetUpdate, SystemBuilder};

    /// x < 0 ∧ x > 0 — the canonical dead guard.
    fn dead_guard(x: has_model::VarId) -> Condition {
        Condition::arith(LinearConstraint::lt(LinExpr::var(x), LinExpr::zero()))
            .and(Condition::arith(LinearConstraint::gt(
                LinExpr::var(x),
                LinExpr::zero(),
            )))
    }

    #[test]
    fn dead_internal_pre_is_reported_and_mapped() {
        let mut b = SystemBuilder::new("dead");
        let root = b.root_task("Main");
        let x = b.num_var(root, "x");
        b.internal_service(
            root,
            "stuck",
            dead_guard(x),
            Condition::eq_const(x, Rational::from_int(1)),
            SetUpdate::None,
        );
        b.internal_service(
            root,
            "fine",
            Condition::True,
            Condition::eq_const(x, Rational::from_int(2)),
            SetUpdate::None,
        );
        let system = b.build().unwrap();
        let report = analyze(&system, None);
        assert!(!report.has_errors());
        assert!(report.diagnostics.iter().any(|d| d.code == 105), "{report}");
        assert_eq!(report.dead_guard_count(), 1);
        let dead = &report.dead[&system.root()];
        assert_eq!(dead.internal, vec![true, false]);
    }

    #[test]
    fn dead_opening_guard_silences_the_subtree() {
        let mut b = SystemBuilder::new("sub");
        let root = b.root_task("Main");
        let x = b.num_var(root, "x");
        let child = b.child_task(root, "Child");
        let y = b.num_var(child, "y");
        b.open_when(child, dead_guard(x));
        // A dead internal guard inside the unreachable subtree.
        b.internal_service(
            child,
            "inner",
            dead_guard(y),
            Condition::True,
            SetUpdate::None,
        );
        let system = b.build().unwrap();
        let report = analyze(&system, None);
        assert!(report.diagnostics.iter().any(|d| d.code == 107), "{report}");
        // The inner dead guard is recorded for pruning but not reported.
        assert!(!report.diagnostics.iter().any(|d| d.code == 105), "{report}");
        let child_id = system.schema.task_by_name("Child").unwrap();
        assert!(report.dead[&child_id].opening);
        assert_eq!(report.dead[&child_id].internal, vec![true]);
    }

    #[test]
    fn unsat_closing_guard_is_flagged_but_root_false_is_not() {
        let mut b = SystemBuilder::new("close");
        let root = b.root_task("Main");
        let _x = b.num_var(root, "x");
        let child = b.child_task(root, "Child");
        let y = b.num_var(child, "y");
        b.close_when(child, dead_guard(y));
        let system = b.build().unwrap();
        let report = analyze(&system, None);
        let has108: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == 108)
            .collect();
        assert_eq!(has108.len(), 1, "{report}");
        assert_eq!(has108[0].task.as_deref(), Some("Child"));
    }

    #[test]
    fn relation_usage_is_classified() {
        let mut b = SystemBuilder::new("rel");
        let root = b.root_task("Main");
        let item = b.id_var(root, "item");
        b.artifact_relation(root, "SET", &[item]);
        b.internal_service(
            root,
            "stash",
            Condition::not_null(item),
            Condition::True,
            SetUpdate::Insert,
        );
        let system = b.build().unwrap();
        let report = analyze(&system, None);
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == 102 && d.message.contains("write-only")),
            "{report}"
        );
        assert!(report.diagnostics.iter().any(|d| d.code == 110), "{report}");
    }

    #[test]
    fn invalid_system_reports_an_error_and_skips_semantics() {
        let mut b = SystemBuilder::new("bad");
        let root = b.root_task("Main");
        let _x = b.num_var(root, "x");
        let child = b.child_task(root, "Child");
        let y = b.num_var(child, "y");
        let mut system = b.build().unwrap();
        // Break validation after the fact: the root guard mentions a
        // variable owned by the child task.
        system.schema.tasks[root.0].internal_services.push(
            has_model::InternalService {
                name: "ghost".into(),
                pre: Condition::is_null(y),
                post: Condition::True,
                delta: SetUpdate::None,
            },
        );
        let report = analyze(&system, None);
        assert!(report.has_errors());
        assert_eq!(report.diagnostics.len(), 1);
        assert!(report.dead.is_empty());
    }

    #[test]
    fn report_renders_diagnostics_and_summary() {
        let mut b = SystemBuilder::new("render");
        let root = b.root_task("Main");
        let x = b.num_var(root, "x");
        b.internal_service(root, "stuck", dead_guard(x), Condition::True, SetUpdate::None);
        let system = b.build().unwrap();
        let text = analyze(&system, None).to_string();
        assert!(text.contains("warning[HAS105]"), "{text}");
        assert!(text.contains("dead guard site(s)"), "{text}");
    }
}
