//! Structured diagnostics with stable codes.
//!
//! Every finding of the analyzer — and every structural [`ValidationError`] —
//! is reported as a [`Diagnostic`]: a stable `HASnnn` code, a severity, a
//! message, and the task/service the finding is anchored to. The multi-line
//! renderer follows the style of the verifier's outcome report (one headline
//! line, indented `↳` context lines), so validation and semantic analysis
//! share one reporting surface.
//!
//! Code ranges are stable across releases:
//!
//! * `HAS001`–`HAS012` — structural validation errors, one per
//!   [`ValidationError`] variant;
//! * `HAS101`–`HAS110` — semantic analyzer findings (dataflow, dead
//!   services, counter influence);
//! * `HAS111`–`HAS116` — query pre-solver summaries (statically decided
//!   sub-queries, per-filter refutation counts, certified counter bounds;
//!   see [`crate::presolve`]).

use has_model::ValidationError;
use std::fmt;

/// Severity of a diagnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational: a property of the model worth knowing, not a defect.
    Info,
    /// Likely defect or dead weight; the model still verifies soundly.
    Warning,
    /// The model is not well-formed; verification results are meaningless.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One finding: stable code, severity, message, and anchors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable numeric code (rendered as `HASnnn`).
    pub code: u16,
    /// Severity of the finding.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// Name of the task the finding is anchored to, if any.
    pub task: Option<String>,
    /// Name of the service the finding is anchored to, if any.
    pub service: Option<String>,
}

impl Diagnostic {
    /// A new diagnostic with the given severity, code and message.
    pub fn new(severity: Severity, code: u16, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            task: None,
            service: None,
        }
    }

    /// An `Error`-severity diagnostic.
    pub fn error(code: u16, message: impl Into<String>) -> Self {
        Self::new(Severity::Error, code, message)
    }

    /// A `Warning`-severity diagnostic.
    pub fn warning(code: u16, message: impl Into<String>) -> Self {
        Self::new(Severity::Warning, code, message)
    }

    /// An `Info`-severity diagnostic.
    pub fn info(code: u16, message: impl Into<String>) -> Self {
        Self::new(Severity::Info, code, message)
    }

    /// This diagnostic anchored to a task name.
    #[must_use]
    pub fn with_task(mut self, task: impl Into<String>) -> Self {
        self.task = Some(task.into());
        self
    }

    /// This diagnostic anchored to a service name.
    #[must_use]
    pub fn with_service(mut self, service: impl Into<String>) -> Self {
        self.service = Some(service.into());
        self
    }

    /// The rendered stable code, e.g. `HAS105`.
    pub fn code_str(&self) -> String {
        format!("HAS{:03}", self.code)
    }
}

impl fmt::Display for Diagnostic {
    /// Multi-line rendering in the style of the verifier's outcome report:
    ///
    /// ```text
    /// warning[HAS105]: internal service can never fire: its pre-condition is unsatisfiable
    ///   ↳ task `ManageTrips`, service `StoreTrip`
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code_str(), self.message)?;
        match (&self.task, &self.service) {
            (Some(t), Some(s)) => write!(f, "\n  ↳ task `{t}`, service `{s}`"),
            (Some(t), None) => write!(f, "\n  ↳ task `{t}`"),
            (None, Some(s)) => write!(f, "\n  ↳ service `{s}`"),
            (None, None) => Ok(()),
        }
    }
}

/// Structural validation errors map onto `HAS001`–`HAS012`, one code per
/// variant, all at `Error` severity; variants that carry a task name anchor
/// the diagnostic to it. `validate()`'s `Result` API is unchanged — this
/// conversion is how [`crate::analyze`] folds a failed validation into the
/// shared reporting path.
impl From<ValidationError> for Diagnostic {
    fn from(err: ValidationError) -> Self {
        let code = match &err {
            ValidationError::NoRootTask => 1,
            ValidationError::UnknownRelation(_) => 2,
            ValidationError::BrokenHierarchy(_) => 3,
            ValidationError::ForeignVariable { .. } => 4,
            ValidationError::DuplicateVariableName(..) => 5,
            ValidationError::ConditionScope { .. } => 6,
            ValidationError::RelationArity { .. } => 7,
            ValidationError::SortMismatch(_) => 8,
            ValidationError::BadMapping(_) => 9,
            ValidationError::ReturnOverlapsInput { .. } => 10,
            ValidationError::BadArtifactTuple(_) => 11,
            ValidationError::PreconditionScope(_) => 12,
        };
        let task = match &err {
            ValidationError::ForeignVariable { task, .. }
            | ValidationError::ConditionScope { task, .. }
            | ValidationError::ReturnOverlapsInput { task, .. } => Some(task.clone()),
            ValidationError::DuplicateVariableName(task, _) => Some(task.clone()),
            _ => None,
        };
        let mut d = Diagnostic::error(code, err.to_string());
        if let Some(task) = task {
            d = d.with_task(task);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_renders() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn renders_code_and_anchors() {
        let d = Diagnostic::warning(105, "service can never fire")
            .with_task("Main")
            .with_service("go");
        let s = d.to_string();
        assert!(s.starts_with("warning[HAS105]: service can never fire"), "{s}");
        assert!(s.contains("↳ task `Main`, service `go`"), "{s}");
    }

    #[test]
    fn validation_errors_get_stable_codes() {
        let d: Diagnostic = ValidationError::NoRootTask.into();
        assert_eq!((d.code, d.severity), (1, Severity::Error));
        let d: Diagnostic = ValidationError::ReturnOverlapsInput {
            task: "T".into(),
            variable: "x".into(),
        }
        .into();
        assert_eq!(d.code, 10);
        assert_eq!(d.task.as_deref(), Some("T"));
        let d: Diagnostic = ValidationError::PreconditionScope("v".into()).into();
        assert_eq!(d.code, 12);
    }
}
