//! Property-based equivalence of the Büchi construction and the direct trace
//! semantics of LTL.
//!
//! For random formulas over two propositions and random short traces:
//! * finite-word acceptance of `B_φ` (with `Q_fin`) must equal the
//!   finite-trace semantics of `φ`;
//! * lasso acceptance of `B_φ` must equal the infinite-trace semantics of `φ`
//!   on the corresponding ultimately-periodic word.
//!
//! These are exactly the two ways the verifier consumes automata (returning
//! and lasso paths of the per-task VASS), so this equivalence is the critical
//! correctness property of the `has-ltl` crate.

use has_ltl::{Buchi, Ltl};
use proptest::prelude::*;

type L = Ltl<u8>;

fn arb_ltl() -> impl Strategy<Value = L> {
    let leaf = prop_oneof![
        Just(Ltl::True),
        Just(Ltl::False),
        (0u8..2).prop_map(Ltl::prop),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f: L| f.not()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(|f: L| f.next()),
            inner.clone().prop_map(|f: L| f.weak_next()),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.until(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.release(b)),
            inner.clone().prop_map(|f: L| f.eventually()),
            inner.prop_map(|f: L| f.globally()),
        ]
    })
}

/// A trace position assigns truth to propositions 0 and 1 via two bits.
fn arb_trace() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..4, 1..6)
}

fn holds(trace: &[u8]) -> impl Fn(usize, &u8) -> bool + '_ {
    move |j, p| trace[j] & (1 << p) != 0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn buchi_matches_finite_semantics(f in arb_ltl(), trace in arb_trace()) {
        let b = Buchi::from_ltl(&f);
        let h = holds(&trace);
        prop_assert_eq!(
            b.accepts_finite(trace.len(), &h),
            f.eval_finite(trace.len(), &h),
            "formula {} on finite trace {:?}", f, trace
        );
    }

    #[test]
    fn buchi_matches_lasso_semantics(
        f in arb_ltl(),
        trace in arb_trace(),
        loop_frac in 0.0f64..1.0
    ) {
        let loop_start = ((trace.len() - 1) as f64 * loop_frac) as usize;
        let b = Buchi::from_ltl(&f);
        let h = holds(&trace);
        prop_assert_eq!(
            b.accepts_lasso(trace.len(), loop_start, &h),
            f.eval_lasso(trace.len(), loop_start, &h),
            "formula {} on lasso {:?} (loop at {})", f, trace, loop_start
        );
    }

    /// The automaton of `φ ∧ ¬φ` accepts nothing.
    #[test]
    fn contradiction_accepts_nothing(f in arb_ltl(), trace in arb_trace()) {
        let contradiction = f.clone().and(f.not());
        let b = Buchi::from_ltl(&contradiction);
        let h = holds(&trace);
        prop_assert!(!b.accepts_finite(trace.len(), &h));
        prop_assert!(!b.accepts_lasso(trace.len(), 0, &h));
    }

    /// `φ ∨ ¬φ` accepts every word.
    #[test]
    fn excluded_middle_accepts_everything(f in arb_ltl(), trace in arb_trace()) {
        let tautology = f.clone().or(f.not());
        let b = Buchi::from_ltl(&tautology);
        let h = holds(&trace);
        prop_assert!(b.accepts_finite(trace.len(), &h));
        prop_assert!(b.accepts_lasso(trace.len(), 0, &h));
    }
}
