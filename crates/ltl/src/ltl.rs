//! Propositional linear-time temporal logic.
//!
//! Formulas are parameterized by the proposition type `P`; the HLTL-FO layer
//! instantiates `P` with indices into a table of interpreted propositions
//! (conditions, services, child sub-formulas), and tests instantiate it with
//! small integers or strings.
//!
//! Two trace semantics are provided, matching Appendix B.2 of the paper:
//!
//! * **finite traces** (used for returning local runs): `X φ` requires a next
//!   position to exist;
//! * **infinite ultimately-periodic traces** `u · v^ω` (every lasso produced
//!   by the verifier has this shape): evaluated by fixpoint iteration over
//!   the finitely many (position, subformula) pairs.

use std::collections::BTreeSet;
use std::fmt;
use std::hash::Hash;

/// A propositional LTL formula over propositions of type `P`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Ltl<P> {
    /// Truth.
    True,
    /// Falsity.
    False,
    /// An atomic proposition.
    Prop(P),
    /// Negation.
    Not(Box<Ltl<P>>),
    /// Conjunction.
    And(Box<Ltl<P>>, Box<Ltl<P>>),
    /// Disjunction.
    Or(Box<Ltl<P>>, Box<Ltl<P>>),
    /// (Strong) next: requires a next position to exist on finite traces.
    Next(Box<Ltl<P>>),
    /// Weak next: like [`Ltl::Next`] on infinite traces, but true at the last
    /// position of a finite trace. Needed so that negation normal form
    /// preserves the finite-trace semantics (`¬X φ ≡ WX ¬φ`).
    WeakNext(Box<Ltl<P>>),
    /// Until.
    Until(Box<Ltl<P>>, Box<Ltl<P>>),
    /// Release (the dual of until).
    Release(Box<Ltl<P>>, Box<Ltl<P>>),
}

impl<P: Clone + Eq + Hash + Ord> Ltl<P> {
    /// Atomic proposition.
    pub fn prop(p: P) -> Self {
        Ltl::Prop(p)
    }

    /// Negation.
    // Kept as an inherent method (not `std::ops::Not`): the whole combinator
    // API is method-chained (`f.not().until(g)`), and `!f` would read wrong.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        match self {
            Ltl::True => Ltl::False,
            Ltl::False => Ltl::True,
            Ltl::Not(inner) => *inner,
            other => Ltl::Not(Box::new(other)),
        }
    }

    /// Conjunction.
    pub fn and(self, other: Self) -> Self {
        match (self, other) {
            (Ltl::True, x) | (x, Ltl::True) => x,
            (Ltl::False, _) | (_, Ltl::False) => Ltl::False,
            (a, b) => Ltl::And(Box::new(a), Box::new(b)),
        }
    }

    /// Disjunction.
    pub fn or(self, other: Self) -> Self {
        match (self, other) {
            (Ltl::False, x) | (x, Ltl::False) => x,
            (Ltl::True, _) | (_, Ltl::True) => Ltl::True,
            (a, b) => Ltl::Or(Box::new(a), Box::new(b)),
        }
    }

    /// Implication `self → other`.
    pub fn implies(self, other: Self) -> Self {
        self.not().or(other)
    }

    /// (Strong) next.
    pub fn next(self) -> Self {
        Ltl::Next(Box::new(self))
    }

    /// Weak next (true at the last position of a finite trace).
    pub fn weak_next(self) -> Self {
        Ltl::WeakNext(Box::new(self))
    }

    /// Until.
    pub fn until(self, other: Self) -> Self {
        Ltl::Until(Box::new(self), Box::new(other))
    }

    /// Release.
    pub fn release(self, other: Self) -> Self {
        Ltl::Release(Box::new(self), Box::new(other))
    }

    /// Eventually: `F φ ≡ true U φ`.
    pub fn eventually(self) -> Self {
        Ltl::Until(Box::new(Ltl::True), Box::new(self))
    }

    /// Always: `G φ ≡ false R φ`.
    pub fn globally(self) -> Self {
        Ltl::Release(Box::new(Ltl::False), Box::new(self))
    }

    /// Negation normal form: negations pushed down to propositions, using the
    /// U/R duality. The result contains `Not` only directly above `Prop`.
    pub fn nnf(&self) -> Self {
        match self {
            Ltl::True | Ltl::False | Ltl::Prop(_) => self.clone(),
            Ltl::And(a, b) => Ltl::And(Box::new(a.nnf()), Box::new(b.nnf())),
            Ltl::Or(a, b) => Ltl::Or(Box::new(a.nnf()), Box::new(b.nnf())),
            Ltl::Next(a) => Ltl::Next(Box::new(a.nnf())),
            Ltl::WeakNext(a) => Ltl::WeakNext(Box::new(a.nnf())),
            Ltl::Until(a, b) => Ltl::Until(Box::new(a.nnf()), Box::new(b.nnf())),
            Ltl::Release(a, b) => Ltl::Release(Box::new(a.nnf()), Box::new(b.nnf())),
            Ltl::Not(inner) => match &**inner {
                Ltl::True => Ltl::False,
                Ltl::False => Ltl::True,
                Ltl::Prop(_) => self.clone(),
                Ltl::Not(x) => x.nnf(),
                Ltl::And(a, b) => Ltl::Or(
                    Box::new(Ltl::Not(a.clone()).nnf()),
                    Box::new(Ltl::Not(b.clone()).nnf()),
                ),
                Ltl::Or(a, b) => Ltl::And(
                    Box::new(Ltl::Not(a.clone()).nnf()),
                    Box::new(Ltl::Not(b.clone()).nnf()),
                ),
                Ltl::Next(a) => Ltl::WeakNext(Box::new(Ltl::Not(a.clone()).nnf())),
                Ltl::WeakNext(a) => Ltl::Next(Box::new(Ltl::Not(a.clone()).nnf())),
                Ltl::Until(a, b) => Ltl::Release(
                    Box::new(Ltl::Not(a.clone()).nnf()),
                    Box::new(Ltl::Not(b.clone()).nnf()),
                ),
                Ltl::Release(a, b) => Ltl::Until(
                    Box::new(Ltl::Not(a.clone()).nnf()),
                    Box::new(Ltl::Not(b.clone()).nnf()),
                ),
            },
        }
    }

    /// The set of propositions occurring in the formula.
    pub fn propositions(&self) -> BTreeSet<P> {
        let mut out = BTreeSet::new();
        self.collect_props(&mut out);
        out
    }

    fn collect_props(&self, out: &mut BTreeSet<P>) {
        match self {
            Ltl::True | Ltl::False => {}
            Ltl::Prop(p) => {
                out.insert(p.clone());
            }
            Ltl::Not(a) | Ltl::Next(a) | Ltl::WeakNext(a) => a.collect_props(out),
            Ltl::And(a, b) | Ltl::Or(a, b) | Ltl::Until(a, b) | Ltl::Release(a, b) => {
                a.collect_props(out);
                b.collect_props(out);
            }
        }
    }

    /// Size of the formula (number of syntax-tree nodes).
    pub fn size(&self) -> usize {
        match self {
            Ltl::True | Ltl::False | Ltl::Prop(_) => 1,
            Ltl::Not(a) | Ltl::Next(a) | Ltl::WeakNext(a) => 1 + a.size(),
            Ltl::And(a, b) | Ltl::Or(a, b) | Ltl::Until(a, b) | Ltl::Release(a, b) => {
                1 + a.size() + b.size()
            }
        }
    }

    /// Rewrites propositions through `f`.
    pub fn map_props<Q: Clone + Eq + Hash + Ord, F>(&self, f: &F) -> Ltl<Q>
    where
        F: Fn(&P) -> Q,
    {
        match self {
            Ltl::True => Ltl::True,
            Ltl::False => Ltl::False,
            Ltl::Prop(p) => Ltl::Prop(f(p)),
            Ltl::Not(a) => Ltl::Not(Box::new(a.map_props(f))),
            Ltl::Next(a) => Ltl::Next(Box::new(a.map_props(f))),
            Ltl::WeakNext(a) => Ltl::WeakNext(Box::new(a.map_props(f))),
            Ltl::And(a, b) => Ltl::And(Box::new(a.map_props(f)), Box::new(b.map_props(f))),
            Ltl::Or(a, b) => Ltl::Or(Box::new(a.map_props(f)), Box::new(b.map_props(f))),
            Ltl::Until(a, b) => Ltl::Until(Box::new(a.map_props(f)), Box::new(b.map_props(f))),
            Ltl::Release(a, b) => {
                Ltl::Release(Box::new(a.map_props(f)), Box::new(b.map_props(f)))
            }
        }
    }

    /// Evaluates the formula on a **finite trace**, each position giving the
    /// set of true propositions via `holds(position, prop)`.
    ///
    /// The semantics is the finite-word semantics of Appendix B.2:
    /// `X φ` holds at `j` iff `j+1 < len` and `φ` holds at `j+1`;
    /// `φ U ψ` requires `ψ` to hold at some position `≤ len-1`.
    pub fn eval_finite<F>(&self, len: usize, holds: &F) -> bool
    where
        F: Fn(usize, &P) -> bool,
    {
        assert!(len > 0, "finite traces must be non-empty");
        self.eval_finite_at(0, len, holds)
    }

    fn eval_finite_at<F>(&self, j: usize, len: usize, holds: &F) -> bool
    where
        F: Fn(usize, &P) -> bool,
    {
        match self {
            Ltl::True => true,
            Ltl::False => false,
            Ltl::Prop(p) => holds(j, p),
            Ltl::Not(a) => !a.eval_finite_at(j, len, holds),
            Ltl::And(a, b) => a.eval_finite_at(j, len, holds) && b.eval_finite_at(j, len, holds),
            Ltl::Or(a, b) => a.eval_finite_at(j, len, holds) || b.eval_finite_at(j, len, holds),
            Ltl::Next(a) => j + 1 < len && a.eval_finite_at(j + 1, len, holds),
            Ltl::WeakNext(a) => j + 1 >= len || a.eval_finite_at(j + 1, len, holds),
            Ltl::Until(a, b) => (j..len).any(|k| {
                b.eval_finite_at(k, len, holds)
                    && (j..k).all(|l| a.eval_finite_at(l, len, holds))
            }),
            Ltl::Release(a, b) => (j..len).all(|k| {
                b.eval_finite_at(k, len, holds)
                    || (j..k).any(|l| a.eval_finite_at(l, len, holds))
            }),
        }
    }

    /// Evaluates the formula on the **infinite ultimately-periodic trace**
    /// `t₀ … t_{loop_start-1} (t_{loop_start} … t_{len-1})^ω`.
    ///
    /// `holds(position, prop)` is consulted only for positions `< len`.
    /// Until/Release are computed by fixpoint iteration over the `len`
    /// distinct positions of the lasso.
    // The `sat` truth table is double-indexed (row i written from rows
    // ia/ib at shifted positions), which iterators cannot express cleanly.
    #[allow(clippy::needless_range_loop)]
    pub fn eval_lasso<F>(&self, len: usize, loop_start: usize, holds: &F) -> bool
    where
        F: Fn(usize, &P) -> bool,
    {
        assert!(len > 0 && loop_start < len, "invalid lasso shape");
        // Collect all subformulas, children before parents.
        let mut subs: Vec<&Ltl<P>> = Vec::new();
        fn collect<'a, P>(f: &'a Ltl<P>, out: &mut Vec<&'a Ltl<P>>) {
            match f {
                Ltl::True | Ltl::False | Ltl::Prop(_) => {}
                Ltl::Not(a) | Ltl::Next(a) | Ltl::WeakNext(a) => collect(a, out),
                Ltl::And(a, b) | Ltl::Or(a, b) | Ltl::Until(a, b) | Ltl::Release(a, b) => {
                    collect(a, out);
                    collect(b, out);
                }
            }
            out.push(f);
        }
        collect(self, &mut subs);

        let succ = |j: usize| if j + 1 < len { j + 1 } else { loop_start };

        // Truth table: sat[formula index][position]. Computed in dependency
        // order; Until/Release need a fixpoint because the lasso loops.
        let mut sat: Vec<Vec<bool>> = vec![vec![false; len]; subs.len()];
        let index_of = |f: &Ltl<P>, subs: &[&Ltl<P>], upto: usize| -> usize {
            subs[..upto]
                .iter()
                .position(|g| *g == f)
                .expect("subformula appears before its parent")
        };
        for (i, f) in subs.iter().enumerate() {
            match f {
                Ltl::True => {
                    for j in 0..len {
                        sat[i][j] = true;
                    }
                }
                Ltl::False => {}
                Ltl::Prop(p) => {
                    for j in 0..len {
                        sat[i][j] = holds(j, p);
                    }
                }
                Ltl::Not(a) => {
                    let ia = index_of(a, &subs, i);
                    for j in 0..len {
                        sat[i][j] = !sat[ia][j];
                    }
                }
                Ltl::And(a, b) => {
                    let (ia, ib) = (index_of(a, &subs, i), index_of(b, &subs, i));
                    for j in 0..len {
                        sat[i][j] = sat[ia][j] && sat[ib][j];
                    }
                }
                Ltl::Or(a, b) => {
                    let (ia, ib) = (index_of(a, &subs, i), index_of(b, &subs, i));
                    for j in 0..len {
                        sat[i][j] = sat[ia][j] || sat[ib][j];
                    }
                }
                Ltl::Next(a) | Ltl::WeakNext(a) => {
                    let ia = index_of(a, &subs, i);
                    for j in 0..len {
                        sat[i][j] = sat[ia][succ(j)];
                    }
                }
                Ltl::Until(a, b) => {
                    let (ia, ib) = (index_of(a, &subs, i), index_of(b, &subs, i));
                    // Least fixpoint of  U = b ∨ (a ∧ X U).
                    for _ in 0..=len {
                        for j in (0..len).rev() {
                            sat[i][j] = sat[ib][j] || (sat[ia][j] && sat[i][succ(j)]);
                        }
                    }
                }
                Ltl::Release(a, b) => {
                    let (ia, ib) = (index_of(a, &subs, i), index_of(b, &subs, i));
                    // Greatest fixpoint of  R = b ∧ (a ∨ X R).
                    for j in 0..len {
                        sat[i][j] = true;
                    }
                    for _ in 0..=len {
                        for j in (0..len).rev() {
                            sat[i][j] = sat[ib][j] && (sat[ia][j] || sat[i][succ(j)]);
                        }
                    }
                }
            }
        }
        sat[subs.len() - 1][0]
    }
}

impl<P: fmt::Display> fmt::Display for Ltl<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ltl::True => write!(f, "true"),
            Ltl::False => write!(f, "false"),
            Ltl::Prop(p) => write!(f, "{p}"),
            Ltl::Not(a) => write!(f, "!({a})"),
            Ltl::And(a, b) => write!(f, "({a} & {b})"),
            Ltl::Or(a, b) => write!(f, "({a} | {b})"),
            Ltl::Next(a) => write!(f, "X({a})"),
            Ltl::WeakNext(a) => write!(f, "WX({a})"),
            Ltl::Until(a, b) => write!(f, "({a} U {b})"),
            Ltl::Release(a, b) => write!(f, "({a} R {b})"),
        }
    }
}

impl<P: fmt::Debug> fmt::Debug for Ltl<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ltl::True => write!(f, "true"),
            Ltl::False => write!(f, "false"),
            Ltl::Prop(p) => write!(f, "{p:?}"),
            Ltl::Not(a) => write!(f, "!({a:?})"),
            Ltl::And(a, b) => write!(f, "({a:?} & {b:?})"),
            Ltl::Or(a, b) => write!(f, "({a:?} | {b:?})"),
            Ltl::Next(a) => write!(f, "X({a:?})"),
            Ltl::WeakNext(a) => write!(f, "WX({a:?})"),
            Ltl::Until(a, b) => write!(f, "({a:?} U {b:?})"),
            Ltl::Release(a, b) => write!(f, "({a:?} R {b:?})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type L = Ltl<char>;

    fn p(c: char) -> L {
        Ltl::prop(c)
    }

    /// Helper: trace as a slice of strings of true propositions.
    fn trace_holds<'a>(trace: &'a [&'a str]) -> impl Fn(usize, &char) -> bool + 'a {
        move |j, c| trace[j].contains(*c)
    }

    #[test]
    fn nnf_pushes_negations_to_propositions() {
        let f = p('a').until(p('b')).not();
        let nnf = f.nnf();
        // ¬(a U b) = ¬a R ¬b
        assert_eq!(nnf, p('a').not().release(p('b').not()));
        // ¬X becomes a weak next so that finite-trace semantics is preserved.
        let g = p('a').and(p('b').next()).not().nnf();
        assert_eq!(g, p('a').not().or(p('b').not().weak_next()));
    }

    #[test]
    fn nnf_preserves_finite_semantics() {
        let f = p('a').until(p('b')).not().or(p('c').globally().not());
        let trace = ["a", "ab", "c"];
        assert_eq!(
            f.eval_finite(3, &trace_holds(&trace)),
            f.nnf().eval_finite(3, &trace_holds(&trace))
        );
    }

    #[test]
    fn finite_semantics_basic_operators() {
        let trace = ["a", "b", "c"];
        let h = trace_holds(&trace);
        assert!(p('a').eval_finite(3, &h));
        assert!(!p('b').eval_finite(3, &h));
        assert!(p('b').next().eval_finite(3, &h));
        assert!(p('a').until(p('b')).eval_finite(3, &h));
        assert!(!p('a').until(p('c')).eval_finite(3, &h));
        assert!(!p('a').until(p('d')).eval_finite(3, &h));
        assert!(p('c').eventually().eval_finite(3, &h));
        assert!(!p('a').globally().eval_finite(3, &h));
        assert!(Ltl::<char>::True.globally().eval_finite(3, &h));
    }

    #[test]
    fn finite_next_fails_at_last_position() {
        let trace = ["a"];
        let h = trace_holds(&trace);
        assert!(!p('a').next().eval_finite(1, &h));
        assert!(!Ltl::<char>::True.next().eval_finite(1, &h));
        // but "not X true" holds at the last position
        assert!(Ltl::<char>::True.next().not().eval_finite(1, &h));
    }

    #[test]
    fn lasso_semantics_globally_and_eventually() {
        // trace: a, then (b)^ω
        let trace = ["a", "b"];
        let h = trace_holds(&trace);
        assert!(p('b').eventually().eval_lasso(2, 1, &h));
        assert!(!p('a').globally().eval_lasso(2, 1, &h));
        assert!(p('b').globally().eventually().eval_lasso(2, 1, &h)); // FG b
        assert!(p('b').eventually().globally().eval_lasso(2, 1, &h)); // GF b
        assert!(!p('a').eventually().globally().eval_lasso(2, 1, &h)); // GF a fails
    }

    #[test]
    fn lasso_until_requires_goal_inside_loop() {
        // (a)(a)^ω : a U b must fail, a U a holds.
        let trace = ["a", "a"];
        let h = trace_holds(&trace);
        assert!(!p('a').until(p('b')).eval_lasso(2, 1, &h));
        assert!(p('a').until(p('a')).eval_lasso(2, 1, &h));
        // G a holds on the lasso even though it fails on the finite prefix
        // read with finite semantics of length 2? (it holds there too), but
        // F G b must fail.
        assert!(p('a').globally().eval_lasso(2, 1, &h));
        assert!(!p('b').globally().eventually().eval_lasso(2, 1, &h));
    }

    #[test]
    fn lasso_release_greatest_fixpoint() {
        // (b)^ω satisfies a R b (b always holds).
        let trace = ["b"];
        let h = trace_holds(&trace);
        assert!(p('a').release(p('b')).eval_lasso(1, 0, &h));
        // (ab)(b)^ω satisfies a R b as well; ('a' releases at position 0).
        let trace2 = ["ab", ""];
        let h2 = trace_holds(&trace2);
        assert!(p('a').release(p('b')).eval_lasso(2, 1, &h2));
        // ("")^ω does not.
        let trace3 = [""];
        let h3 = trace_holds(&trace3);
        assert!(!p('a').release(p('b')).eval_lasso(1, 0, &h3));
    }

    #[test]
    fn propositions_and_size() {
        let f = p('a').until(p('b')).and(p('c').next());
        assert_eq!(f.propositions().len(), 3);
        assert_eq!(f.size(), 6);
        let mapped = f.map_props(&|c| (*c as u8) as usize);
        assert_eq!(mapped.propositions().len(), 3);
    }

    #[test]
    fn smart_constructors_simplify_units() {
        assert_eq!(Ltl::<char>::True.and(p('a')), p('a'));
        assert_eq!(Ltl::<char>::False.or(p('a')), p('a'));
        assert_eq!(Ltl::<char>::False.and(p('a')), Ltl::False);
        assert_eq!(p('a').not().not(), p('a'));
    }
}
