//! Temporal logic substrate: LTL, Büchi automata, and HLTL-FO.
//!
//! Section 3 of the paper specifies properties of Hierarchical Artifact
//! Systems in **HLTL-FO**: per-task LTL skeletons whose propositions are
//! interpreted either as quantifier-free conditions on the task's local data,
//! as service occurrences, or — recursively — as HLTL-FO formulas evaluated
//! on the runs of invoked child tasks.
//!
//! This crate provides:
//!
//! * [`Ltl`] — propositional linear-time temporal logic with the standard
//!   operators (X, U, R, F, G), negation normal form, and direct semantics
//!   over finite traces (the finite-word semantics of De Giacomo & Vardi used
//!   by the paper for returning local runs) and over ultimately-periodic
//!   infinite traces;
//! * [`buchi`] — the classical tableau construction of a Büchi automaton
//!   `B_φ` from an LTL formula, exposing both the infinite-word accepting
//!   states and the finite-word accepting states `Q_fin` that the paper's
//!   Lemma 21 relies on;
//! * [`hltl`] — HLTL-FO formulas over a concrete artifact system, the
//!   per-task sub-formula sets `Φ_T`, and truth assignments `β` over them.
//!
//! # Worked example
//!
//! Build `G (req → F ack)` over string propositions, evaluate it directly
//! on ultimately-periodic traces, and check that the tableau Büchi
//! automaton agrees with the direct semantics:
//!
//! ```
//! use has_ltl::{Buchi, Ltl};
//!
//! let req = Ltl::prop("req");
//! let ack = Ltl::prop("ack");
//! let formula = req.implies(ack.eventually()).globally();
//!
//! // A lasso trace: positions 0..len, looping back to `loop_start`.
//! // Good: req at 0 is answered by ack at 1, then an idle loop at 2.
//! let good = |pos: usize, p: &&str| matches!((pos, *p), (0, "req") | (1, "ack"));
//! assert!(formula.eval_lasso(3, 2, &good));
//!
//! // Bad: req at 0 and ack never arrives …
//! let bad = |pos: usize, p: &&str| pos == 0 && *p == "req";
//! assert!(!formula.eval_lasso(3, 2, &bad));
//!
//! // … and `B_φ` accepts exactly the same lassos.
//! let buchi = Buchi::from_ltl(&formula);
//! assert!(buchi.state_count() > 0);
//! assert!(buchi.accepts_lasso(3, 2, &good));
//! assert!(!buchi.accepts_lasso(3, 2, &bad));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod buchi;
pub mod hltl;
pub mod ltl;

pub use buchi::{Buchi, BuchiState, Label};
pub use hltl::{HltlFormula, HltlProp, PropId};
pub use ltl::Ltl;
