//! Temporal logic substrate: LTL, Büchi automata, and HLTL-FO.
//!
//! Section 3 of the paper specifies properties of Hierarchical Artifact
//! Systems in **HLTL-FO**: per-task LTL skeletons whose propositions are
//! interpreted either as quantifier-free conditions on the task's local data,
//! as service occurrences, or — recursively — as HLTL-FO formulas evaluated
//! on the runs of invoked child tasks.
//!
//! This crate provides:
//!
//! * [`Ltl`] — propositional linear-time temporal logic with the standard
//!   operators (X, U, R, F, G), negation normal form, and direct semantics
//!   over finite traces (the finite-word semantics of De Giacomo & Vardi used
//!   by the paper for returning local runs) and over ultimately-periodic
//!   infinite traces;
//! * [`buchi`] — the classical tableau construction of a Büchi automaton
//!   `B_φ` from an LTL formula, exposing both the infinite-word accepting
//!   states and the finite-word accepting states `Q_fin` that the paper's
//!   Lemma 21 relies on;
//! * [`hltl`] — HLTL-FO formulas over a concrete artifact system, the
//!   per-task sub-formula sets `Φ_T`, and truth assignments `β` over them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod buchi;
pub mod hltl;
pub mod ltl;

pub use buchi::{Buchi, BuchiState, Label};
pub use hltl::{HltlFormula, HltlProp, PropId};
pub use ltl::Ltl;
